//! Offline stand-in for the `serde` crate.
//!
//! The workspace deliberately carries no JSON backend; serde is used only
//! for (a) compile-time `Serialize`/`Deserialize` trait coverage of the
//! public data types and (b) value-level deserialization through serde's
//! in-memory deserializers (`serde::de::value::StrDeserializer` et al.).
//! This vendored crate implements exactly that surface on a simplified
//! data model: every serializable value maps to a [`Value`] tree, and a
//! [`Deserializer`](de::Deserializer) is anything that can produce a
//! [`Value`]. The `Serialize`/`Deserialize` derives come from the sibling
//! `serde_derive` crate and target the same model.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model every serializable type maps onto.
///
/// Structs become [`Value::Map`], tuple structs become [`Value::Seq`],
/// unit enum variants become [`Value::Str`] of the variant name — the
/// same externally-tagged shape the real serde uses for self-describing
/// formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String (also unit enum variant names).
    Str(String),
    /// `None`.
    Unit,
    /// `Some(inner)`.
    Some(Box<Value>),
    /// Sequences (`Vec`, tuple structs, tuples).
    Seq(Vec<Value>),
    /// Field-name → value maps (named-field structs).
    Map(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Unit => "unit",
            Value::Some(_) => "some",
            Value::Seq(_) => "seq",
            Value::Map(_) => "map",
        }
    }
}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Deserializer`](de::Deserializer).
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from `deserializer`.
    ///
    /// # Errors
    ///
    /// Returns the deserializer's error type if the input value does not
    /// have the shape `Self` expects.
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserialization traits and in-memory deserializers.
pub mod de {
    use super::Value;
    use std::fmt;
    use std::marker::PhantomData;

    /// Errors a deserializer can produce.
    pub trait Error: Sized + std::error::Error {
        /// An error carrying a custom message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A source of one [`Value`] tree.
    ///
    /// This replaces the visitor machinery of the real serde: the model is
    /// self-describing, so `Deserialize` impls pattern-match on the value.
    pub trait Deserializer<'de> {
        /// The error type.
        type Error: Error;
        /// Produces the input as a [`Value`].
        ///
        /// # Errors
        ///
        /// Implementation-defined; the in-memory deserializers here never
        /// fail at this stage.
        fn deserialize_value(self) -> Result<Value, Self::Error>;
    }

    /// Conversion into an in-memory deserializer, mirroring
    /// `serde::de::IntoDeserializer`.
    pub trait IntoDeserializer<'de, E: Error = value::Error> {
        /// The deserializer produced.
        type Deserializer: Deserializer<'de, Error = E>;
        /// Wraps `self` in its deserializer.
        fn into_deserializer(self) -> Self::Deserializer;
    }

    impl<'de, E: Error> IntoDeserializer<'de, E> for &'de str {
        type Deserializer = value::StrDeserializer<'de, E>;
        fn into_deserializer(self) -> Self::Deserializer {
            value::StrDeserializer {
                value: self,
                marker: PhantomData,
            }
        }
    }

    /// In-memory deserializers over borrowed primitives and [`Value`]s.
    pub mod value {
        use super::super::Value;
        use std::fmt;
        use std::marker::PhantomData;

        /// A plain string-message error, mirroring `serde::de::value::Error`.
        #[derive(Debug, Clone, PartialEq)]
        pub struct Error {
            msg: String,
        }

        impl fmt::Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.msg)
            }
        }

        impl std::error::Error for Error {}

        impl super::Error for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error {
                    msg: msg.to_string(),
                }
            }
        }

        /// Deserializer over a borrowed `&str` (enum variant names).
        pub struct StrDeserializer<'de, E> {
            pub(in crate::de) value: &'de str,
            pub(in crate::de) marker: PhantomData<E>,
        }

        impl<'de, E: super::Error> super::Deserializer<'de> for StrDeserializer<'de, E> {
            type Error = E;
            fn deserialize_value(self) -> Result<Value, E> {
                Ok(Value::Str(self.value.to_owned()))
            }
        }

        /// Deserializer over an owned [`Value`] (used by derived impls to
        /// recurse into fields).
        pub struct ValueDeserializer<E> {
            value: Value,
            marker: PhantomData<E>,
        }

        impl<E> ValueDeserializer<E> {
            /// Wraps `value`.
            pub fn new(value: Value) -> Self {
                ValueDeserializer {
                    value,
                    marker: PhantomData,
                }
            }
        }

        impl<'de, E: super::Error> super::Deserializer<'de> for ValueDeserializer<E> {
            type Error = E;
            fn deserialize_value(self) -> Result<Value, E> {
                Ok(self.value)
            }
        }
    }
}

/// Support machinery for the `serde_derive` macros. Not public API.
#[doc(hidden)]
pub mod __private {
    pub use super::de::value::ValueDeserializer;
    pub use super::Value;
    use super::{de, Deserialize};

    /// Rebuilds a `T` from an owned [`Value`].
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from `T::deserialize`.
    pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(value: Value) -> Result<T, E> {
        T::deserialize(ValueDeserializer::new(value))
    }

    /// Looks up struct field `name` in a deserialized map and rebuilds it.
    ///
    /// # Errors
    ///
    /// Errors if the field is missing or its value has the wrong shape.
    pub fn get_field<'de, T: Deserialize<'de>, E: de::Error>(
        fields: &[(String, Value)],
        name: &str,
    ) -> Result<T, E> {
        let v = fields
            .iter()
            .find(|(k, _)| k == name)
            .ok_or_else(|| E::custom(format!("missing field `{name}`")))?
            .1
            .clone();
        from_value(v)
    }

    /// Error for a value whose shape does not match the target type.
    pub fn unexpected<E: de::Error>(expected: &str, got: &Value) -> E {
        E::custom(format!(
            "invalid type: expected {expected}, found {}",
            got.kind()
        ))
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize for the std types the workspace's data types use.
// ---------------------------------------------------------------------------

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                match d.deserialize_value()? {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("{n} out of range"))),
                    other => Err(__private::unexpected("an unsigned integer", &other)),
                }
            }
        }
    )*};
}

macro_rules! serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                match d.deserialize_value()? {
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("{n} out of range"))),
                    other => Err(__private::unexpected("a signed integer", &other)),
                }
            }
        }
    )*};
}

serde_uint!(u8, u16, u32, u64, usize);
serde_sint!(i8, i16, i32, i64, isize);

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_value()? {
                    Value::F64(x) => Ok(x as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    other => Err(__private::unexpected("a float", &other)),
                }
            }
        }
    )*};
}

serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(__private::unexpected("a bool", &other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(__private::unexpected("a string", &other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Unit,
            Some(v) => Value::Some(Box::new(v.to_value())),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Unit => Ok(None),
            Value::Some(inner) => Ok(Some(__private::from_value(*inner)?)),
            // Lenient: a bare value counts as Some(value).
            other => Ok(Some(__private::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Seq(items) => items.into_iter().map(__private::from_value).collect(),
            other => Err(__private::unexpected("a sequence", &other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::de::value::{Error as ValueError, StrDeserializer};
    use super::de::IntoDeserializer;
    use super::{__private, Deserialize, Serialize, Value};

    #[test]
    fn primitives_roundtrip() {
        let v = 42usize.to_value();
        assert_eq!(v, Value::U64(42));
        let back: usize = __private::from_value::<usize, ValueError>(v).unwrap();
        assert_eq!(back, 42);

        let v = Some(1.5f64).to_value();
        let back: Option<f64> = __private::from_value::<_, ValueError>(v).unwrap();
        assert_eq!(back, Some(1.5));

        let v = vec![1u64, 2, 3].to_value();
        let back: Vec<u64> = __private::from_value::<_, ValueError>(v).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn str_deserializer_produces_strings() {
        let de: StrDeserializer<'static, ValueError> = "Chip".into_deserializer();
        assert_eq!(String::deserialize(de).unwrap(), "Chip");
    }

    #[test]
    fn type_mismatch_errors() {
        let r = __private::from_value::<bool, ValueError>(Value::U64(1));
        assert!(r.is_err());
    }
}
