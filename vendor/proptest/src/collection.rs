//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy for `Vec`s of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::seed_from_u64(6);
        let exact = vec(0.0..1.0f64, 9 * 6);
        assert_eq!(exact.generate(&mut rng).len(), 54);
        let ranged = vec(0.0..1.0f64, 1..=3);
        for _ in 0..50 {
            let v = ranged.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }
}
