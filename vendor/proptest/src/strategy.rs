//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG strategies draw from. Deterministic per test (seeded from the
/// test's module path + name).
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
///
/// `Value: Debug` so a failing case can always print the input that broke
/// it — the stand-in's substitute for shrinking.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..500 {
            let x = (1usize..=6).generate(&mut rng);
            assert!((1..=6).contains(&x));
            let y = (1e-4..4e-3f64).generate(&mut rng);
            assert!((1e-4..4e-3).contains(&y));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = (1usize..=3, 0.0..1.0f64).prop_map(|(n, x)| vec![x; n]);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    #[test]
    fn union_picks_all_arms() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = Union::new(vec![Just(1u32), Just(2), Just(3)]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
