//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! range/tuple/`Just`/`prop_map`/`prop_oneof!`/`collection::vec`
//! strategies, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*`/`prop_assume!`
//! macros. There is **no shrinking**: a failing case panics with the
//! generated input printed, and each test gets a deterministic RNG seeded
//! from its name, so failures reproduce exactly across runs. The
//! `.proptest-regressions` files the real crate writes are neither read
//! nor produced — regressions worth keeping are pinned as plain `#[test]`s.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports property tests start with.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{Just, Strategy};
pub use test_runner::{TestCaseError, TestCaseResult};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Defines property tests: `proptest! { fn name(x in strategy, ...) { body } }`.
///
/// Bodies may use `prop_assert!`/`prop_assert_eq!`/`prop_assume!`; plain
/// `assert!` also works (it panics instead of returning an error, which is
/// equivalent here because there is no shrinking phase to resume).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(
                &($($strategy,)+),
                |($($pat,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Asserts inside a `proptest!` body, failing the case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies of one common type:
/// `prop_oneof![Just(A), Just(B), ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}
