//! The case loop behind the `proptest!` macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::SeedableRng;

use crate::strategy::{Strategy, TestRng};
use crate::ProptestConfig;

/// Why one generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is violated (`prop_assert!`).
    Fail(String),
    /// The input is outside the property's precondition (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failing case with `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case with `msg`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property test: deterministic RNG, case loop, reject budget.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: String,
}

impl TestRunner {
    /// Creates a runner whose RNG seed is derived from `name`, so a given
    /// test always sees the same input sequence.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(fnv1a(name)),
            name: name.to_owned(),
        }
    }

    /// Runs `test` on `config.cases` generated inputs.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// printing the generated input, or when `prop_assume!` rejects more
    /// than `config.max_global_rejects` inputs.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejects = 0u32;
        while passed < self.config.cases {
            let input = strategy.generate(&mut self.rng);
            let shown = format!("{input:?}");
            match catch_unwind(AssertUnwindSafe(|| test(input))) {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest: property `{}` failed after {passed} passing case(s)\n\
                         {msg}\ninput: {shown}",
                        self.name
                    );
                }
                Ok(Err(TestCaseError::Reject(msg))) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "proptest: property `{}` rejected too many inputs ({rejects}): {msg}",
                        self.name
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest: property `{}` panicked after {passed} passing case(s)\n\
                         input: {shown}",
                        self.name
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// FNV-1a over the test name: stable across runs and platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_inputs_per_name() {
        use crate::strategy::Strategy;
        let collect = |name: &str| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(20), name);
            let mut seen = Vec::new();
            let s = 0.0..1.0f64;
            for _ in 0..20 {
                seen.push(s.generate(&mut runner.rng));
            }
            seen
        };
        assert_eq!(collect("a::b"), collect("a::b"));
        assert_ne!(collect("a::b"), collect("a::c"));
    }

    #[test]
    fn run_counts_only_passing_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "t");
        let mut count = std::cell::Cell::new(0u32);
        runner.run(&(0.0..1.0f64,), |(x,)| {
            if x < 0.5 {
                return Err(TestCaseError::reject("low"));
            }
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get_mut(), &mut 10);
    }

    #[test]
    #[should_panic(expected = "property `boom` failed")]
    fn failing_case_panics_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "boom");
        runner.run(&(0.0..1.0f64,), |(_x,)| Err(TestCaseError::fail("nope")));
    }
}
