//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the criterion API shape the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{bench_function, bench_with_input, sample_size}`,
//! `Bencher::iter`, `BenchmarkId`) but measures with a plain wall-clock
//! sample loop and prints mean/min per-iteration times to stdout. Like the
//! real criterion, a binary invoked *without* `--bench` (e.g. by
//! `cargo test`) runs every benchmark exactly once as a smoke test instead
//! of measuring.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier `group/function/parameter` for one benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The flat string id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    measure: bool,
    /// (mean, min) per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-call wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            std::hint::black_box(routine());
            self.last = None;
            return;
        }
        // One untimed warmup call, then `samples` timed calls.
        std::hint::black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some((total / self.samples as u32, min));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.samples = samples;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            samples: self.samples,
            measure: self.criterion.measure,
            last: None,
        };
        routine(&mut bencher);
        self.criterion.report(&full, bencher.last);
        self
    }

    /// Benchmarks `routine(input)` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (accepted for API compatibility; no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's contract with cargo: `cargo bench` passes
        // `--bench`; anything else (notably `cargo test`) smoke-tests each
        // benchmark once without timing.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 20,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_id();
        let mut bencher = Bencher {
            samples: 20,
            measure: self.measure,
            last: None,
        };
        routine(&mut bencher);
        self.report(&full, bencher.last);
        self
    }

    fn report(&self, name: &str, timing: Option<(Duration, Duration)>) {
        match timing {
            Some((mean, min)) => {
                println!("{name:<56} mean {mean:>12.3?}   min {min:>12.3?}");
            }
            None => println!("{name:<56} ok (smoke test, not timed)"),
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting a benchmark.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(192).to_string(), "192");
    }

    #[test]
    fn smoke_mode_runs_routine_once() {
        let mut c = Criterion { measure: false };
        let mut calls = 0u32;
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_records_timing() {
        let mut c = Criterion { measure: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("t", |b| b.iter(|| calls += 1));
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }
}
