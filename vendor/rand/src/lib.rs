//! Offline stand-in for the `rand` crate.
//!
//! The workspace vendors this crate because the build environment has no
//! network access to crates.io. It implements exactly the API surface the
//! workspace uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges and [`Rng::gen_bool`] —
//! on top of the public-domain xoshiro256++ generator seeded via
//! splitmix64. It is deterministic for a given seed, which is all the
//! workload generators require (reproducibility, not cryptography).

use std::ops::{Range, RangeInclusive};

/// A random-number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface: raw 64-bit output.
pub trait RngCore {
    /// Next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Distribution-level helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` to a double in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased sampling of `[0, n)` by rejection (Lemire-style threshold).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - u64::MAX.wrapping_rem(n);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        lo + (hi - lo) * u
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed, as the xoshiro authors
            // recommend for initializing the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing the stream
        /// position. Restoring via [`StdRng::from_state`] resumes the
        /// stream exactly where [`StdRng::state`] captured it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(13);
        for _ in 0..17 {
            a.next_u64_pub();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
