//! Derive macros for the vendored `serde` stand-in.
//!
//! The build environment has no network access, so `syn`/`quote` are not
//! available; instead the item is parsed by walking `proc_macro` token
//! trees directly and the impl is emitted as a string that is parsed back
//! into a `TokenStream`. Supported shapes — the only ones the workspace
//! uses — are non-generic named-field structs, tuple structs, unit
//! structs, and enums whose variants all carry no data. Anything else
//! panics at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<String> },
}

/// Consumes leading attributes (`#[...]`, `#![...]`) from `tokens[*pos]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Punct(bang)) = tokens.get(*pos) {
                    if bang.as_char() == '!' {
                        *pos += 1;
                    }
                }
                match tokens.get(*pos) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        *pos += 1;
                    }
                    _ => panic!("serde_derive: malformed attribute"),
                }
            }
            _ => break,
        }
    }
}

/// Consumes a leading visibility qualifier (`pub`, `pub(...)`).
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found `{other}`"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_unit_variants(group: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                panic!("serde_derive: expected variant name in `{enum_name}`, found `{other}`")
            }
        };
        pos += 1;
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive: variant `{enum_name}::{name}` carries data; only unit variants are supported"
            ),
            Some(other) => panic!("serde_derive: unexpected token `{other}` after variant `{name}`"),
        }
        variants.push(name);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(parse_tuple_arity(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                variants: parse_unit_variants(g.stream(), &name),
                name,
            },
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: `{other}` items are not supported"),
    }
}

/// Derives `serde::Serialize` (value-model form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct {
            name,
            fields: Fields::Named(fields),
        } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Struct {
            name,
            fields: Fields::Tuple(arity),
        } => {
            let entries: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Struct {
            name,
            fields: Fields::Unit,
        } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Unit }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (value-model form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, match_body) = match parse_item(input) {
        Item::Struct {
            name,
            fields: Fields::Named(fields),
        } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::get_field(&fields, \"{f}\")?"))
                .collect();
            let body = format!(
                "::serde::Value::Map(fields) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                 other => ::std::result::Result::Err(\
                     ::serde::__private::unexpected(\"a map for struct `{name}`\", &other)),",
                inits.join(", ")
            );
            (name, body)
        }
        Item::Struct {
            name,
            fields: Fields::Tuple(arity),
        } => {
            let inits: Vec<String> = (0..arity)
                .map(|_| {
                    "::serde::__private::from_value(items.next().expect(\"length checked\"))?"
                        .to_string()
                })
                .collect();
            let body = format!(
                "::serde::Value::Seq(items) if items.len() == {arity} => {{\n\
                     let mut items = items.into_iter();\n\
                     let _ = &mut items;\n\
                     ::std::result::Result::Ok({name}({}))\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::__private::unexpected(\
                     \"a sequence of length {arity} for `{name}`\", &other)),",
                inits.join(", ")
            );
            (name, body)
        }
        Item::Struct {
            name,
            fields: Fields::Unit,
        } => {
            let body = format!(
                "::serde::Value::Unit => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(\
                     ::serde::__private::unexpected(\"unit for `{name}`\", &other)),"
            );
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let body = format!(
                "::serde::Value::Str(s) => match s.as_str() {{\n\
                     {}\n\
                     other => ::std::result::Result::Err(\
                         <D::Error as ::serde::de::Error>::custom(\
                             ::std::format!(\"unknown variant `{{other}}` for enum `{name}`\"))),\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::__private::unexpected(\
                     \"a variant name for enum `{name}`\", &other)),",
                arms.join("\n")
            );
            (name, body)
        }
    };
    let out = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D) \
                 -> ::std::result::Result<Self, D::Error> {{\n\
                 match ::serde::de::Deserializer::deserialize_value(deserializer)? {{\n\
                     {match_body}\n\
                 }}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
