//! The thermal cliff: what happens when a compute-bound workload is pinned
//! at peak frequency, and how each thermal-management knob changes the
//! picture — the paper's Fig. 1/Fig. 2 story on the 16-core chip.
//!
//! Prints an ASCII thermal trace of the hottest junction under three
//! managers: unmanaged, TSP/DVFS, and HotPotato's synchronous rotation.
//!
//! ```sh
//! cargo run --release --example thermal_cliff
//! ```

use hotpotato::{HotPotato, HotPotatoConfig};
use hp_floorplan::{CoreId, GridFloorplan};
use hp_manycore::{ArchConfig, Machine};
use hp_sched::TspUniform;
use hp_sim::schedulers::PinnedScheduler;
use hp_sim::{Metrics, Scheduler, SimConfig, Simulation, TemperatureTrace};
use hp_thermal::{RcThermalModel, ThermalConfig};
use hp_workload::{Benchmark, Job, JobId};

fn machine() -> Machine {
    Machine::new(ArchConfig {
        grid_width: 4,
        grid_height: 4,
        ..ArchConfig::default()
    })
    .expect("valid 4x4 config")
}

fn model() -> RcThermalModel {
    RcThermalModel::new(
        &GridFloorplan::new(4, 4).expect("non-empty grid"),
        &ThermalConfig::default(),
    )
    .expect("valid thermal config")
}

fn jobs() -> Vec<Job> {
    vec![Job {
        id: JobId(0),
        benchmark: Benchmark::Blackscholes,
        spec: Benchmark::Blackscholes.spec(2),
        arrival: 0.0,
    }]
}

fn run_with(scheduler: &mut dyn Scheduler, dtm: bool) -> (Metrics, TemperatureTrace) {
    let mut sim = Simulation::new(
        machine(),
        ThermalConfig::default(),
        SimConfig {
            record_trace: true,
            dtm_enabled: dtm,
            ..SimConfig::default()
        },
    )
    .expect("valid sim config");
    let metrics = sim.run(jobs(), scheduler).expect("run completes");
    (metrics, sim.trace().clone())
}

/// Renders the hottest-junction trace as a row of height-coded glyphs.
fn sparkline(trace: &TemperatureTrace, width: usize) -> String {
    const GLYPHS: [char; 8] = ['1', '2', '3', '4', '5', '6', '7', '8'];
    let peaks = trace.peak_series();
    if peaks.is_empty() {
        return String::new();
    }
    let (lo, hi) = (45.0, 85.0);
    let stride = (peaks.len() / width).max(1);
    peaks
        .chunks(stride)
        .map(|chunk| {
            let m = chunk.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            let idx = ((m - lo) / (hi - lo) * (GLYPHS.len() - 1) as f64)
                .clamp(0.0, (GLYPHS.len() - 1) as f64) as usize;
            GLYPHS[idx]
        })
        .collect()
}

fn main() {
    println!("Two-threaded blackscholes on the centre of a 16-core chip.");
    println!("Thermal threshold: 70 C. Scale: 1 = 45 C ... 8 = 85 C.\n");

    let mut pinned = PinnedScheduler::with_preferred_cores(vec![CoreId(5), CoreId(10)]);
    let (m, t) = run_with(&mut pinned, false);
    println!("unmanaged  |{}|", sparkline(&t, 60));
    println!(
        "           response {:.1} ms, peak {:.1} C  <-- {} the 70 C threshold\n",
        m.makespan * 1e3,
        m.peak_temperature,
        if m.peak_temperature > 70.0 {
            "VIOLATES"
        } else {
            "respects"
        }
    );

    let mut tsp =
        TspUniform::new(model(), 70.0, 0.3).with_preferred_cores(vec![CoreId(5), CoreId(10)]);
    let (m, t) = run_with(&mut tsp, true);
    println!("TSP / DVFS |{}|", sparkline(&t, 60));
    println!(
        "           response {:.1} ms, peak {:.1} C (slow but safe)\n",
        m.makespan * 1e3,
        m.peak_temperature
    );

    let mut hp = HotPotato::new(model(), HotPotatoConfig::default()).expect("valid config");
    let (m, t) = run_with(&mut hp, true);
    println!("HotPotato  |{}|", sparkline(&t, 60));
    println!(
        "           response {:.1} ms, peak {:.1} C, {} rotations (fast AND safe)",
        m.makespan * 1e3,
        m.peak_temperature,
        m.migrations
    );
}
