//! Explore the AMD-ring geometry that HotPotato schedules over: ring
//! membership, per-ring LLC latency, and what the analytical solver says
//! about rotating a given power load on each ring.
//!
//! ```sh
//! cargo run --release --example ring_explorer [grid_width] [grid_height]
//! ```

use hotpotato::{EpochPowerSequence, RotationPeakSolver};
use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_manycore::{ArchConfig, Machine};
use hp_thermal::{RcThermalModel, ThermalConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let w: usize = args.next().map_or(Ok(8), |s| s.parse())?;
    let h: usize = args.next().map_or(Ok(8), |s| s.parse())?;

    let machine = Machine::new(ArchConfig {
        grid_width: w,
        grid_height: h,
        ..ArchConfig::default()
    })?;
    let fp = GridFloorplan::new(w, h)?;
    let model = RcThermalModel::new(&fp, &ThermalConfig::default())?;
    let solver = RotationPeakSolver::new(model)?;
    let rings = machine.rings();

    println!("{w}x{h} grid, {} AMD rings\n", rings.len());
    println!("ring map (core -> ring):");
    for y in 0..h {
        let row: Vec<String> = (0..w)
            .map(|x| {
                let core = fp.core_at(x, y).expect("in range");
                format!("{:>2}", rings.ring_of(core).index())
            })
            .collect();
        println!("  {}", row.join(" "));
    }

    println!();
    println!(
        "{:>5} {:>6} {:>7} {:>10} | peak C rotating one 7 W thread at tau:",
        "ring", "slots", "AMD", "LLC ns"
    );
    println!(
        "{:>5} {:>6} {:>7} {:>10} | {:>8} {:>8} {:>8}",
        "", "", "", "", "0.25ms", "1ms", "4ms"
    );
    for (i, ring) in rings.iter().enumerate() {
        let llc = machine.llc_latency_ns(ring.cores()[0])?;
        let mut peaks = Vec::new();
        for tau in [0.25e-3, 1e-3, 4e-3] {
            let delta = ring.capacity();
            let epochs: Vec<Vector> = (0..delta)
                .map(|e| {
                    let mut p = Vector::constant(w * h, 0.3);
                    p[ring.cores()[e % delta].index()] = 7.0;
                    p
                })
                .collect();
            let seq = EpochPowerSequence::new(tau, epochs)?;
            peaks.push(solver.peak_celsius(&seq)?);
        }
        println!(
            "{:>5} {:>6} {:>7.2} {:>10.1} | {:>8.1} {:>8.1} {:>8.1}",
            i,
            ring.capacity(),
            ring.amd(),
            llc,
            peaks[0],
            peaks[1],
            peaks[2]
        );
    }
    println!();
    println!("Reading the table: rotating faster (smaller tau) lowers the peak;");
    println!("bigger rings average a thread's heat over more cores.");
    Ok(())
}
