//! Quickstart: build the paper's 64-core S-NUCA chip, ask the analytical
//! solver whether a rotation is thermally safe, and run a small workload
//! under the HotPotato scheduler.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hotpotato::{EpochPowerSequence, HotPotato, HotPotatoConfig, RotationPeakSolver};
use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_manycore::{ArchConfig, Machine};
use hp_sim::{SimConfig, Simulation};
use hp_thermal::{RcThermalModel, ThermalConfig};
use hp_workload::{Benchmark, Job, JobId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The machine: Table-I defaults (8x8 grid, 4 GHz, S-NUCA LLC).
    let machine = Machine::new(ArchConfig::default())?;
    println!(
        "machine: {} cores, {} AMD rings",
        machine.core_count(),
        machine.rings().len()
    );

    // 2. The thermal model and the rotation analytics (Algorithm 1).
    let floorplan = GridFloorplan::new(8, 8)?;
    let model = RcThermalModel::new(&floorplan, &ThermalConfig::default())?;
    let solver = RotationPeakSolver::new(model.clone())?;

    // Is it safe to rotate two 7 W threads (sitting opposite each other)
    // around the innermost ring at tau = 0.5 ms? Build the per-epoch power
    // maps of one rotation period and ask.
    let ring = machine.rings().ring(0);
    let delta = ring.capacity();
    let epochs: Vec<Vector> = (0..delta)
        .map(|e| {
            let mut p = Vector::constant(machine.core_count(), 0.3);
            p[ring.cores()[e % delta].index()] = 7.0;
            p[ring.cores()[(e + delta / 2) % delta].index()] = 7.0;
            p
        })
        .collect();
    let seq = EpochPowerSequence::new(0.5e-3, epochs)?;
    let report = solver.peak(&seq)?;
    println!(
        "rotating 2x7 W on ring 0 at 0.5 ms: steady-cycle peak {:.1} C (critical {} @ epoch {})",
        report.peak_celsius, report.critical_core, report.critical_epoch
    );

    // 3. Run a small mixed workload under HotPotato.
    let jobs = vec![
        Job {
            id: JobId(0),
            benchmark: Benchmark::Blackscholes,
            spec: Benchmark::Blackscholes.spec(4),
            arrival: 0.0,
        },
        Job {
            id: JobId(1),
            benchmark: Benchmark::Canneal,
            spec: Benchmark::Canneal.spec(4),
            arrival: 0.0,
        },
    ];
    let mut sim = Simulation::new(machine, ThermalConfig::default(), SimConfig::default())?;
    let mut scheduler = HotPotato::new(model, HotPotatoConfig::default())?;
    let metrics = sim.run(jobs, &mut scheduler)?;
    for job in &metrics.jobs {
        println!(
            "{} ({} threads): response {:.1} ms, {} migrations",
            job.benchmark,
            job.threads,
            job.response_time().map_or(f64::NAN, |t| t * 1e3),
            job.migrations
        );
    }
    println!(
        "peak temperature {:.1} C, DTM intervals {}, total energy {:.2} J",
        metrics.peak_temperature, metrics.dtm_intervals, metrics.energy
    );
    Ok(())
}
