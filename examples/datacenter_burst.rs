//! A bursty multi-tenant scenario: jobs of mixed benchmarks arrive as a
//! Poisson stream on the 64-core chip, and we compare the two run-time
//! managers head to head — HotPotato (rotation, peak frequency) vs PCMig
//! (DVFS + on-demand migration).
//!
//! ```sh
//! cargo run --release --example datacenter_burst
//! ```

use hotpotato::{HotPotato, HotPotatoConfig};
use hp_manycore::{ArchConfig, Machine};
use hp_sched::{PcMig, PcMigConfig};
use hp_sim::{SimConfig, Simulation};
use hp_thermal::{RcThermalModel, ThermalConfig};
use hp_workload::open_poisson;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate = 40.0; // arrivals per second: a moderately loaded system
    let jobs = open_poisson(15, rate, 2024);
    println!(
        "{} jobs arriving at {:.0}/s (first at {:.1} ms, last at {:.1} ms)\n",
        jobs.len(),
        rate,
        jobs.first().expect("non-empty").arrival * 1e3,
        jobs.last().expect("non-empty").arrival * 1e3
    );

    let sim_config = SimConfig {
        horizon: 300.0,
        ..SimConfig::default()
    };

    for which in ["hotpotato", "pcmig"] {
        let machine = Machine::new(ArchConfig::default())?;
        let model = RcThermalModel::new(machine.floorplan(), &ThermalConfig::default())?;
        let mut sim = Simulation::new(machine, ThermalConfig::default(), sim_config)?;
        let metrics = match which {
            "hotpotato" => {
                let mut s = HotPotato::new(model, HotPotatoConfig::default())?;
                sim.run(jobs.clone(), &mut s)?
            }
            _ => {
                let mut s = PcMig::new(model, PcMigConfig::default());
                sim.run(jobs.clone(), &mut s)?
            }
        };
        let mean = metrics.mean_response_time().expect("all jobs complete");
        println!("== {which} ==");
        println!(
            "  mean response {:.1} ms | makespan {:.1} ms | peak {:.1} C | {} migrations | {:.1} J",
            mean * 1e3,
            metrics.makespan * 1e3,
            metrics.peak_temperature,
            metrics.migrations,
            metrics.energy
        );
        // Worst three jobs by response time.
        let mut by_resp: Vec<_> = metrics
            .jobs
            .iter()
            .filter_map(|j| j.response_time().map(|r| (r, j)))
            .collect();
        by_resp.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        for (resp, j) in by_resp.iter().take(3) {
            println!(
                "  slowest: {} x{} -> {:.1} ms",
                j.benchmark,
                j.threads,
                resp * 1e3
            );
        }
        println!();
    }
    Ok(())
}
