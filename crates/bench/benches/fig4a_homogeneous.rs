//! Fig. 4(a) — homogeneous batch, HotPotato vs PCMig.
//!
//! The bench uses the 16-core chip (a full 64-core sweep lives in the
//! `fig4a` experiment binary; this keeps `cargo bench` runtimes sane while
//! still exercising the exact code paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpotato::{HotPotato, HotPotatoConfig};
use hp_bench::{machine, model};
use hp_sched::{PcMig, PcMigConfig};
use hp_sim::{SimConfig, Simulation};
use hp_thermal::ThermalConfig;
use hp_workload::{closed_batch, Benchmark};

fn bench_fig4a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4a_16core");
    g.sample_size(10);
    for benchmark in [Benchmark::Blackscholes, Benchmark::Canneal] {
        g.bench_with_input(
            BenchmarkId::new("hotpotato", benchmark.name()),
            &benchmark,
            |b, &bm| {
                b.iter(|| {
                    let mut sim = Simulation::new(
                        machine(4, 4),
                        ThermalConfig::default(),
                        SimConfig {
                            horizon: 120.0,
                            ..SimConfig::default()
                        },
                    )
                    .expect("valid config");
                    let mut s = HotPotato::new(model(4, 4), HotPotatoConfig::default())
                        .expect("valid config");
                    sim.run(closed_batch(bm, 16, 42), &mut s)
                        .expect("completes")
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("pcmig", benchmark.name()),
            &benchmark,
            |b, &bm| {
                b.iter(|| {
                    let mut sim = Simulation::new(
                        machine(4, 4),
                        ThermalConfig::default(),
                        SimConfig {
                            horizon: 120.0,
                            ..SimConfig::default()
                        },
                    )
                    .expect("valid config");
                    let mut s = PcMig::new(model(4, 4), PcMigConfig::default());
                    sim.run(closed_batch(bm, 16, 42), &mut s)
                        .expect("completes")
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig4a);
criterion_main!(benches);
