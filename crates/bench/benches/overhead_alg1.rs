//! §VI run-time overhead and §V complexity claims.
//!
//! * `alg1_runtime` — one peak evaluation on the 64-core chip (paper:
//!   23.76 µs per schedule computation).
//! * `alg1_delta_scaling` — cost vs. rotation period δ (paper claims
//!   `O(2δ²N²)` for the literal form; the recurrence is `O(δN²)`).
//! * `alg1_node_scaling` — cost vs. chip size N.
//! * `design_time` — the one-off eigendecomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_bench::{full_load_sequence, model};
use hotpotato::RotationPeakSolver;

fn bench_runtime(c: &mut Criterion) {
    let solver = RotationPeakSolver::new(model(8, 8)).expect("decomposes");
    let seq = full_load_sequence(64, 8, 0.5e-3);
    c.bench_function("alg1_runtime_64core_delta8", |b| {
        b.iter(|| solver.peak_celsius(&seq).expect("computes"))
    });
}

fn bench_delta_scaling(c: &mut Criterion) {
    let solver = RotationPeakSolver::new(model(8, 8)).expect("decomposes");
    let mut g = c.benchmark_group("alg1_delta_scaling");
    for &delta in &[2usize, 4, 8, 16, 32] {
        let seq = full_load_sequence(64, delta, 0.5e-3);
        g.bench_with_input(BenchmarkId::new("recurrence", delta), &delta, |b, _| {
            b.iter(|| solver.peak_celsius(&seq).expect("computes"))
        });
        if delta <= 8 {
            g.bench_with_input(BenchmarkId::new("literal_eq10", delta), &delta, |b, _| {
                b.iter(|| solver.peak_reference(&seq).expect("computes"))
            });
        }
    }
    g.finish();
}

fn bench_node_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("alg1_node_scaling");
    for &(w, h) in &[(4usize, 4usize), (6, 6), (8, 8), (10, 10)] {
        let solver = RotationPeakSolver::new(model(w, h)).expect("decomposes");
        let seq = full_load_sequence(w * h, 8, 0.5e-3);
        g.bench_with_input(BenchmarkId::from_parameter(3 * w * h), &w, |b, _| {
            b.iter(|| solver.peak_celsius(&seq).expect("computes"))
        });
    }
    g.finish();
}

fn bench_design_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("design_time");
    g.sample_size(10);
    for &(w, h) in &[(4usize, 4usize), (8, 8)] {
        let m = model(w, h);
        g.bench_with_input(BenchmarkId::from_parameter(3 * w * h), &w, |b, _| {
            b.iter(|| RotationPeakSolver::new(m.clone()).expect("decomposes"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_runtime,
    bench_delta_scaling,
    bench_node_scaling,
    bench_design_time
);
criterion_main!(benches);
