//! §VI run-time overhead and §V complexity claims.
//!
//! * `alg1_runtime` — one peak evaluation on the 64-core chip (paper:
//!   23.76 µs per schedule computation).
//! * `alg1_delta_scaling` — cost vs. rotation period δ (paper claims
//!   `O(2δ²N²)` for the literal form; the recurrence is `O(δN²)`).
//! * `alg1_node_scaling` — cost vs. chip size N.
//! * `alg1_batch` — 16 candidate rotations evaluated by a serial
//!   `peak_celsius` loop vs one `peak_celsius_many` call (the scheduler's
//!   probe pattern); also cross-checks that the two agree to ≤1e-9 °C and,
//!   when measuring, that the batch is at least 2× faster.
//! * `alg1_sampled` — the intra-epoch sampled peak at 16 samples via the
//!   row-stacked GEMM vs the retired per-sample serial loop; cross-checks
//!   bit equality and, when measuring, a ≥2× speedup.
//! * `design_time` — the one-off eigendecomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpotato::RotationPeakSolver;
use hp_bench::{full_load_sequence, model};

fn bench_runtime(c: &mut Criterion) {
    let solver = RotationPeakSolver::new(model(8, 8)).expect("decomposes");
    let seq = full_load_sequence(64, 8, 0.5e-3);
    c.bench_function("alg1_runtime_64core_delta8", |b| {
        b.iter(|| solver.peak_celsius(&seq).expect("computes"));
    });
}

fn bench_delta_scaling(c: &mut Criterion) {
    let solver = RotationPeakSolver::new(model(8, 8)).expect("decomposes");
    let mut g = c.benchmark_group("alg1_delta_scaling");
    for &delta in &[2usize, 4, 8, 16, 32] {
        let seq = full_load_sequence(64, delta, 0.5e-3);
        g.bench_with_input(BenchmarkId::new("recurrence", delta), &delta, |b, _| {
            b.iter(|| solver.peak_celsius(&seq).expect("computes"));
        });
        if delta <= 8 {
            g.bench_with_input(BenchmarkId::new("literal_eq10", delta), &delta, |b, _| {
                b.iter(|| solver.peak_reference(&seq).expect("computes"));
            });
        }
    }
    g.finish();
}

fn bench_node_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("alg1_node_scaling");
    for &(w, h) in &[(4usize, 4usize), (6, 6), (8, 8), (10, 10)] {
        let solver = RotationPeakSolver::new(model(w, h)).expect("decomposes");
        let seq = full_load_sequence(w * h, 8, 0.5e-3);
        g.bench_with_input(BenchmarkId::from_parameter(3 * w * h), &w, |b, _| {
            b.iter(|| solver.peak_celsius(&seq).expect("computes"));
        });
    }
    g.finish();
}

fn bench_batch_vs_scalar(c: &mut Criterion) {
    let solver = RotationPeakSolver::new(model(8, 8)).expect("decomposes");
    let taus = [0.25e-3, 0.5e-3, 1e-3, 2e-3];
    let seqs: Vec<_> = (0..16)
        .map(|i| full_load_sequence(64, 8, taus[i % 4]).shifted(i / 4))
        .collect();

    // Correctness gate before any timing: the batch must agree with the
    // serial loop on every candidate.
    let serial: Vec<f64> = seqs
        .iter()
        .map(|s| solver.peak_celsius(s).expect("computes"))
        .collect();
    let batch = solver.peak_celsius_many(&seqs).expect("computes");
    for (a, b) in serial.iter().zip(&batch) {
        assert!((a - b).abs() <= 1e-9, "batch/serial disagree: {a} vs {b}");
    }

    let mut g = c.benchmark_group("alg1_batch16_64core_delta8");
    g.bench_function("serial_loop", |b| {
        b.iter(|| {
            seqs.iter()
                .map(|s| solver.peak_celsius(s).expect("computes"))
                .sum::<f64>()
        });
    });
    g.bench_function("batched_gemm", |b| {
        b.iter(|| solver.peak_celsius_many(&seqs).expect("computes"));
    });
    g.finish();

    // Independent speedup measurement (criterion's reporting aside), so a
    // `cargo bench` run fails loudly if the batch kernel regresses below
    // the 2x bar. Skipped in smoke mode (`cargo test`), where nothing is
    // timed.
    if std::env::args().any(|a| a == "--bench") {
        let reps = 50u32;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            criterion::black_box(
                seqs.iter()
                    .map(|s| solver.peak_celsius(s).expect("computes"))
                    .sum::<f64>(),
            );
        }
        let t_serial = t0.elapsed();
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            criterion::black_box(solver.peak_celsius_many(&seqs).expect("computes"));
        }
        let t_batch = t0.elapsed();
        let speedup = t_serial.as_secs_f64() / t_batch.as_secs_f64();
        println!("alg1_batch16 speedup: {speedup:.2}x (serial {t_serial:?} / batch {t_batch:?})");
        assert!(
            speedup >= 2.0,
            "batched Algorithm 1 must be at least 2x the serial loop, got {speedup:.2}x"
        );
    }
}

fn bench_sampled_vs_serial(c: &mut Criterion) {
    // The intra-epoch sampled peak at 16 samples on the 8x8 chip: all
    // δ·samples junction reconstructions stacked through one GEMM vs the
    // retired per-sample dot-product loop kept as `_serial`.
    let solver = RotationPeakSolver::new(model(8, 8)).expect("decomposes");
    let seq = full_load_sequence(64, 8, 0.5e-3);
    let samples = 16usize;

    // Correctness gate before any timing: the PR contract is bit equality.
    let batched = solver
        .peak_celsius_sampled(&seq, samples)
        .expect("computes");
    let serial = solver
        .peak_celsius_sampled_serial(&seq, samples)
        .expect("computes");
    assert_eq!(
        batched.to_bits(),
        serial.to_bits(),
        "sampled batch/serial disagree: {batched} vs {serial}"
    );

    let mut g = c.benchmark_group("alg1_sampled16_64core_delta8");
    g.bench_function("serial_dots", |b| {
        b.iter(|| {
            solver
                .peak_celsius_sampled_serial(&seq, samples)
                .expect("computes")
        });
    });
    g.bench_function("batched_gemm", |b| {
        b.iter(|| {
            solver
                .peak_celsius_sampled(&seq, samples)
                .expect("computes")
        });
    });
    g.finish();

    if std::env::args().any(|a| a == "--bench") {
        let reps = 200u32;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            criterion::black_box(
                solver
                    .peak_celsius_sampled_serial(&seq, samples)
                    .expect("computes"),
            );
        }
        let t_serial = t0.elapsed();
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            criterion::black_box(
                solver
                    .peak_celsius_sampled(&seq, samples)
                    .expect("computes"),
            );
        }
        let t_batch = t0.elapsed();
        let speedup = t_serial.as_secs_f64() / t_batch.as_secs_f64();
        println!("alg1_sampled16 speedup: {speedup:.2}x (serial {t_serial:?} / batch {t_batch:?})");
        assert!(
            speedup >= 2.0,
            "batched sampled peak must be at least 2x the serial loop, got {speedup:.2}x"
        );
    }
}

fn bench_design_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("design_time");
    g.sample_size(10);
    for &(w, h) in &[(4usize, 4usize), (8, 8)] {
        let m = model(w, h);
        g.bench_with_input(BenchmarkId::from_parameter(3 * w * h), &w, |b, _| {
            b.iter(|| RotationPeakSolver::new(m.clone()).expect("decomposes"));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_runtime,
    bench_delta_scaling,
    bench_node_scaling,
    bench_batch_vs_scalar,
    bench_sampled_vs_serial,
    bench_design_time
);
criterion_main!(benches);
