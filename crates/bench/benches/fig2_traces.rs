//! Fig. 2 — the three thermal-management runs of the motivational
//! example, benched end to end (simulation throughput of the whole
//! HotSniper-substitute stack).

use criterion::{criterion_group, criterion_main, Criterion};
use hotpotato::{HotPotato, HotPotatoConfig};
use hp_bench::{machine, model};
use hp_floorplan::CoreId;
use hp_sched::TspUniform;
use hp_sim::schedulers::PinnedScheduler;
use hp_sim::{SimConfig, Simulation};
use hp_thermal::ThermalConfig;
use hp_workload::{Benchmark, Job, JobId};

fn jobs() -> Vec<Job> {
    vec![Job {
        id: JobId(0),
        benchmark: Benchmark::Blackscholes,
        spec: Benchmark::Blackscholes.spec(2),
        arrival: 0.0,
    }]
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);

    g.bench_function("a_unmanaged", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                machine(4, 4),
                ThermalConfig::default(),
                SimConfig {
                    dtm_enabled: false,
                    ..SimConfig::default()
                },
            )
            .expect("valid config");
            let mut s = PinnedScheduler::with_preferred_cores(vec![CoreId(5), CoreId(10)]);
            sim.run(jobs(), &mut s).expect("completes")
        });
    });

    g.bench_function("b_tsp_dvfs", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                machine(4, 4),
                ThermalConfig::default(),
                SimConfig::default(),
            )
            .expect("valid config");
            let mut s = TspUniform::new(model(4, 4), 70.0, 0.3)
                .with_preferred_cores(vec![CoreId(5), CoreId(10)]);
            sim.run(jobs(), &mut s).expect("completes")
        });
    });

    g.bench_function("c_rotation", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                machine(4, 4),
                ThermalConfig::default(),
                SimConfig::default(),
            )
            .expect("valid config");
            let mut s =
                HotPotato::new(model(4, 4), HotPotatoConfig::default()).expect("valid config");
            sim.run(jobs(), &mut s).expect("completes")
        });
    });

    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
