//! Fig. 4(b) — a medium-load open-system run (16-core variant for bench
//! time; the full 64-core sweep lives in the `fig4b` experiment binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hotpotato::{HotPotato, HotPotatoConfig};
use hp_bench::{machine, model};
use hp_sched::{PcMig, PcMigConfig};
use hp_sim::{SimConfig, Simulation};
use hp_thermal::ThermalConfig;
use hp_workload::open_poisson;

fn bench_fig4b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4b_16core_medium_load");
    g.sample_size(10);

    g.bench_function("hotpotato", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                machine(4, 4),
                ThermalConfig::default(),
                SimConfig {
                    horizon: 600.0,
                    ..SimConfig::default()
                },
            )
            .expect("valid config");
            let mut s =
                HotPotato::new(model(4, 4), HotPotatoConfig::default()).expect("valid config");
            sim.run(open_poisson(10, 20.0, 7), &mut s)
                .expect("completes")
        });
    });

    g.bench_function("pcmig", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                machine(4, 4),
                ThermalConfig::default(),
                SimConfig {
                    horizon: 600.0,
                    ..SimConfig::default()
                },
            )
            .expect("valid config");
            let mut s = PcMig::new(model(4, 4), PcMigConfig::default());
            sim.run(open_poisson(10, 20.0, 7), &mut s)
                .expect("completes")
        });
    });

    g.finish();
}

criterion_group!(benches, bench_fig4b);
criterion_main!(benches);
