//! Substrate micro-benchmarks: the dense kernels underneath everything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_linalg::cholesky::CholeskyDecomposition;
use hp_linalg::eigen::SystemEigen;
use hp_linalg::{expm, Matrix, Vector};

/// A conductance-style SPD matrix of size n.
fn spd(n: usize) -> Matrix {
    let mut b = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let g = 1.0 / (1.0 + (i + 2 * j) as f64 % 7.0);
            b[(i, j)] = -g;
            b[(j, i)] = -g;
            b[(i, i)] += g;
            b[(j, j)] += g;
        }
        b[(i, i)] += 0.5 + (i % 3) as f64;
    }
    b
}

fn caps(n: usize) -> Vector {
    Vector::from_fn(n, |i| 0.1 + (i % 5) as f64 * 0.05)
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu");
    for &n in &[48usize, 96, 192] {
        let m = spd(n);
        let rhs = Vector::from_fn(n, |i| (i as f64).sin());
        g.bench_with_input(BenchmarkId::new("factorize", n), &n, |b, _| {
            b.iter(|| m.lu().expect("factorizes"));
        });
        let lu = m.lu().expect("factorizes");
        g.bench_with_input(BenchmarkId::new("solve", n), &n, |b, _| {
            b.iter(|| lu.solve(&rhs).expect("solves"));
        });
        g.bench_with_input(BenchmarkId::new("cholesky_factorize", n), &n, |b, _| {
            b.iter(|| CholeskyDecomposition::new(&m).expect("SPD input"));
        });
        let chol = CholeskyDecomposition::new(&m).expect("SPD input");
        g.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |b, _| {
            b.iter(|| chol.solve(&rhs).expect("solves"));
        });
    }
    g.finish();
}

fn bench_eigen(c: &mut Criterion) {
    let mut g = c.benchmark_group("eigen");
    g.sample_size(10);
    for &n in &[48usize, 96, 192] {
        let b_mat = spd(n);
        let a = caps(n);
        g.bench_with_input(BenchmarkId::new("system_eigen", n), &n, |b, _| {
            b.iter(|| SystemEigen::new(&a, &b_mat).expect("decomposes"));
        });
    }
    g.finish();
}

fn bench_expm(c: &mut Criterion) {
    let mut g = c.benchmark_group("expm");
    g.sample_size(10);
    for &n in &[48usize, 96] {
        let b_mat = spd(n);
        let a = caps(n);
        let c_mat = Matrix::from_fn(n, n, |i, j| -b_mat[(i, j)] / a[i]);
        g.bench_with_input(BenchmarkId::new("pade", n), &n, |b, _| {
            b.iter(|| expm(&c_mat.scaled(1e-3)).expect("converges"));
        });
        let sys = SystemEigen::new(&a, &b_mat).expect("decomposes");
        g.bench_with_input(BenchmarkId::new("eigen_route", n), &n, |b, _| {
            b.iter(|| sys.exp_matrix(1e-3));
        });
        let x = Vector::from_fn(n, |i| (i as f64).cos());
        g.bench_with_input(BenchmarkId::new("eigen_apply", n), &n, |b, _| {
            b.iter(|| sys.exp_apply(1e-3, &x));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lu, bench_eigen, bench_expm);
criterion_main!(benches);
