//! Thermal solver benchmarks: steady state, exact transient step and TSP
//! budgeting at the paper's chip sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hp_bench::model;
use hp_floorplan::CoreId;
use hp_linalg::Vector;
use hp_thermal::{tsp, TransientSolver};

fn bench_steady(c: &mut Criterion) {
    let mut g = c.benchmark_group("steady_state");
    for &(w, h) in &[(4usize, 4usize), (8, 8), (10, 10)] {
        let m = model(w, h);
        let p = Vector::from_fn(w * h, |i| if i % 3 == 0 { 7.0 } else { 0.3 });
        g.bench_with_input(BenchmarkId::from_parameter(w * h), &w, |b, _| {
            b.iter(|| m.steady_state(&p).expect("solves"));
        });
    }
    g.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut g = c.benchmark_group("transient_step");
    for &(w, h) in &[(4usize, 4usize), (8, 8)] {
        let m = model(w, h);
        let solver = TransientSolver::new(&m).expect("decomposes");
        let p = Vector::from_fn(w * h, |i| if i % 3 == 0 { 7.0 } else { 0.3 });
        let t0 = m.ambient_state();
        g.bench_with_input(BenchmarkId::from_parameter(w * h), &w, |b, _| {
            b.iter(|| solver.step(&m, &t0, &p, 1e-4).expect("steps"));
        });
    }
    g.finish();
}

fn bench_tsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsp_budget");
    for &(w, h) in &[(4usize, 4usize), (8, 8)] {
        let m = model(w, h);
        let active: Vec<CoreId> = (0..w * h).step_by(2).map(CoreId).collect();
        g.bench_with_input(BenchmarkId::from_parameter(w * h), &w, |b, _| {
            b.iter(|| tsp::budget(&m, &active, 70.0, 0.3).expect("budgets"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_steady, bench_transient, bench_tsp);
criterion_main!(benches);
