//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches mirror the paper's evaluation artefacts:
//!
//! | Bench | Paper artefact |
//! |---|---|
//! | `overhead_alg1` | §VI run-time overhead (23.76 µs per schedule) and the §V complexity claims (δ and N scaling) |
//! | `fig2_traces` | Fig. 2 — the three thermal-management runs |
//! | `fig4a_homogeneous` | Fig. 4(a) — homogeneous batch, HotPotato vs PCMig (reduced 16-core variant for bench time) |
//! | `fig4b_open_system` | Fig. 4(b) — open-system run at medium load |
//! | `linalg_kernels` | substrate micro-benches (LU, Jacobi, expm) |
//! | `thermal_solvers` | steady-state + transient step cost |

use hotpotato::EpochPowerSequence;
use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_manycore::{ArchConfig, Machine};
use hp_thermal::{RcThermalModel, ThermalConfig};

/// A `w × h` machine with the paper's Table-I parameters.
pub fn machine(w: usize, h: usize) -> Machine {
    Machine::new(ArchConfig {
        grid_width: w,
        grid_height: h,
        ..ArchConfig::default()
    })
    .expect("valid arch config")
}

/// The RC thermal model for a `w × h` grid.
pub fn model(w: usize, h: usize) -> RcThermalModel {
    RcThermalModel::new(
        &GridFloorplan::new(w, h).expect("non-empty grid"),
        &ThermalConfig::default(),
    )
    .expect("valid thermal config")
}

/// A full-load mixed-power rotation sequence over `cores` cores with
/// period `delta`.
pub fn full_load_sequence(cores: usize, delta: usize, tau: f64) -> EpochPowerSequence {
    let powers: Vec<f64> = (0..cores)
        .map(|i| if i % 3 == 0 { 7.0 } else { 2.5 })
        .collect();
    let epochs = (0..delta)
        .map(|e| Vector::from_fn(cores, |c| powers[(c + e) % cores]))
        .collect();
    EpochPowerSequence::new(tau, epochs).expect("valid sequence")
}
