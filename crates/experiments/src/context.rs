//! Minimal anyhow-style error context, dependency-free.
//!
//! The experiment binaries run long parameter sweeps; when one scenario
//! fails the error must say *which* one (benchmark, arrival rate, τ
//! level, …) instead of a bare engine error. `Context` wraps any
//! displayable error with a human frame, and frames chain outermost
//! first — exactly the ergonomics of `anyhow::Context`, without the
//! dependency (the build is offline and vendored).
//!
//! ```
//! use hp_experiments::context::{Context, ContextError};
//!
//! fn scenario(rate: f64) -> Result<(), ContextError> {
//!     Err("horizon exceeded").with_context(|| format!("arrival rate {rate}/s"))
//! }
//!
//! let err = scenario(2.0).context("fig4b sweep").unwrap_err();
//! assert_eq!(err.to_string(), "fig4b sweep: arrival rate 2/s: horizon exceeded");
//! ```

use std::fmt;

/// An error annotated with a chain of context frames.
///
/// `Display` renders `outer: inner: root cause`. `Debug` renders the
/// same string, so `fn main() -> Result<(), ContextError>` exits with a
/// readable message rather than a struct dump.
pub struct ContextError(String);

impl ContextError {
    /// Creates a root error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        ContextError(msg.into())
    }
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContextError {}

/// Extension trait attaching context frames to fallible results.
pub trait Context<T> {
    /// Wraps the error with a static context frame.
    fn context(self, msg: impl Into<String>) -> Result<T, ContextError>;

    /// Wraps the error with a lazily built context frame (use when the
    /// frame interpolates sweep parameters).
    fn with_context<F, S>(self, f: F) -> Result<T, ContextError>
    where
        F: FnOnce() -> S,
        S: Into<String>;
}

impl<T, E: fmt::Display> Context<T> for Result<T, E> {
    fn context(self, msg: impl Into<String>) -> Result<T, ContextError> {
        self.map_err(|e| ContextError(format!("{}: {e}", msg.into())))
    }

    fn with_context<F, S>(self, f: F) -> Result<T, ContextError>
    where
        F: FnOnce() -> S,
        S: Into<String>,
    {
        self.map_err(|e| ContextError(format!("{}: {e}", f().into())))
    }
}

impl<T> Context<T> for Option<T> {
    fn context(self, msg: impl Into<String>) -> Result<T, ContextError> {
        self.ok_or_else(|| ContextError(msg.into()))
    }

    fn with_context<F, S>(self, f: F) -> Result<T, ContextError>
    where
        F: FnOnce() -> S,
        S: Into<String>,
    {
        self.ok_or_else(|| ContextError(f().into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_chain_outermost_first() {
        let root: Result<(), &str> = Err("root cause");
        let err = root
            .context("inner")
            .context("outer")
            .expect_err("still an error");
        assert_eq!(err.to_string(), "outer: inner: root cause");
    }

    #[test]
    fn with_context_is_lazy() {
        let ok: Result<u32, &str> = Ok(7);
        let v = ok
            .with_context(|| -> String { panic!("not evaluated on Ok") })
            .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn option_context_names_the_missing_thing() {
        let none: Option<u32> = None;
        let err = none.context("benchmark table entry").unwrap_err();
        assert_eq!(err.to_string(), "benchmark table entry");
        assert_eq!(Some(3).context("present").unwrap(), 3);
    }

    #[test]
    fn debug_matches_display() {
        let e = ContextError::msg("scenario x failed");
        assert_eq!(format!("{e:?}"), format!("{e}"));
    }
}
