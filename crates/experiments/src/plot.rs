//! Terminal line charts for the experiment binaries — good enough to see
//! the *shape* of a figure without leaving the shell.

/// Renders one or more series as an ASCII line chart.
///
/// Each series is `(glyph, values)`; all series share the x-axis (sample
/// index) and the y-axis is scaled to the joint min/max. Returns the
/// rendered chart as a `String` (one trailing newline).
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
///
/// # Example
///
/// ```
/// use hp_experiments::plot::ascii_chart;
///
/// let up: Vec<f64> = (0..50).map(|i| i as f64).collect();
/// let chart = ascii_chart(&[('*', &up)], 40, 8);
/// assert!(chart.lines().count() > 8); // plot rows + axis
/// assert!(chart.contains('*'));
/// ```
pub fn ascii_chart(series: &[(char, &[f64])], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "chart needs a non-zero canvas");
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut longest = 0usize;
    for (_, values) in series {
        longest = longest.max(values.len());
        for &v in *values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if longest == 0 || !lo.is_finite() {
        return String::from("(no data)\n");
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (glyph, values) in series {
        if values.is_empty() {
            continue;
        }
        // `col` drives the bucket arithmetic, not just the indexing.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            // Down-sample: take the max of the bucket so spikes survive.
            let start = col * values.len() / width;
            let end = (((col + 1) * values.len()) / width).max(start + 1);
            let Some(bucket) = values.get(start..end.min(values.len())) else {
                continue;
            };
            if bucket.is_empty() {
                continue;
            }
            let v = bucket.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
            let frac = (v - lo) / (hi - lo);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            canvas[row.min(height - 1)][col] = *glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in canvas.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:8.1} |")
        } else if r == height - 1 {
            format!("{lo:8.1} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("         +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_extremes_on_correct_rows() {
        let ramp: Vec<f64> = (0..100).map(f64::from).collect();
        let chart = ascii_chart(&[('x', &ramp)], 50, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // Top row holds the max, bottom plot row the min.
        assert!(lines[0].contains('x'));
        assert!(lines[9].contains('x'));
        assert!(lines[0].trim_start().starts_with("99.0"));
        assert!(lines[9].trim_start().starts_with("0.0"));
    }

    #[test]
    fn two_series_both_visible() {
        let a = vec![1.0; 60];
        let b = vec![2.0; 60];
        let chart = ascii_chart(&[('a', &a), ('b', &b)], 30, 6);
        assert!(chart.contains('a'));
        assert!(chart.contains('b'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let flat = vec![5.0; 10];
        let chart = ascii_chart(&[('f', &flat)], 20, 4);
        assert!(chart.contains('f'));
    }

    #[test]
    fn empty_series_is_graceful() {
        assert_eq!(ascii_chart(&[('x', &[])], 20, 4), "(no data)\n");
    }

    #[test]
    fn spikes_survive_downsampling() {
        let mut v = vec![0.0; 1000];
        v[500] = 100.0;
        let chart = ascii_chart(&[('s', &v)], 40, 8);
        // The spike must appear on the top row despite 25:1 downsampling.
        assert!(chart.lines().next().expect("rows").contains('s'));
    }

    #[test]
    #[should_panic(expected = "non-zero canvas")]
    fn zero_canvas_panics() {
        let _ = ascii_chart(&[('x', &[1.0])], 0, 4);
    }
}
