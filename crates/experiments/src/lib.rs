//! Shared harness code for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one evaluation artefact:
//!
//! | Binary     | Paper artefact |
//! |------------|----------------|
//! | `table1`   | Table I — simulated processor configuration |
//! | `fig2`     | Fig. 2 — thermal traces & response times (unmanaged / TSP / rotation) |
//! | `fig3`     | Fig. 3 — concentric AMD rings of the 64-core chip |
//! | `fig4a`    | Fig. 4(a) — homogeneous workloads, HotPotato vs PCMig |
//! | `fig4b`    | Fig. 4(b) — heterogeneous open system, speedup vs arrival rate |
//! | `overhead` | §VI run-time overhead of Algorithm 1 + Algorithm 2 |
//! | `ablations`| design-choice sweeps (τ, Δ, threshold, migration cost, DTM scope, prewarm) |
//! | `oracle_gap` | §V "near-optimal" claim: greedy vs exhaustive ring assignment |
//! | `stacked3d`| §VII future work: rotation on a 3D-stacked chip |
//!
//! Outputs go to stdout as aligned text tables plus machine-readable CSV
//! lines prefixed with `csv,` so EXPERIMENTS.md can quote either.

pub mod context;
pub mod plot;

use context::{Context, ContextError};

use hp_floorplan::GridFloorplan;
use hp_manycore::{ArchConfig, Machine};
use hp_sim::{Metrics, Scheduler, SimConfig, Simulation};
use hp_thermal::{RcThermalModel, ThermalConfig};
use hp_workload::Job;

/// The paper's evaluation chip: a 64-core (8×8) S-NUCA processor
/// (Table I).
pub fn paper_machine() -> Machine {
    Machine::new(ArchConfig::default()).expect("default config is valid")
}

/// A 16-core (4×4) chip for the Fig. 1 / Fig. 2 motivational setup.
pub fn motivational_machine() -> Machine {
    Machine::new(ArchConfig {
        grid_width: 4,
        grid_height: 4,
        ..ArchConfig::default()
    })
    .expect("4x4 config is valid")
}

/// The thermal model matching `machine`.
pub fn thermal_model(machine: &Machine) -> RcThermalModel {
    RcThermalModel::new(machine.floorplan(), &ThermalConfig::default())
        .expect("default thermal config is valid")
}

/// Builds a fresh thermal model for a given grid (helper for schedulers
/// that own their model).
pub fn thermal_model_for_grid(width: usize, height: usize) -> RcThermalModel {
    let fp = GridFloorplan::new(width, height).expect("non-empty grid");
    RcThermalModel::new(&fp, &ThermalConfig::default()).expect("valid thermal config")
}

/// Runs `jobs` on `machine` under `scheduler` with the given config and
/// returns the metrics, naming the scheduler in any failure.
///
/// # Errors
///
/// Returns a [`ContextError`] wrapping the engine's error if the
/// configuration is rejected or the run fails. Sweep binaries add their
/// own frame naming the scenario (benchmark, arrival rate, …).
pub fn try_run(
    machine: Machine,
    sim_config: SimConfig,
    jobs: Vec<Job>,
    scheduler: &mut dyn Scheduler,
) -> Result<Metrics, ContextError> {
    let name = scheduler.name().to_owned();
    let mut sim = Simulation::new(machine, ThermalConfig::default(), sim_config)
        .with_context(|| format!("building simulation for scheduler `{name}`"))?;
    let result = sim.run(jobs, scheduler);
    if let Err(e) = &result {
        // Mid-run aborts still carry everything accumulated up to the
        // failure; report it so a sweep's partial data is not lost.
        if let Some(partial) = e.partial_metrics() {
            eprintln!(
                "{name}: aborted at t={:.3} s — partial results: {}/{} jobs complete, \
                 peak {:.1} C, {} DTM intervals, {} migrations",
                partial.simulated_time,
                partial.completed_jobs(),
                partial.jobs.len(),
                partial.peak_temperature,
                partial.dtm_intervals,
                partial.migrations,
            );
        }
    }
    result.with_context(|| format!("running scheduler `{name}`"))
}

/// Runs `jobs` on `machine` under `scheduler` with the given config and
/// returns the metrics.
///
/// # Panics
///
/// Panics (with the engine's error) if the run fails — experiment binaries
/// are expected to abort loudly on harness bugs. Sweeps that want to name
/// the failing scenario use [`try_run`] instead.
pub fn run(
    machine: Machine,
    sim_config: SimConfig,
    jobs: Vec<Job>,
    scheduler: &mut dyn Scheduler,
) -> Metrics {
    match try_run(machine, sim_config, jobs, scheduler) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// Formats a fraction as a signed percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

/// Prints the wall-clock scheduler-hook overhead a run recorded in its
/// observability report (`hook.schedule` histogram): count, mean and
/// p50/p95/max percentiles in µs, plus a machine-readable `csv,` line.
///
/// The paper (§VI) reports a 23.76 µs mean per HotPotato scheduling
/// decision; this surfaces the same quantity for any scheduler run
/// through the engine. Silent for runs without hook timings.
pub fn print_hook_overhead(m: &Metrics) {
    print_hook_overhead_report(&m.scheduler, &m.observability);
}

/// [`print_hook_overhead`] for a bare run report, as carried by a
/// campaign [`JobOutcome`](hp_campaign::JobOutcome) (which has no
/// `Metrics` — its scalars live beside the report).
pub fn print_hook_overhead_report(scheduler: &str, report: &hp_obs::RunReport) {
    let Some(h) = report.histogram("hook.schedule") else {
        return;
    };
    println!(
        "  {} scheduling-hook overhead: {} hooks | mean {:.2} us | \
         p50 {:.2} us | p95 {:.2} us | max {:.2} us",
        scheduler, h.count, h.mean_us, h.p50_us, h.p95_us, h.max_us
    );
    println!(
        "csv,hook_overhead,{},{},{:.4},{:.4},{:.4},{:.4}",
        scheduler, h.count, h.mean_us, h.p50_us, h.p95_us, h.max_us
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_build() {
        assert_eq!(paper_machine().core_count(), 64);
        assert_eq!(motivational_machine().core_count(), 16);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1072), "+10.72%");
        assert_eq!(pct(-0.05), "-5.00%");
    }

    #[test]
    fn hook_overhead_handles_present_and_absent_timings() {
        // Silent on a run without hook timings.
        print_hook_overhead(&Metrics::default());
        // And readable when the engine recorded them.
        let reg = hp_obs::Registry::new();
        reg.observe_seconds("hook.schedule", 20e-6);
        let m = Metrics {
            observability: reg.snapshot(),
            ..Metrics::default()
        };
        let h = m.observability.histogram("hook.schedule").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max_us > 0.0);
        print_hook_overhead(&m);
    }
}
