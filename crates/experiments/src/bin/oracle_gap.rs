//! Quantifying the paper's "near-optimal" claim (§V).
//!
//! Determining the performance-optimal thermally-safe ring assignment is
//! NP-hard, so HotPotato uses a greedy heuristic (Algorithm 2). On the
//! 16-core chip the design space is small enough to enumerate, giving an
//! oracle: for a set of thread mixes, compare the total predicted IPS of
//! the greedy assignment (Algorithm 2's placement rule: innermost
//! thermally-safe ring, per thread, in arrival order) with the exhaustive
//! optimum.

use hotpotato::design_space::{evaluate_assignment, exhaustive_best_assignment, ThreadDemand};
use hotpotato::RotationPeakSolver;
use hp_experiments::motivational_machine;
use hp_floorplan::CoreId;
use hp_manycore::Machine;
use hp_thermal::{RcThermalModel, ThermalConfig};
use hp_workload::Benchmark;

const T_DTM: f64 = 70.0;
const DELTA: f64 = 1.0;
const TAU: f64 = 0.5e-3;
const IDLE: f64 = 0.3;

fn demand_for(machine: &Machine, rings: &[Vec<usize>], b: Benchmark) -> ThreadDemand {
    let ladder = &machine.config().dvfs;
    let work = b.work_point();
    let representative = rings
        .iter()
        .map(|cores| CoreId(cores[0]))
        .collect::<Vec<_>>();
    let ips_per_ring: Vec<f64> = representative
        .iter()
        .map(|&c| {
            machine
                .cpi_stack_at_level(&work, c, ladder.max_level())
                .expect("core in range")
                .ips()
                / 1e9
        })
        .collect();
    let stack = machine
        .cpi_stack_at_level(&work, representative[0], ladder.max_level())
        .expect("core in range");
    let watts = machine.core_power(&stack, ladder.max_level(), T_DTM);
    ThreadDemand {
        watts,
        ips_per_ring,
    }
}

/// Algorithm 2's placement rule: per thread (arrival order), innermost
/// ring with free capacity whose peak stays under `T_DTM − Δ`; best-effort
/// coolest ring otherwise.
fn greedy_assignment(
    solver: &RotationPeakSolver,
    rings: &[Vec<usize>],
    demands: &[ThreadDemand],
) -> Vec<usize> {
    let mut assignment: Vec<usize> = Vec::new();
    for i in 0..demands.len() {
        let mut counts = vec![0usize; rings.len()];
        for &r in &assignment {
            counts[r] += 1;
        }
        let mut chosen = None;
        let mut fallback: Option<(usize, f64)> = None;
        for (r, cores) in rings.iter().enumerate() {
            if counts[r] >= cores.len() {
                continue;
            }
            let mut trial = assignment.clone();
            trial.push(r);
            let peak = evaluate_assignment(solver, rings, &demands[..=i], &trial, TAU, IDLE)
                .expect("evaluates");
            if peak + DELTA < T_DTM {
                chosen = Some(r);
                break;
            }
            if fallback.is_none_or(|(_, p)| peak < p) {
                fallback = Some((r, peak));
            }
        }
        assignment.push(chosen.unwrap_or_else(|| fallback.expect("some ring has room").0));
    }
    assignment
}

fn main() {
    let machine = motivational_machine();
    let model = RcThermalModel::new(machine.floorplan(), &ThermalConfig::default())
        .expect("valid thermal config");
    let solver = RotationPeakSolver::new(model).expect("decomposes");
    let rings: Vec<Vec<usize>> = machine
        .rings()
        .iter()
        .map(|r| r.cores().iter().map(|c| c.index()).collect())
        .collect();

    let scenarios: Vec<(&str, Vec<Benchmark>)> = vec![
        ("2x swaptions", vec![Benchmark::Swaptions; 2]),
        ("4x swaptions", vec![Benchmark::Swaptions; 4]),
        (
            "2 swaptions + 2 canneal",
            vec![
                Benchmark::Swaptions,
                Benchmark::Swaptions,
                Benchmark::Canneal,
                Benchmark::Canneal,
            ],
        ),
        (
            "mixed quartet",
            vec![
                Benchmark::Swaptions,
                Benchmark::Blackscholes,
                Benchmark::Streamcluster,
                Benchmark::Canneal,
            ],
        ),
        (
            "hot sextet",
            vec![
                Benchmark::Swaptions,
                Benchmark::Swaptions,
                Benchmark::Blackscholes,
                Benchmark::Blackscholes,
                Benchmark::X264,
                Benchmark::X264,
            ],
        ),
    ];

    println!("Oracle gap — greedy Algorithm 2 placement vs exhaustive optimum (16-core chip)");
    println!(
        "{:<24} {:>12} {:>12} {:>9} {:>10} {:>10}",
        "scenario", "greedy GIPS", "oracle GIPS", "gap", "explored", "search"
    );
    for (label, benchmarks) in scenarios {
        let demands: Vec<ThreadDemand> = benchmarks
            .iter()
            .map(|&b| demand_for(&machine, &rings, b))
            .collect();
        let greedy = greedy_assignment(&solver, &rings, &demands);
        let greedy_ips: f64 = demands
            .iter()
            .zip(&greedy)
            .map(|(d, &r)| d.ips_per_ring[r])
            .sum();
        // The exhaustive sweep fans out over all cores (batched Algorithm-1
        // evaluations inside); wall-clock makes the oracle's cost visible
        // next to its answer.
        let t0 = std::time::Instant::now();
        let oracle = exhaustive_best_assignment(&solver, &rings, &demands, TAU, IDLE, T_DTM, DELTA)
            .expect("search runs");
        let search = t0.elapsed();
        match oracle {
            Some(best) => {
                let gap = (1.0 - greedy_ips / best.total_ips) * 100.0;
                println!(
                    "{:<24} {:>12.2} {:>12.2} {:>8.2}% {:>10} {:>8.1?}",
                    label, greedy_ips, best.total_ips, gap, best.explored, search
                );
                println!(
                    "csv,oracle-gap,{},{:.4},{:.4},{:.4},{},{:.6}",
                    label.replace(' ', "-"),
                    greedy_ips,
                    best.total_ips,
                    gap,
                    best.explored,
                    search.as_secs_f64()
                );
            }
            None => println!("{label:<24} no thermally safe assignment exists"),
        }
    }
}
