//! Fig. 4(a) — comparative evaluation with homogeneous workloads.
//!
//! The 64-core chip is fully loaded with vari-sized multi-threaded
//! instances of one benchmark (closed system, all instances start
//! together); the makespan under HotPotato is compared with PCMig.
//! The paper reports an average 10.72 % speedup, with the memory-bound
//! *canneal* showing the smallest gain (0.73 %).

use hotpotato::{HotPotato, HotPotatoConfig};
use hp_experiments::context::{Context, ContextError};
use hp_experiments::{paper_machine, thermal_model_for_grid, try_run};
use hp_sched::{HotPotatoDvfs, PcMig, PcMigConfig};
use hp_sim::SimConfig;
use hp_workload::{closed_batch, Benchmark};

fn main() -> Result<(), ContextError> {
    let sim_cfg = SimConfig {
        horizon: 120.0,
        ..SimConfig::default()
    };
    println!("Fig. 4(a) — homogeneous workloads on the 64-core chip (normalized makespan)");
    println!(
        "{:<14} {:>12} {:>12} {:>11} {:>9} {:>9} {:>7} {:>7}",
        "benchmark",
        "hotpotato ms",
        "pcmig ms",
        "hybrid ms",
        "speedup",
        "hyb spd",
        "hpDTM",
        "pmDTM"
    );
    let mut speedups = Vec::new();
    let mut hybrid_speedups = Vec::new();
    let mut last_runs = None;
    for benchmark in Benchmark::all() {
        let jobs = closed_batch(benchmark, 64, 42);

        let scenario = |what: &str| format!("fig4a: benchmark {}: {what}", benchmark.name());

        let mut hp = HotPotato::new(thermal_model_for_grid(8, 8), HotPotatoConfig::default())
            .with_context(|| scenario("HotPotato config"))?;
        let hp_m = try_run(paper_machine(), sim_cfg, jobs.clone(), &mut hp)
            .with_context(|| scenario("hotpotato run"))?;

        let mut pm = PcMig::new(thermal_model_for_grid(8, 8), PcMigConfig::default());
        let pm_m = try_run(paper_machine(), sim_cfg, jobs.clone(), &mut pm)
            .with_context(|| scenario("pcmig run"))?;

        // Extension (paper future work): rotation unified with DVFS.
        let mut hy = HotPotatoDvfs::new(thermal_model_for_grid(8, 8), HotPotatoConfig::default())
            .with_context(|| scenario("hybrid config"))?;
        let hy_m = try_run(paper_machine(), sim_cfg, jobs, &mut hy)
            .with_context(|| scenario("hybrid run"))?;

        let speedup = pm_m.makespan / hp_m.makespan - 1.0;
        let hybrid_speedup = pm_m.makespan / hy_m.makespan - 1.0;
        speedups.push(speedup);
        hybrid_speedups.push(hybrid_speedup);
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>11.1} {:>8.2}% {:>8.2}% {:>7} {:>7}",
            benchmark.name(),
            hp_m.makespan * 1e3,
            pm_m.makespan * 1e3,
            hy_m.makespan * 1e3,
            speedup * 100.0,
            hybrid_speedup * 100.0,
            hp_m.dtm_intervals,
            pm_m.dtm_intervals,
        );
        println!(
            "csv,fig4a,{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{:.2},{:.2}",
            benchmark.name(),
            hp_m.makespan * 1e3,
            pm_m.makespan * 1e3,
            hy_m.makespan * 1e3,
            speedup * 100.0,
            hybrid_speedup * 100.0,
            hp_m.dtm_intervals,
            pm_m.dtm_intervals,
            hp_m.peak_temperature,
            pm_m.peak_temperature
        );
        last_runs = Some((hp_m, pm_m, hy_m));
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let avg_h = hybrid_speedups.iter().sum::<f64>() / hybrid_speedups.len() as f64;
    println!();
    println!(
        "average speedup vs PCMig: hotpotato {:.2}%  (paper: 10.72%), hybrid extension {:.2}%",
        avg * 100.0,
        avg_h * 100.0
    );
    println!("csv,fig4a-summary,{:.4},{:.4}", avg * 100.0, avg_h * 100.0);
    if let Some((hp_m, pm_m, hy_m)) = &last_runs {
        println!();
        println!("scheduling-hook overhead per scheduler (last benchmark, fully loaded chip):");
        for m in [hp_m, pm_m, hy_m] {
            hp_experiments::print_hook_overhead(m);
        }
    }
    Ok(())
}
