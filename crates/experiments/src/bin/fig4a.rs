//! Fig. 4(a) — comparative evaluation with homogeneous workloads.
//!
//! The 64-core chip is fully loaded with vari-sized multi-threaded
//! instances of one benchmark (closed system, all instances start
//! together); the makespan under HotPotato is compared with PCMig.
//! The paper reports an average 10.72 % speedup, with the memory-bound
//! *canneal* showing the smallest gain (0.73 %).
//!
//! The binary is a thin sweep spec: 3 schedulers × 8 benchmarks expand
//! through `hp-campaign`, which runs them on a worker pool and shares
//! the 8×8 chip's factorizations across all 24 jobs via the model
//! cache.

use hp_campaign::{run_campaign, CampaignConfig, JobOutcome, JobStatus, SweepSpec};
use hp_experiments::context::{Context, ContextError};
use hp_workload::Benchmark;

fn main() -> Result<(), ContextError> {
    let mut spec = SweepSpec::new(["hotpotato", "pcmig", "hybrid"]);
    spec.benchmarks = Benchmark::all()
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    spec.grids = vec![(8, 8)];
    spec.horizon_seconds = 120.0;
    let jobs = spec.expand().context("fig4a: sweep spec")?;
    let config = CampaignConfig {
        workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&jobs, &config).context("fig4a: campaign")?;

    // Outcomes arrive in expansion order (scheduler-major); index them by
    // (scheduler, benchmark) for the comparison table.
    let outcome = |scheduler: &str, benchmark: Benchmark| -> Result<&JobOutcome, ContextError> {
        let prefix = format!("closed:{}:", benchmark.name());
        let o = report
            .jobs
            .iter()
            .find(|o| o.scheduler == scheduler && o.workload.starts_with(&prefix))
            .with_context(|| {
                format!("fig4a: no outcome for {scheduler} on {}", benchmark.name())
            })?;
        if o.status != JobStatus::Completed {
            return Err(ContextError::msg(format!(
                "fig4a: {scheduler} on {}: {} ({})",
                benchmark.name(),
                o.status.label(),
                o.cause
            )));
        }
        Ok(o)
    };

    println!("Fig. 4(a) — homogeneous workloads on the 64-core chip (normalized makespan)");
    println!(
        "{:<14} {:>12} {:>12} {:>11} {:>9} {:>9} {:>7} {:>7}",
        "benchmark",
        "hotpotato ms",
        "pcmig ms",
        "hybrid ms",
        "speedup",
        "hyb spd",
        "hpDTM",
        "pmDTM"
    );
    let mut speedups = Vec::new();
    let mut hybrid_speedups = Vec::new();
    let mut last_runs = None;
    for benchmark in Benchmark::all() {
        let hp_m = outcome("hotpotato", benchmark)?;
        let pm_m = outcome("pcmig", benchmark)?;
        let hy_m = outcome("hybrid", benchmark)?;

        let speedup = pm_m.makespan_seconds / hp_m.makespan_seconds - 1.0;
        let hybrid_speedup = pm_m.makespan_seconds / hy_m.makespan_seconds - 1.0;
        speedups.push(speedup);
        hybrid_speedups.push(hybrid_speedup);
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>11.1} {:>8.2}% {:>8.2}% {:>7} {:>7}",
            benchmark.name(),
            hp_m.makespan_seconds * 1e3,
            pm_m.makespan_seconds * 1e3,
            hy_m.makespan_seconds * 1e3,
            speedup * 100.0,
            hybrid_speedup * 100.0,
            hp_m.dtm_intervals,
            pm_m.dtm_intervals,
        );
        println!(
            "csv,fig4a,{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{:.2},{:.2}",
            benchmark.name(),
            hp_m.makespan_seconds * 1e3,
            pm_m.makespan_seconds * 1e3,
            hy_m.makespan_seconds * 1e3,
            speedup * 100.0,
            hybrid_speedup * 100.0,
            hp_m.dtm_intervals,
            pm_m.dtm_intervals,
            hp_m.peak_celsius,
            pm_m.peak_celsius
        );
        last_runs = Some((hp_m, pm_m, hy_m));
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let avg_h = hybrid_speedups.iter().sum::<f64>() / hybrid_speedups.len() as f64;
    println!();
    println!(
        "average speedup vs PCMig: hotpotato {:.2}%  (paper: 10.72%), hybrid extension {:.2}%",
        avg * 100.0,
        avg_h * 100.0
    );
    println!("csv,fig4a-summary,{:.4},{:.4}", avg * 100.0, avg_h * 100.0);
    if let Some((hp_m, pm_m, hy_m)) = &last_runs {
        println!();
        println!("scheduling-hook overhead per scheduler (last benchmark, fully loaded chip):");
        for o in [hp_m, pm_m, hy_m] {
            hp_experiments::print_hook_overhead_report(&o.scheduler, &o.report);
        }
    }
    let cache = &report.campaign;
    println!();
    println!(
        "model cache: {} hits / {} misses across {} jobs",
        cache.counter("campaign.cache.hits").unwrap_or(0),
        cache.counter("campaign.cache.misses").unwrap_or(0),
        report.jobs.len()
    );
    Ok(())
}
