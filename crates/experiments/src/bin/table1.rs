//! Table I — the simulated S-NUCA processor configuration, printed from
//! the live `ArchConfig` defaults so the reproduction cannot drift from
//! the documentation.

use hp_experiments::paper_machine;

fn main() {
    let machine = paper_machine();
    let cfg = machine.config();
    let ladder = &cfg.dvfs;
    println!("Table I — core parameters of the simulated S-NUCA processor");
    println!("{:<22} {}", "Number of cores", cfg.core_count());
    println!(
        "{:<22} x86-like OoO interval model, {:.1}-{:.1} GHz DVFS ({} levels)",
        "Core model",
        ladder.frequency_ghz(ladder.min_level()),
        ladder.frequency_ghz(ladder.max_level()),
        ladder.level_count()
    );
    println!(
        "{:<22} {}/{} KB, 8/8-way, {} B blocks",
        "L1 I/D cache", cfg.l1_kb, cfg.l1_kb, cfg.block_bytes
    );
    println!(
        "{:<22} {} KB per core, 16-way, {} B blocks",
        "LLC", cfg.llc_kb_per_core, cfg.block_bytes
    );
    println!("{:<22} {} ns per hop", "NoC latency", cfg.noc_hop_ns);
    println!("{:<22} 256 bit", "NoC link width");
    println!("{:<22} {} mm^2", "Core area", cfg.core_area_mm2);
    println!();
    println!(
        "Derived: centre-core LLC round trip {:.1} ns, corner-core {:.1} ns",
        machine
            .llc_latency_ns(hp_floorplan::CoreId(27))
            .expect("core 27 exists"),
        machine
            .llc_latency_ns(hp_floorplan::CoreId(0))
            .expect("core 0 exists"),
    );
    println!(
        "csv,table1,{},{},{},{},{},{}",
        cfg.core_count(),
        cfg.l1_kb,
        cfg.llc_kb_per_core,
        cfg.noc_hop_ns,
        cfg.block_bytes,
        cfg.core_area_mm2
    );
}
