//! Fig. 3 — the concentric AMD-based rotation rings of the 64-core chip,
//! plus the performance/thermal gradient across them (inner rings: lower
//! AMD ⇒ faster LLC but thermally constrained; outer rings: the reverse).

use hp_experiments::{paper_machine, thermal_model};
use hp_floorplan::CoreId;
use hp_linalg::Vector;
use hp_manycore::WorkPoint;

fn main() {
    let machine = paper_machine();
    let model = thermal_model(&machine);
    let rings = machine.rings();
    let fp = machine.floorplan();

    println!("Fig. 3 — concentric AMD rings of the 8x8 S-NUCA chip");
    println!(
        "{:>5} {:>6} {:>6} {:>14} {:>16}",
        "ring", "cores", "AMD", "LLC ns (avg)", "loaded T (C)"
    );
    for (i, ring) in rings.iter().enumerate() {
        let llc: f64 = ring
            .cores()
            .iter()
            .map(|&c| machine.llc_latency_ns(c).expect("core in range"))
            .sum::<f64>()
            / ring.capacity() as f64;
        // Thermal severity under load: with the whole chip drawing a
        // uniform 2.5 W background, adding a 7 W thread on this ring —
        // inner rings are thermally constrained, outer rings relaxed
        // (the gradient HotPotato's ring escalation exploits).
        let hot = ring
            .cores()
            .iter()
            .map(|&c| {
                let mut p = Vector::constant(machine.core_count(), 2.5);
                p[c.index()] = 7.0;
                let t = model.steady_state(&p).expect("steady state solves");
                t[c.index()]
            })
            .sum::<f64>()
            / ring.capacity() as f64;
        println!(
            "{:>5} {:>6} {:>6.2} {:>14.1} {:>16.1}",
            i,
            ring.capacity(),
            ring.amd(),
            llc,
            hot
        );
        println!(
            "csv,fig3,{},{},{:.3},{:.2},{:.2}",
            i,
            ring.capacity(),
            ring.amd(),
            llc,
            hot
        );
    }

    println!();
    println!("Ring map (core -> ring index):");
    for y in 0..fp.height() {
        let row: Vec<String> = (0..fp.width())
            .map(|x| {
                let core = fp.core_at(x, y).expect("coordinate in range");
                format!("{:>2}", rings.ring_of(core).index())
            })
            .collect();
        println!("  {}", row.join(" "));
    }

    // The per-ring performance of a memory-bound thread (the quantity the
    // CPI-sorted promotions in Algorithm 2 exploit).
    println!();
    println!("Memory-bound thread IPS by ring (4 GHz):");
    for (i, ring) in rings.iter().enumerate() {
        let core = ring.cores()[0];
        let ips = machine
            .cpi_stack(&WorkPoint::memory_bound(), core, 4.0)
            .expect("core in range")
            .ips();
        println!("  ring {i}: {:.2} GIPS", ips / 1e9);
    }
    let _ = CoreId(0);
}
