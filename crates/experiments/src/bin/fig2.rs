//! Fig. 2 — thermal traces of a two-threaded *blackscholes* on the centre
//! cores of a 16-core chip under three managers:
//!
//! (a) unmanaged at peak frequency (pinned on cores 5 and 10),
//! (b) TSP power budgeting (DVFS),
//! (c) synchronous thread rotation (HotPotato).
//!
//! The paper reports 68 ms / 84 ms / 74 ms response times with (a)
//! violating the 70 °C threshold (~80 °C) and (b), (c) staying below it.

use hotpotato::{HotPotato, HotPotatoConfig};
use hp_experiments::context::{Context, ContextError};
use hp_experiments::plot::ascii_chart;
use hp_experiments::{motivational_machine, thermal_model_for_grid};
use hp_floorplan::CoreId;
use hp_sched::TspUniform;
use hp_sim::schedulers::PinnedScheduler;
use hp_sim::SimConfig;
use hp_workload::{Benchmark, Job, JobId};

fn job() -> Vec<Job> {
    vec![Job {
        id: JobId(0),
        benchmark: Benchmark::Blackscholes,
        spec: Benchmark::Blackscholes.spec(2),
        arrival: 0.0,
    }]
}

fn run_traced(
    cfg: SimConfig,
    scheduler: &mut dyn hp_sim::Scheduler,
) -> Result<(hp_sim::Metrics, Vec<f64>), ContextError> {
    let name = scheduler.name().to_owned();
    let mut sim = hp_sim::Simulation::new(
        motivational_machine(),
        hp_thermal::ThermalConfig::default(),
        cfg,
    )
    .with_context(|| format!("fig2: simulation config for `{name}`"))?;
    let metrics = sim
        .run(job(), scheduler)
        .with_context(|| format!("fig2: trace run for `{name}`"))?;
    Ok((metrics, sim.trace().peak_series()))
}

fn main() -> Result<(), ContextError> {
    let trace_cfg = SimConfig {
        record_trace: true,
        ..SimConfig::default()
    };

    // (a) Unmanaged: DTM disabled so the overshoot is observable, as in
    // the paper's trace.
    let unmanaged_cfg = SimConfig {
        dtm_enabled: false,
        ..trace_cfg
    };
    let mut pinned = PinnedScheduler::with_preferred_cores(vec![CoreId(5), CoreId(10)]);
    let (a, trace_a) = run_traced(unmanaged_cfg, &mut pinned)?;

    // (b) TSP DVFS budgeting, pinned on the same cores.
    let mut tsp = TspUniform::new(thermal_model_for_grid(4, 4), 70.0, 0.3)
        .with_preferred_cores(vec![CoreId(5), CoreId(10)]);
    let (b, trace_b) = run_traced(trace_cfg, &mut tsp)?;

    // (c) HotPotato synchronous rotation at the paper's fixed τ = 0.5 ms
    // ("rotated ... at a rotation interval of 0.5 ms in every phase").
    let fixed_tau = HotPotatoConfig {
        tau_levels: vec![0.5e-3],
        initial_tau_index: 0,
        ..HotPotatoConfig::default()
    };
    let mut hp = HotPotato::new(thermal_model_for_grid(4, 4), fixed_tau)
        .context("fig2: HotPotato config with fixed tau = 0.5 ms")?;
    let (c, trace_c) = run_traced(trace_cfg, &mut hp)?;

    println!("Fig. 2 — two-threaded blackscholes on a 16-core chip (threshold 70 C)");
    println!(
        "{:<28} {:>12} {:>10} {:>6} {:>11}",
        "manager", "response ms", "peak C", "DTM", "migrations"
    );
    for (label, m) in [
        ("(a) unmanaged @ 4 GHz", &a),
        ("(b) TSP power budgeting", &b),
        ("(c) synchronous rotation", &c),
    ] {
        println!(
            "{:<28} {:>12.1} {:>10.1} {:>6} {:>11}",
            label,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
        println!(
            "csv,fig2,{},{:.4},{:.2},{},{}",
            label.split_whitespace().next().unwrap_or(label),
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
    }
    println!();
    println!("hottest-junction traces (a = unmanaged, b = TSP, c = rotation):");
    print!(
        "{}",
        ascii_chart(&[('a', &trace_a), ('b', &trace_b), ('c', &trace_c)], 70, 12)
    );
    println!();
    println!(
        "rotation penalty vs unmanaged: {:+.1}%  (paper: +8.1%)",
        (c.makespan / a.makespan - 1.0) * 100.0
    );
    println!(
        "rotation speedup vs TSP/DVFS:  {:+.1}%  (paper: +11.9%)",
        (b.makespan / c.makespan - 1.0) * 100.0
    );
    println!(
        "csv,fig2-summary,{:.4},{:.4}",
        (c.makespan / a.makespan - 1.0) * 100.0,
        (b.makespan / c.makespan - 1.0) * 100.0
    );
    println!();
    println!("scheduling-hook overhead per manager (paper §VI: 23.76 us mean for rotation):");
    for m in [&a, &b, &c] {
        hp_experiments::print_hook_overhead(m);
    }
    Ok(())
}
