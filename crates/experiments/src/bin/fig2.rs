//! Fig. 2 — thermal traces of a two-threaded *blackscholes* on the centre
//! cores of a 16-core chip under three managers:
//!
//! (a) unmanaged at peak frequency (pinned on cores 5 and 10),
//! (b) TSP power budgeting (DVFS),
//! (c) synchronous thread rotation (HotPotato).
//!
//! The paper reports 68 ms / 84 ms / 74 ms response times with (a)
//! violating the 70 °C threshold (~80 °C) and (b), (c) staying below it.
//!
//! The three scenarios run as one campaign: programmatic
//! [`CampaignJob`]s (the pinned cores and fixed τ are beyond the sweep
//! grammar) sharing the 4×4 chip's factorizations through the model
//! cache, with each job keeping its hottest-junction trace.

use hp_campaign::{run_campaign, CampaignConfig, CampaignJob, JobStatus, Workload};
use hp_experiments::context::{Context, ContextError};
use hp_experiments::plot::ascii_chart;
use hp_sim::SimConfig;
use hp_workload::{Benchmark, Job, JobId};

fn workload() -> Workload {
    Workload::Explicit(vec![Job {
        id: JobId(0),
        benchmark: Benchmark::Blackscholes,
        spec: Benchmark::Blackscholes.spec(2),
        arrival: 0.0,
    }])
}

fn main() -> Result<(), ContextError> {
    let trace_cfg = SimConfig {
        record_trace: true,
        ..SimConfig::default()
    };

    // (a) Unmanaged: DTM disabled so the overshoot is observable, as in
    // the paper's trace.
    let mut unmanaged = CampaignJob::new(
        "(a) unmanaged @ 4 GHz",
        "pinned",
        (4, 4),
        workload(),
        SimConfig {
            dtm_enabled: false,
            ..trace_cfg
        },
    );
    unmanaged.preferred_cores = vec![5, 10];
    unmanaged.keep_peak_series = true;

    // (b) TSP DVFS budgeting, pinned on the same cores.
    let mut tsp = CampaignJob::new(
        "(b) TSP power budgeting",
        "tsp",
        (4, 4),
        workload(),
        trace_cfg,
    );
    tsp.preferred_cores = vec![5, 10];
    tsp.keep_peak_series = true;

    // (c) HotPotato synchronous rotation at the paper's fixed τ = 0.5 ms
    // ("rotated ... at a rotation interval of 0.5 ms in every phase").
    let mut rotation = CampaignJob::new(
        "(c) synchronous rotation",
        "hotpotato",
        (4, 4),
        workload(),
        trace_cfg,
    );
    rotation.fixed_tau_seconds = Some(0.5e-3);
    rotation.keep_peak_series = true;

    let jobs = vec![unmanaged, tsp, rotation];
    let config = CampaignConfig {
        workers: jobs.len(),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&jobs, &config).context("fig2: campaign")?;
    for o in &report.jobs {
        if o.status != JobStatus::Completed {
            return Err(ContextError::msg(format!(
                "fig2: {}: {} ({})",
                o.label,
                o.status.label(),
                o.cause
            )));
        }
    }
    let (a, b, c) = (&report.jobs[0], &report.jobs[1], &report.jobs[2]);

    println!("Fig. 2 — two-threaded blackscholes on a 16-core chip (threshold 70 C)");
    println!(
        "{:<28} {:>12} {:>10} {:>6} {:>11}",
        "manager", "response ms", "peak C", "DTM", "migrations"
    );
    for m in [a, b, c] {
        println!(
            "{:<28} {:>12.1} {:>10.1} {:>6} {:>11}",
            m.label,
            m.makespan_seconds * 1e3,
            m.peak_celsius,
            m.dtm_intervals,
            m.migrations
        );
        println!(
            "csv,fig2,{},{:.4},{:.2},{},{}",
            m.label.split_whitespace().next().unwrap_or(&m.label),
            m.makespan_seconds * 1e3,
            m.peak_celsius,
            m.dtm_intervals,
            m.migrations
        );
    }
    println!();
    println!("hottest-junction traces (a = unmanaged, b = TSP, c = rotation):");
    print!(
        "{}",
        ascii_chart(
            &[
                ('a', &a.peak_series),
                ('b', &b.peak_series),
                ('c', &c.peak_series)
            ],
            70,
            12
        )
    );
    println!();
    println!(
        "rotation penalty vs unmanaged: {:+.1}%  (paper: +8.1%)",
        (c.makespan_seconds / a.makespan_seconds - 1.0) * 100.0
    );
    println!(
        "rotation speedup vs TSP/DVFS:  {:+.1}%  (paper: +11.9%)",
        (b.makespan_seconds / c.makespan_seconds - 1.0) * 100.0
    );
    println!(
        "csv,fig2-summary,{:.4},{:.4}",
        (c.makespan_seconds / a.makespan_seconds - 1.0) * 100.0,
        (b.makespan_seconds / c.makespan_seconds - 1.0) * 100.0
    );
    println!();
    println!("scheduling-hook overhead per manager (paper §VI: 23.76 us mean for rotation):");
    for m in [a, b, c] {
        hp_experiments::print_hook_overhead_report(&m.scheduler, &m.report);
    }
    Ok(())
}
