//! Fig. 4(b) — comparative evaluation with a heterogeneous workload in an
//! open system.
//!
//! A random 20-benchmark multi-program multi-threaded workload arrives as
//! a Poisson process; the arrival rate sweeps the system from under- to
//! over-loaded. The paper reports that HotPotato's gains over PCMig are
//! minimal at the extremes and peak (≈12.27 %) at medium load.

use hotpotato::{HotPotato, HotPotatoConfig};
use hp_experiments::context::{Context, ContextError};
use hp_experiments::plot::ascii_chart;
use hp_experiments::{paper_machine, thermal_model_for_grid, try_run};
use hp_sched::{PcMig, PcMigConfig};
use hp_sim::SimConfig;
use hp_workload::open_poisson;

fn main() -> Result<(), ContextError> {
    let sim_cfg = SimConfig {
        horizon: 600.0,
        ..SimConfig::default()
    };
    let rates = [5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0];
    println!("Fig. 4(b) — heterogeneous 20-job open system, response-time speedup vs arrival rate");
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "rate (1/s)", "hotpotato ms", "pcmig ms", "speedup"
    );
    let mut best = f64::NEG_INFINITY;
    let mut speedups = Vec::new();
    for rate in rates {
        // Average over several seeds to tame placement luck.
        let mut hp_total = 0.0;
        let mut pm_total = 0.0;
        for seed in [7u64, 11, 13] {
            let jobs = open_poisson(20, rate, seed);

            let scenario = |what: &str| format!("fig4b: rate {rate}/s, seed {seed}: {what}");

            let mut hp = HotPotato::new(thermal_model_for_grid(8, 8), HotPotatoConfig::default())
                .with_context(|| scenario("HotPotato config"))?;
            let hp_m = try_run(paper_machine(), sim_cfg, jobs.clone(), &mut hp)
                .with_context(|| scenario("hotpotato run"))?;

            let mut pm = PcMig::new(thermal_model_for_grid(8, 8), PcMigConfig::default());
            let pm_m = try_run(paper_machine(), sim_cfg, jobs, &mut pm)
                .with_context(|| scenario("pcmig run"))?;

            hp_total += hp_m
                .mean_response_time()
                .with_context(|| scenario("no hotpotato job completed"))?;
            pm_total += pm_m
                .mean_response_time()
                .with_context(|| scenario("no pcmig job completed"))?;
        }
        let speedup = pm_total / hp_total - 1.0;
        speedups.push(speedup * 100.0);
        best = best.max(speedup);
        println!(
            "{:>12.0} {:>14.1} {:>14.1} {:>8.2}%",
            rate,
            hp_total / 3.0 * 1e3,
            pm_total / 3.0 * 1e3,
            speedup * 100.0
        );
        println!(
            "csv,fig4b,{},{:.4},{:.4},{:.4}",
            rate,
            hp_total / 3.0 * 1e3,
            pm_total / 3.0 * 1e3,
            speedup * 100.0
        );
    }
    println!();
    println!("speedup vs load (x = rate sweep, log-spaced):");
    print!("{}", ascii_chart(&[('*', &speedups)], 56, 8));
    println!();
    println!(
        "peak speedup: {:.2}%  (paper: up to 12.27% at medium load)",
        best * 100.0
    );
    println!("csv,fig4b-summary,{:.4}", best * 100.0);
    Ok(())
}
