//! Ablation sweeps over the design choices DESIGN.md §5 calls out:
//!
//! 1. rotation interval τ (fixed values vs. the adaptive default),
//! 2. thermal-headroom hysteresis Δ,
//! 3. DTM threshold,
//! 4. migration cost (flush latency),
//! 5. DTM scope (chip-wide crash vs per-core throttling),
//! 6. cold vs pre-warmed chip (where Algorithm 1's d→∞ cycle is exact),
//! 7. rotation disabled entirely (placement-only HotPotato),
//! 8. Algorithm-1 evaluation strategy (serial per-candidate loop vs the
//!    batched GEMM kernel the scheduler and the oracle now use).
//!
//! Each sweep runs the Fig. 2 motivational workload (2-thread
//! *blackscholes* on the 16-core chip) plus a loaded 16-core batch, and
//! reports response time / makespan, peak temperature and DTM pressure.

use hotpotato::{HotPotato, HotPotatoConfig};
use hp_experiments::context::{Context, ContextError};
use hp_experiments::{motivational_machine, thermal_model_for_grid, try_run};
use hp_manycore::{ArchConfig, Machine, MigrationModel};
use hp_sched::{PcMig, PcMigConfig};
use hp_sim::{DtmScope, SimConfig};
use hp_workload::{closed_batch, Benchmark, Job, JobId};

fn blackscholes2() -> Vec<Job> {
    vec![Job {
        id: JobId(0),
        benchmark: Benchmark::Blackscholes,
        spec: Benchmark::Blackscholes.spec(2),
        arrival: 0.0,
    }]
}

fn hp_with(cfg: HotPotatoConfig) -> Result<HotPotato, ContextError> {
    HotPotato::new(thermal_model_for_grid(4, 4), cfg).context("building HotPotato")
}

fn main() -> Result<(), ContextError> {
    let sim = SimConfig {
        horizon: 60.0,
        ..SimConfig::default()
    };

    println!("Ablation 1 — fixed rotation interval tau (2-thread blackscholes, 16 cores)");
    println!(
        "{:>12} {:>12} {:>8} {:>6} {:>11}",
        "tau", "resp ms", "peak C", "DTM", "migrations"
    );
    for tau in [0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3] {
        let cfg = HotPotatoConfig {
            tau_levels: vec![tau],
            initial_tau_index: 0,
            ..HotPotatoConfig::default()
        };
        let m = try_run(
            motivational_machine(),
            sim,
            blackscholes2(),
            &mut hp_with(cfg)?,
        )
        .with_context(|| format!("ablation 1: fixed tau {} ms", tau * 1e3))?;
        println!(
            "{:>10.2}ms {:>12.1} {:>8.1} {:>6} {:>11}",
            tau * 1e3,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
        println!(
            "csv,ablation-tau,{},{:.4},{:.2},{},{}",
            tau,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
    }
    {
        let m = try_run(
            motivational_machine(),
            sim,
            blackscholes2(),
            &mut hp_with(HotPotatoConfig::default())?,
        )
        .context("ablation 1: adaptive tau")?;
        println!(
            "{:>12} {:>12.1} {:>8.1} {:>6} {:>11}",
            "adaptive",
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
        println!(
            "csv,ablation-tau,adaptive,{:.4},{:.2},{},{}",
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
    }

    println!();
    println!("Ablation 2 — headroom hysteresis delta (full 16-core x264 batch)");
    println!(
        "{:>12} {:>12} {:>8} {:>6} {:>11}",
        "delta C", "makespan ms", "peak C", "DTM", "migrations"
    );
    for delta in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let cfg = HotPotatoConfig {
            delta_headroom: delta,
            ..HotPotatoConfig::default()
        };
        let jobs = closed_batch(Benchmark::X264, 16, 5);
        let m = try_run(motivational_machine(), sim, jobs, &mut hp_with(cfg)?)
            .with_context(|| format!("ablation 2: delta {delta} C"))?;
        println!(
            "{:>12.2} {:>12.1} {:>8.1} {:>6} {:>11}",
            delta,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
        println!(
            "csv,ablation-delta,{},{:.4},{:.2},{},{}",
            delta,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
    }

    println!();
    println!("Ablation 3 — DTM threshold (2-thread blackscholes)");
    println!(
        "{:>12} {:>12} {:>8} {:>6}",
        "t_dtm C", "resp ms", "peak C", "DTM"
    );
    for t_dtm in [60.0, 65.0, 70.0, 75.0, 80.0] {
        let cfg = HotPotatoConfig {
            t_dtm,
            ..HotPotatoConfig::default()
        };
        let sim_t = SimConfig { t_dtm, ..sim };
        let m = try_run(
            motivational_machine(),
            sim_t,
            blackscholes2(),
            &mut hp_with(cfg)?,
        )
        .with_context(|| format!("ablation 3: t_dtm {t_dtm} C"))?;
        println!(
            "{:>12.0} {:>12.1} {:>8.1} {:>6}",
            t_dtm,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals
        );
        println!(
            "csv,ablation-tdtm,{},{:.4},{:.2},{}",
            t_dtm,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals
        );
    }

    println!();
    println!("Ablation 4 — migration flush cost (2-thread blackscholes, fixed tau 0.5 ms)");
    println!(
        "{:>12} {:>12} {:>8} {:>11}",
        "flush us", "resp ms", "peak C", "migrations"
    );
    for flush_us in [0.0, 4.0, 8.0, 20.0, 50.0, 100.0] {
        let machine = Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            migration: MigrationModel {
                flush_us,
                ..MigrationModel::default()
            },
            ..ArchConfig::default()
        })
        .with_context(|| format!("ablation 4: arch config with flush {flush_us} us"))?;
        let cfg = HotPotatoConfig {
            tau_levels: vec![0.5e-3],
            initial_tau_index: 0,
            ..HotPotatoConfig::default()
        };
        let m = try_run(machine, sim, blackscholes2(), &mut hp_with(cfg)?)
            .with_context(|| format!("ablation 4: flush {flush_us} us"))?;
        println!(
            "{:>12.0} {:>12.1} {:>8.1} {:>11}",
            flush_us,
            m.makespan * 1e3,
            m.peak_temperature,
            m.migrations
        );
        println!(
            "csv,ablation-flush,{},{:.4},{:.2},{}",
            flush_us,
            m.makespan * 1e3,
            m.peak_temperature,
            m.migrations
        );
    }

    println!();
    println!("Ablation 5 — DTM scope (full 16-core swaptions batch under pure rotation)");
    for (label, scope) in [
        ("chip-wide", DtmScope::Chip),
        ("per-core", DtmScope::PerCore),
    ] {
        let sim_s = SimConfig {
            dtm_scope: scope,
            ..sim
        };
        let jobs = closed_batch(Benchmark::Swaptions, 16, 1);
        let m = try_run(
            motivational_machine(),
            sim_s,
            jobs,
            &mut hp_with(HotPotatoConfig::default())?,
        )
        .with_context(|| format!("ablation 5: {label} DTM"))?;
        println!(
            "{:<10} makespan {:>7.1} ms, peak {:>5.1} C, DTM {:>5}, avg freq {:>5.2} GHz",
            label,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.avg_frequency_ghz
        );
        println!(
            "csv,ablation-dtm,{},{:.4},{:.2},{},{:.4}",
            label,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.avg_frequency_ghz
        );
    }

    println!();
    println!("Ablation 6 — cold vs pre-warmed chip (16-core x264 batch, HotPotato vs PCMig)");
    for (label, prewarm) in [("cold start", None), ("pre-warmed 2.5 W", Some(2.5))] {
        let sim_w = SimConfig {
            prewarm_power: prewarm,
            ..sim
        };
        let jobs = closed_batch(Benchmark::X264, 16, 5);
        let hp_m = try_run(
            motivational_machine(),
            sim_w,
            jobs.clone(),
            &mut hp_with(HotPotatoConfig::default())?,
        )
        .with_context(|| format!("ablation 6: {label}, hotpotato"))?;
        let mut pm = PcMig::new(thermal_model_for_grid(4, 4), PcMigConfig::default());
        let pm_m = try_run(motivational_machine(), sim_w, jobs, &mut pm)
            .with_context(|| format!("ablation 6: {label}, pcmig"))?;
        println!(
            "{:<18} hotpotato {:>6.1} ms vs pcmig {:>6.1} ms ({:+.2} %), peaks {:.1}/{:.1} C",
            label,
            hp_m.makespan * 1e3,
            pm_m.makespan * 1e3,
            (pm_m.makespan / hp_m.makespan - 1.0) * 100.0,
            hp_m.peak_temperature,
            pm_m.peak_temperature
        );
        println!(
            "csv,ablation-prewarm,{},{:.4},{:.4},{:.2},{:.2}",
            prewarm.map_or(0.0, |p| p),
            hp_m.makespan * 1e3,
            pm_m.makespan * 1e3,
            hp_m.peak_temperature,
            pm_m.peak_temperature
        );
    }

    println!();
    println!("Ablation 7 — rotation disabled (placement-only HotPotato, DTM as backstop)");
    for (label, rotation) in [("rotation on", true), ("rotation off", false)] {
        let cfg = HotPotatoConfig {
            rotation_enabled: rotation,
            ..HotPotatoConfig::default()
        };
        let m = try_run(
            motivational_machine(),
            sim,
            blackscholes2(),
            &mut hp_with(cfg)?,
        )
        .with_context(|| format!("ablation 7: {label}"))?;
        println!(
            "{:<14} resp {:>7.1} ms, peak {:>5.1} C, DTM {:>4}, migrations {:>4}",
            label,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
        println!(
            "csv,ablation-rotation,{},{:.4},{:.2},{},{}",
            rotation,
            m.makespan * 1e3,
            m.peak_temperature,
            m.dtm_intervals,
            m.migrations
        );
    }

    println!();
    println!("Ablation 8 — Algorithm-1 evaluation strategy (16 candidate rotations, 16-core chip)");
    {
        use hotpotato::{EpochPowerSequence, RotationPeakSolver};
        let solver = RotationPeakSolver::new(thermal_model_for_grid(4, 4))
            .context("ablation 8: solver decomposition")?;
        // 16 candidate rotations: two 7 W threads on the centre ring, all
        // relative spacings and four τ levels.
        let ring = [5usize, 6, 10, 9];
        let seqs: Vec<EpochPowerSequence> = (0..16)
            .map(|i| {
                let sep = 1 + i % 4;
                let tau = [0.25e-3, 0.5e-3, 1e-3, 2e-3][i / 4];
                let epochs = (0..4)
                    .map(|e| {
                        let mut p = hp_linalg::Vector::constant(16, 0.3);
                        p[ring[e % 4]] = 7.0;
                        p[ring[(e + sep) % 4]] = 7.0;
                        p
                    })
                    .collect();
                EpochPowerSequence::new(tau, epochs)
                    .with_context(|| format!("ablation 8: candidate {i}"))
            })
            .collect::<Result<_, _>>()?;
        let reps = 200;
        let t0 = std::time::Instant::now();
        let mut serial = Vec::new();
        for _ in 0..reps {
            serial = seqs
                .iter()
                .map(|s| {
                    solver
                        .peak_celsius(s)
                        .context("ablation 8: serial evaluation")
                })
                .collect::<Result<_, _>>()?;
        }
        let t_serial = t0.elapsed() / reps;
        let t0 = std::time::Instant::now();
        let mut batch = Vec::new();
        for _ in 0..reps {
            batch = solver
                .peak_celsius_many(&seqs)
                .context("ablation 8: batched evaluation")?;
        }
        let t_batch = t0.elapsed() / reps;
        let worst = serial
            .iter()
            .zip(&batch)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "serial {:>9.1?}  batch {:>9.1?}  speedup {:>4.1}x  worst |diff| {:.1e} C",
            t_serial,
            t_batch,
            t_serial.as_secs_f64() / t_batch.as_secs_f64(),
            worst
        );
        println!(
            "csv,ablation-batch,16,{:.6},{:.6},{:.3e}",
            t_serial.as_secs_f64(),
            t_batch.as_secs_f64(),
            worst
        );
    }
    Ok(())
}
