//! **Extension (paper §VII future work):** synchronous task rotation on a
//! 3D-stacked S-NUCA chip.
//!
//! Two active dies share one heat-removal path, so the buried die runs
//! structurally hotter. The rotation analytics (Algorithm 1) apply
//! unchanged to the stacked RC model; this binary quantifies how much an
//! *inter-die* rotation — alternating a hot thread between the buried and
//! the top die — buys over pinning it on either die, and compares planar
//! vs vertical rotation rings.

use hotpotato::{EpochPowerSequence, RotationPeakSolver};
use hp_experiments::pct;
use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_thermal::{stacked::stacked_model, ThermalConfig};

fn main() {
    let fp = GridFloorplan::new(4, 4).expect("grid");
    let n = fp.core_count();
    let dies = 2;
    let model = stacked_model(&fp, &ThermalConfig::default(), dies, 0.8).expect("builds");
    let cores = model.core_count();
    let solver = RotationPeakSolver::new(model).expect("decomposes");
    let watts = 6.0;
    let idle = 0.3;
    let tau = 0.5e-3;

    let pinned = |core: usize| {
        let mut p = Vector::constant(cores, idle);
        p[core] = watts;
        EpochPowerSequence::new(tau, vec![p]).expect("valid")
    };

    // Inter-die rotation: the thread alternates between the buried core 5
    // and the top-die core directly above it (5 + n).
    let interdie = {
        let epochs = (0..2)
            .map(|e| {
                let mut p = Vector::constant(cores, idle);
                p[if e == 0 { 5 } else { 5 + n }] = watts;
                p
            })
            .collect();
        EpochPowerSequence::new(tau, epochs).expect("valid")
    };

    // Planar rotation on the buried die's centre ring {5, 6, 10, 9}.
    let planar = {
        let ring = [5usize, 6, 10, 9];
        let epochs = (0..4)
            .map(|e| {
                let mut p = Vector::constant(cores, idle);
                p[ring[e % 4]] = watts;
                p
            })
            .collect();
        EpochPowerSequence::new(tau, epochs).expect("valid")
    };

    // Combined: rotate over the centre rings of BOTH dies (8 positions).
    let combined = {
        let ring = [5usize, 6, 10, 9, 5 + n, 6 + n, 10 + n, 9 + n];
        let epochs = (0..8)
            .map(|e| {
                let mut p = Vector::constant(cores, idle);
                p[ring[e % 8]] = watts;
                p
            })
            .collect();
        EpochPowerSequence::new(tau, epochs).expect("valid")
    };

    let p_buried = solver.peak_celsius(&pinned(5)).expect("computes");
    let p_top = solver.peak_celsius(&pinned(5 + n)).expect("computes");
    let p_inter = solver.peak_celsius(&interdie).expect("computes");
    let p_planar = solver.peak_celsius(&planar).expect("computes");
    let p_comb = solver.peak_celsius(&combined).expect("computes");

    println!("3D-stacked 4x4x2 S-NUCA chip, one {watts} W thread, tau = 0.5 ms");
    println!("{:<38} {:>8}", "schedule", "peak C");
    for (label, v) in [
        ("pinned on buried die (core 5)", p_buried),
        ("pinned on top die (core 21)", p_top),
        ("inter-die rotation (2 positions)", p_inter),
        ("planar rotation, buried ring (4)", p_planar),
        ("combined 2-die ring rotation (8)", p_comb),
    ] {
        println!("{label:<38} {v:>8.1}");
        println!("csv,stacked3d,{},{:.2}", label.replace(',', ";"), v);
    }
    println!();
    println!(
        "vertical heterogeneity (buried - top, pinned): {:.1} C",
        p_buried - p_top
    );
    println!(
        "inter-die rotation vs pinned-buried: {} of the excess over ambient",
        pct((p_buried - p_inter) / (p_buried - 45.0))
    );
    println!(
        "combined ring vs best pinned: {:.1} C cooler",
        p_top.min(p_buried) - p_comb
    );
}
