//! §VI run-time overhead — wall-clock cost of a HotPotato scheduling
//! decision on the 64-core chip under full load.
//!
//! The paper measures 23.76 µs per synchronous-rotation schedule
//! computation across 10 000 runs (4.75 % of a 0.5 ms epoch). We time
//! (a) one full-chip Algorithm-1 peak evaluation (the efficient
//! recurrence), (b) the literal Eq.-(10) reference form, and (c) the
//! design-time phase (eigendecomposition).

use std::time::Instant;

use hotpotato::{EpochPowerSequence, RotationPeakSolver};
use hp_experiments::thermal_model_for_grid;
use hp_linalg::Vector;

fn full_load_sequence(cores: usize, delta: usize, tau: f64) -> EpochPowerSequence {
    // A rotation of `delta` epochs over a fully loaded chip: a mix of hot
    // and cool threads shifting one slot per epoch.
    let powers: Vec<f64> = (0..cores)
        .map(|i| if i % 3 == 0 { 7.0 } else { 2.5 })
        .collect();
    let epochs = (0..delta)
        .map(|e| Vector::from_fn(cores, |c| powers[(c + e) % cores]))
        .collect();
    EpochPowerSequence::new(tau, epochs).expect("valid sequence")
}

fn main() {
    let model = thermal_model_for_grid(8, 8);

    let t0 = Instant::now();
    let solver = RotationPeakSolver::new(model).expect("eigendecomposition succeeds");
    let design_time = t0.elapsed();

    println!("Run-time overhead on the 64-core chip (paper: 23.76 us per schedule)");
    println!("design-time phase (eigendecomposition of N=192 nodes): {design_time:?}");

    for delta in [4usize, 8, 16] {
        let seq = full_load_sequence(64, delta, 0.5e-3);
        // Warm up, then measure.
        let _ = solver.peak_celsius(&seq).expect("peak computes");
        let reps = 10_000;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(solver.peak_celsius(&seq).expect("peak computes"));
        }
        let per_call = t0.elapsed().as_secs_f64() / f64::from(reps);

        let ref_reps = 1_000;
        let t0 = Instant::now();
        for _ in 0..ref_reps {
            std::hint::black_box(solver.peak_reference(&seq).expect("peak computes"));
        }
        let per_ref = t0.elapsed().as_secs_f64() / f64::from(ref_reps);

        println!(
            "delta={delta:>2}: algorithm 1 (recurrence) {:>8.2} us | literal Eq.(10) {:>8.2} us | {:.2}% of a 0.5 ms epoch",
            per_call * 1e6,
            per_ref * 1e6,
            per_call / 0.5e-3 * 100.0
        );
        println!(
            "csv,overhead,{delta},{:.4},{:.4}",
            per_call * 1e6,
            per_ref * 1e6
        );
    }
}
