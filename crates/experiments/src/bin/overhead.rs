//! §VI run-time overhead — wall-clock cost of a HotPotato scheduling
//! decision on the 64-core chip under full load.
//!
//! The paper measures 23.76 µs per synchronous-rotation schedule
//! computation across 10 000 runs (4.75 % of a 0.5 ms epoch). We time
//! (a) one full-chip Algorithm-1 peak evaluation (the efficient
//! recurrence), (b) the literal Eq.-(10) reference form, and (c) the
//! design-time phase (eigendecomposition) — all through the shared
//! [`hp_obs`] profiler, so the output reports the same p50/p95/max
//! percentiles the engine records for live scheduler hooks.

use hotpotato::{EpochPowerSequence, RotationPeakSolver};
use hp_experiments::thermal_model_for_grid;
use hp_linalg::Vector;
use hp_obs::{Registry, ScopedTimer};

fn full_load_sequence(cores: usize, delta: usize, tau: f64) -> EpochPowerSequence {
    // A rotation of `delta` epochs over a fully loaded chip: a mix of hot
    // and cool threads shifting one slot per epoch.
    let powers: Vec<f64> = (0..cores)
        .map(|i| if i % 3 == 0 { 7.0 } else { 2.5 })
        .collect();
    let epochs = (0..delta)
        .map(|e| Vector::from_fn(cores, |c| powers[(c + e) % cores]))
        .collect();
    EpochPowerSequence::new(tau, epochs).expect("valid sequence")
}

fn print_summary(label: &str, delta: usize, h: &hp_obs::HistogramSummary) {
    println!(
        "delta={delta:>2}: {label:<24} mean {:>8.2} us | p50 {:>8.2} us | \
         p95 {:>8.2} us | max {:>8.2} us ({} reps)",
        h.mean_us, h.p50_us, h.p95_us, h.max_us, h.count
    );
    println!(
        "csv,overhead,{delta},{label},{:.4},{:.4},{:.4},{:.4}",
        h.mean_us, h.p50_us, h.p95_us, h.max_us
    );
}

fn main() {
    let model = thermal_model_for_grid(8, 8);
    let reg = Registry::new();

    let solver = {
        let _t = ScopedTimer::start(&reg, "design.eigendecomposition");
        RotationPeakSolver::new(model).expect("eigendecomposition succeeds")
    };
    reg.set_meta("gemm_backend", hp_linalg::Matrix::gemm_backend());

    for delta in [4usize, 8, 16] {
        let seq = full_load_sequence(64, delta, 0.5e-3);
        // Warm up, then measure.
        let _ = solver.peak_celsius(&seq).expect("peak computes");
        let alg1 = format!("alg1.delta{delta}");
        for _ in 0..10_000 {
            let _t = ScopedTimer::start(&reg, &alg1);
            std::hint::black_box(solver.peak_celsius(&seq).expect("peak computes"));
        }
        let reference = format!("eq10.delta{delta}");
        for _ in 0..1_000 {
            let _t = ScopedTimer::start(&reg, &reference);
            std::hint::black_box(solver.peak_reference(&seq).expect("peak computes"));
        }
    }

    let report = reg.snapshot();
    println!("Run-time overhead on the 64-core chip (paper: 23.76 us per schedule)");
    println!(
        "GEMM backend: {}",
        report.meta_value("gemm_backend").unwrap_or("unknown")
    );
    if let Some(h) = report.histogram("design.eigendecomposition") {
        println!(
            "design-time phase (eigendecomposition of N=192 nodes): {:.1} ms",
            h.max_us / 1e3
        );
    }
    for delta in [4usize, 8, 16] {
        if let Some(h) = report.histogram(&format!("alg1.delta{delta}")) {
            print_summary("algorithm 1 (recurrence)", delta, h);
            println!(
                "          -> {:.2}% of a 0.5 ms epoch at p50",
                h.p50_us / 500.0 * 100.0
            );
        }
        if let Some(h) = report.histogram(&format!("eq10.delta{delta}")) {
            print_summary("literal Eq.(10)", delta, h);
        }
    }
}
