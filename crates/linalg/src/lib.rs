//! Dense linear-algebra kernels used by the HotPotato thermal tool-chain.
//!
//! Compact RC thermal models (HotSpot-style) lead to small dense systems:
//! a 64-core, three-layer model has `N ≈ 200` thermal nodes. At that size
//! dense LU factorization and a cyclic Jacobi eigensolver are both simpler
//! and faster than sparse machinery, and — crucially for the peak-temperature
//! proofs in the paper — the Jacobi route gives us a *guaranteed orthogonal*
//! eigenbasis of the symmetrized system matrix.
//!
//! The crate deliberately implements only what the tool-chain needs:
//!
//! * [`Matrix`] / [`Vector`] — owned, row-major dense containers with the
//!   usual arithmetic.
//! * [`LuDecomposition`] — partial-pivoting LU with solve / inverse /
//!   determinant.
//! * [`CholeskyDecomposition`] — pivot-free `L·Lᵀ` factorization for SPD
//!   matrices; doubles as the positive-definiteness check for assembled
//!   RC networks.
//! * [`SymmetricEigen`] — cyclic Jacobi eigensolver for symmetric matrices,
//!   plus the diagonal-congruence transform used to factorize `C = -A⁻¹B`
//!   when `A` is diagonal positive and `B` is symmetric positive definite.
//! * [`expm()`](fn@crate::expm) — matrix exponentials, both through an
//!   eigendecomposition (the MatEx route) and through scaling-and-squaring
//!   (validation / fallback).
//!
//! # Example
//!
//! ```
//! use hp_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), hp_linalg::LinalgError> {
//! let b = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let p = Vector::from(vec![1.0, 2.0]);
//! let lu = b.lu()?;
//! let t = lu.solve(&p)?;
//! let residual = (&b * &t - p).norm_inf();
//! assert!(residual < 1e-12);
//! # Ok(())
//! # }
//! ```

mod error;
mod matrix;
mod vector;

pub mod cholesky;
pub mod convert;
pub mod eigen;
pub mod expm;
pub mod lu;

pub use cholesky::CholeskyDecomposition;
pub use eigen::SymmetricEigen;
pub use error::{LinalgError, NumericalError};
pub use expm::expm;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use vector::Vector;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
