//! Partial-pivoting LU decomposition.
//!
//! The thermal model's conductance matrix `B` must be inverted once per
//! configuration (`T_steady = B⁻¹(P + T_amb·G)`, paper Eq. 3) and its
//! factorization is reused for every steady-state solve. A dense
//! Doolittle-style LU with partial pivoting is exact enough: `B` is
//! symmetric positive definite and well conditioned for physical RC values.

use crate::{LinalgError, Matrix, Result, Vector};

/// A partial-pivoting LU decomposition `P·A = L·U` of a square matrix.
///
/// Factor once, then [`solve`](LuDecomposition::solve) many right-hand sides
/// — exactly the access pattern of repeated steady-state temperature solves.
///
/// # Example
///
/// ```
/// use hp_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), hp_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]])?;
/// let lu = a.lu()?;
/// let x = lu.solve(&Vector::from(vec![9.0, 8.0]))?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for the determinant).
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorizes `a` with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if a pivot collapses to (near) zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        // A pivot is declared singular relative to the largest entry of the
        // matrix, not in absolute terms, so well-scaled tiny systems factor.
        let scale = a.norm_inf().max(f64::MIN_POSITIVE);
        let tiny = scale * 1e-14 * crate::convert::usize_to_f64(n);

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = f[(k, k)].abs();
            for i in (k + 1)..n {
                let v = f[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= tiny {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = f[(k, j)];
                    f[(k, j)] = f[(pivot_row, j)];
                    f[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = f[(k, k)];
            for i in (k + 1)..n {
                let m = f[(i, k)] / pivot;
                f[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let fkj = f[(k, j)];
                        f[(i, j)] -= m * fkj;
                    }
                }
            }
        }

        Ok(LuDecomposition {
            factors: f,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.factors[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.factors[(i, j)] * x[j];
            }
            x[i] = s / self.factors[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve_matrix",
                left: (n, n),
                right: (b.rows(), b.cols()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.column(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Computes the inverse `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factorized
    /// matrix of matching dimension).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.factors[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn solve_known_3x3() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let b = Vector::from(vec![8.0, -11.0, -3.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
        assert_close(x[2], -1.0, 1e-12);
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
        assert_close(a.lu().unwrap().determinant(), -6.0, 1e-12);
    }

    #[test]
    fn determinant_identity_is_one() {
        assert_close(Matrix::identity(5).lu().unwrap().determinant(), 1.0, 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 6.0, 3.0], &[1.0, 3.0, 7.0]]).unwrap();
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        let err = (&prod - &Matrix::identity(3)).norm_inf();
        assert!(err < 1e-12, "residual {err}");
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a
            .lu()
            .unwrap()
            .solve(&Vector::from(vec![2.0, 3.0]))
            .unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn solve_dimension_mismatch() {
        let lu = Matrix::identity(3).lu().unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
