//! Partial-pivoting LU decomposition.
//!
//! The thermal model's conductance matrix `B` must be inverted once per
//! configuration (`T_steady = B⁻¹(P + T_amb·G)`, paper Eq. 3) and its
//! factorization is reused for every steady-state solve. A dense
//! Doolittle-style LU with partial pivoting is exact enough: `B` is
//! symmetric positive definite and well conditioned for physical RC values.

use crate::{LinalgError, Matrix, Result, Vector};

/// A partial-pivoting LU decomposition `P·A = L·U` of a square matrix.
///
/// Factor once, then [`solve`](LuDecomposition::solve) many right-hand sides
/// — exactly the access pattern of repeated steady-state temperature solves.
///
/// # Example
///
/// ```
/// use hp_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), hp_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]])?;
/// let lu = a.lu()?;
/// let x = lu.solve(&Vector::from(vec![9.0, 8.0]))?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for the determinant).
    perm_sign: f64,
    /// `‖A‖₁` of the factorized matrix, captured at factorization time for
    /// [`condition_estimate`](LuDecomposition::condition_estimate).
    norm_one: f64,
}

impl LuDecomposition {
    /// Factorizes `a` with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if a pivot collapses to (near) zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        // A pivot is declared singular relative to the largest entry of the
        // matrix, not in absolute terms, so well-scaled tiny systems factor.
        let scale = a.norm_inf().max(f64::MIN_POSITIVE);
        let tiny = scale * 1e-14 * crate::convert::usize_to_f64(n);

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = f[(k, k)].abs();
            for i in (k + 1)..n {
                let v = f[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= tiny {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = f[(k, j)];
                    f[(k, j)] = f[(pivot_row, j)];
                    f[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = f[(k, k)];
            for i in (k + 1)..n {
                let m = f[(i, k)] / pivot;
                f[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let fkj = f[(k, j)];
                        f[(i, j)] -= m * fkj;
                    }
                }
            }
        }

        Ok(LuDecomposition {
            factors: f,
            perm,
            perm_sign,
            norm_one: a.norm_one(),
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.factors[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.factors[(i, j)] * x[j];
            }
            x[i] = s / self.factors[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve_matrix",
                left: (n, n),
                right: (b.rows(), b.cols()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.column(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Solves `Aᵀ·x = b` using the same factors (`Aᵀ = Uᵀ·Lᵀ·P`).
    ///
    /// The transposed solve is what the Hager condition estimator needs:
    /// estimating `‖A⁻¹‖₁` requires products with both `A⁻¹` and `A⁻ᵀ`,
    /// and reusing the factorization keeps the estimate `O(n²)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve_transposed",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Aᵀ = Uᵀ·Lᵀ·P: forward-substitute Uᵀ (lower triangular with U's
        // diagonal), back-substitute Lᵀ (unit upper triangular), then undo
        // the row permutation.
        let mut w = b.clone();
        for i in 0..n {
            let mut s = w[i];
            for j in 0..i {
                s -= self.factors[(j, i)] * w[j];
            }
            w[i] = s / self.factors[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = w[i];
            for j in (i + 1)..n {
                s -= self.factors[(j, i)] * w[j];
            }
            w[i] = s;
        }
        let mut x = Vector::zeros(n);
        for i in 0..n {
            x[self.perm[i]] = w[i];
        }
        Ok(x)
    }

    /// 1-norm condition-number estimate `‖A‖₁·‖A⁻¹‖₁` via Hager's power
    /// method on `A⁻¹`, reusing the existing factors (a handful of `O(n²)`
    /// substitutions — no inverse is formed).
    ///
    /// The estimate is a lower bound on the true condition number that is
    /// almost always within a small factor of it; callers compare it
    /// against a trust threshold, not against an exact value.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factorized
    /// matrix).
    pub fn condition_estimate(&self) -> Result<f64> {
        let n = self.dim();
        if n == 0 {
            return Ok(0.0);
        }
        // Hager's estimator for ‖A⁻¹‖₁: walk towards the maximizing unit
        // 1-norm vector, following the gradient sign through A⁻ᵀ.
        let inv_n = 1.0 / crate::convert::usize_to_f64(n);
        let mut x = Vector::constant(n, inv_n);
        let mut estimate = 0.0f64;
        for _ in 0..5 {
            let y = self.solve(&x)?;
            let y_norm: f64 = y.iter().map(|v| v.abs()).sum();
            if y_norm <= estimate {
                break;
            }
            estimate = y_norm;
            let xi = Vector::from_fn(n, |i| if y[i] >= 0.0 { 1.0 } else { -1.0 });
            let z = self.solve_transposed(&xi)?;
            let (mut best_j, mut best_v) = (0, 0.0f64);
            for j in 0..n {
                if z[j].abs() > best_v {
                    best_v = z[j].abs();
                    best_j = j;
                }
            }
            let dot: f64 = (0..n).map(|i| z[i] * x[i]).sum();
            if best_v <= dot {
                break;
            }
            x = Vector::from_fn(n, |i| if i == best_j { 1.0 } else { 0.0 });
        }
        Ok(self.norm_one * estimate)
    }

    /// Solves `A·x = b` with one round of iterative refinement: the raw
    /// substitution solution is corrected by solving for the residual
    /// `r = b − A·x` and adding the correction, which recovers most of the
    /// accuracy lost to a mildly ill-conditioned factorization.
    ///
    /// `a` must be the matrix this decomposition was built from; the
    /// residual is computed against it. The plain
    /// [`solve`](LuDecomposition::solve) is unchanged, so callers that
    /// depend on its exact bit patterns are unaffected.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] for wrong-size `a` or `b`.
    /// * [`NumericalError::NonFinite`] (wrapped) if the refined solution
    ///   contains NaN or infinity.
    ///
    /// [`NumericalError::NonFinite`]: crate::NumericalError::NonFinite
    pub fn solve_refined(&self, a: &Matrix, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if a.rows() != n || a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve_refined",
                left: (n, n),
                right: (a.rows(), a.cols()),
            });
        }
        let mut x = self.solve(b)?;
        for _ in 0..2 {
            let ax = a.mul_vector(&x);
            let r = Vector::from_fn(n, |i| b[i] - ax[i]);
            let r_norm = r.norm_inf();
            if r_norm == 0.0 || !r_norm.is_finite() {
                break;
            }
            let dx = self.solve(&r)?;
            x = Vector::from_fn(n, |i| x[i] + dx[i]);
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(crate::NumericalError::NonFinite {
                what: "lu refined solution",
            }
            .into());
        }
        Ok(x)
    }

    /// Computes the inverse `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factorized
    /// matrix of matching dimension).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.factors[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn solve_known_3x3() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let b = Vector::from(vec![8.0, -11.0, -3.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
        assert_close(x[2], -1.0, 1e-12);
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
        assert_close(a.lu().unwrap().determinant(), -6.0, 1e-12);
    }

    #[test]
    fn determinant_identity_is_one() {
        assert_close(Matrix::identity(5).lu().unwrap().determinant(), 1.0, 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 6.0, 3.0], &[1.0, 3.0, 7.0]]).unwrap();
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        let err = (&prod - &Matrix::identity(3)).norm_inf();
        assert!(err < 1e-12, "residual {err}");
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a
            .lu()
            .unwrap()
            .solve(&Vector::from(vec![2.0, 3.0]))
            .unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn solve_transposed_matches_explicit_transpose() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let b = Vector::from(vec![1.0, -2.0, 0.5]);
        let x = a.lu().unwrap().solve_transposed(&b).unwrap();
        let x_ref = a.transpose().lu().unwrap().solve(&b).unwrap();
        assert!((&x - &x_ref).norm_inf() < 1e-12);
    }

    #[test]
    fn condition_estimate_identity_is_one() {
        let est = Matrix::identity(4)
            .lu()
            .unwrap()
            .condition_estimate()
            .unwrap();
        assert_close(est, 1.0, 1e-12);
    }

    #[test]
    fn condition_estimate_tracks_diagonal_spread() {
        // cond₁ of diag(1, 1e-6) is exactly 1e6; Hager finds it exactly
        // for diagonal matrices.
        let a = Matrix::from_diagonal(&Vector::from(vec![1.0, 1e-6]));
        let est = a.lu().unwrap().condition_estimate().unwrap();
        assert!((est / 1e6 - 1.0).abs() < 1e-9, "estimate {est:e}");
    }

    #[test]
    fn condition_estimate_flags_near_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-10]]).unwrap();
        let est = a.lu().unwrap().condition_estimate().unwrap();
        assert!(est > 1e9, "estimate {est:e}");
    }

    #[test]
    fn solve_refined_improves_ill_conditioned_solution() {
        // A mildly ill-conditioned Hilbert-like system: refinement must not
        // make the residual worse, and the result must stay finite.
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let x_true = Vector::from_fn(n, |i| (i + 1) as f64);
        let b = a.mul_vector(&x_true);
        let lu = a.lu().unwrap();
        let refined = lu.solve_refined(&a, &b).unwrap();
        let r = {
            let ax = a.mul_vector(&refined);
            Vector::from_fn(n, |i| b[i] - ax[i]).norm_inf()
        };
        let plain = lu.solve(&b).unwrap();
        let r_plain = {
            let ax = a.mul_vector(&plain);
            Vector::from_fn(n, |i| b[i] - ax[i]).norm_inf()
        };
        assert!(
            r <= r_plain * (1.0 + 1e-9),
            "refined {r:e} vs plain {r_plain:e}"
        );
        assert!((&refined - &x_true).norm_inf() < 1e-6);
    }

    #[test]
    fn solve_refined_rejects_wrong_shape() {
        let a = Matrix::identity(3);
        let lu = a.lu().unwrap();
        assert!(matches!(
            lu.solve_refined(&Matrix::identity(2), &Vector::zeros(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_dimension_mismatch() {
        let lu = Matrix::identity(3).lu().unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
