//! Symmetric eigendecomposition via the cyclic Jacobi method, plus the
//! diagonal-congruence transform that factorizes the thermal system matrix
//! `C = -A⁻¹B`.
//!
//! `A` (thermal capacitances) is diagonal with strictly positive entries and
//! `B` (thermal conductances) is symmetric positive definite, so `C` is
//! similar to the symmetric negative definite matrix `-S` with
//! `S = A^{-1/2} B A^{-1/2}`:
//!
//! ```text
//! C = -A⁻¹B = A^{-1/2} · (-S) · A^{1/2}
//! ```
//!
//! Jacobi-decomposing `S = Q Λ Qᵀ` yields `C = V (-Λ) V⁻¹` with
//! `V = A^{-1/2} Q` and `V⁻¹ = Qᵀ A^{1/2}` — no general (nonsymmetric)
//! eigensolver is ever needed, and all eigenvalues of `C` are provably
//! negative, which is what makes the geometric-series closed forms of the
//! paper's Eq. (9) legitimate.

use crate::{LinalgError, Matrix, NumericalError, Result, Vector};

/// Maximum number of full Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: u32 = 64;

/// Eigendecomposition `M = Q Λ Qᵀ` of a symmetric matrix, with `Q` orthogonal.
///
/// Produced by [`Matrix::symmetric_eigen`] or [`SymmetricEigen::new`].
/// Eigenpairs are sorted by ascending eigenvalue.
///
/// # Example
///
/// ```
/// use hp_linalg::Matrix;
///
/// # fn main() -> Result<(), hp_linalg::LinalgError> {
/// let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = m.symmetric_eigen()?;
/// assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-10);
/// assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vector,
    /// Columns are the eigenvectors, in the same order as `eigenvalues`.
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Decomposes a symmetric matrix with the cyclic Jacobi method.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for rectangular input.
    /// * [`LinalgError::NotSymmetric`] if the asymmetry exceeds
    ///   `1e-8 · ‖M‖∞`.
    /// * [`NumericalError::NonConvergence`] (wrapped in
    ///   [`LinalgError::Numerical`]) if off-diagonal mass persists after
    ///   the sweep budget (practically unreachable for symmetric input).
    ///   The error carries the sweep count, the residual off-diagonal
    ///   norm, and the diagonal at abort as the partial eigenvalue
    ///   estimates.
    pub fn new(m: &Matrix) -> Result<Self> {
        if !m.is_square() {
            return Err(LinalgError::NotSquare {
                rows: m.rows(),
                cols: m.cols(),
            });
        }
        let n = m.rows();
        let scale = m.norm_inf().max(f64::MIN_POSITIVE);
        // Locate the worst asymmetric pair for a useful error message.
        for i in 0..n {
            for j in (i + 1)..n {
                let asym = (m[(i, j)] - m[(j, i)]).abs();
                if asym > 1e-8 * scale {
                    return Err(LinalgError::NotSymmetric {
                        at: (i, j),
                        asymmetry: asym,
                    });
                }
            }
        }

        let mut a = m.clone();
        let mut q = Matrix::identity(n);
        let tol = 1e-14 * scale;

        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    off = off.max(a[(i, j)].abs());
                }
            }
            if off <= tol {
                return Ok(Self::sorted(a.diagonal(), q));
            }
            for p in 0..n {
                for r in (p + 1)..n {
                    let apr = a[(p, r)];
                    if apr.abs() <= tol {
                        continue;
                    }
                    // Classic Jacobi rotation annihilating a[p][r].
                    let app = a[(p, p)];
                    let arr = a[(r, r)];
                    let theta = (arr - app) / (2.0 * apr);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akr = a[(k, r)];
                        a[(k, p)] = c * akp - s * akr;
                        a[(k, r)] = s * akp + c * akr;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let ark = a[(r, k)];
                        a[(p, k)] = c * apk - s * ark;
                        a[(r, k)] = s * apk + c * ark;
                    }
                    for k in 0..n {
                        let qkp = q[(k, p)];
                        let qkr = q[(k, r)];
                        q[(k, p)] = c * qkp - s * qkr;
                        q[(k, r)] = s * qkp + c * qkr;
                    }
                }
            }
        }
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(a[(i, j)].abs());
            }
        }
        Err(LinalgError::Numerical(NumericalError::NonConvergence {
            sweeps: MAX_SWEEPS,
            off_norm: off,
            partial: a.diagonal(),
        }))
    }

    fn sorted(values: Vector, vectors: Matrix) -> Self {
        let n = values.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let eigenvalues = Vector::from_fn(n, |i| values[order[i]]);
        let eigenvectors = Matrix::from_fn(n, n, |i, j| vectors[(i, order[j])]);
        SymmetricEigen {
            eigenvalues,
            eigenvectors,
        }
    }

    /// Eigenvalues, ascending.
    pub fn eigenvalues(&self) -> &Vector {
        &self.eigenvalues
    }

    /// Orthogonal eigenvector matrix `Q` (columns match `eigenvalues`).
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Reconstructs `Q Λ Qᵀ` (for validation).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.eigenvalues.len();
        let q = &self.eigenvectors;
        // Element-wise Q·Λ·Qᵀ — no intermediate products, no shape checks
        // to fail.
        Matrix::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| q[(i, k)] * self.eigenvalues[k] * q[(j, k)])
                .sum()
        })
    }
}

/// Eigendecomposition of the thermal system matrix `C = -A⁻¹B`.
///
/// Holds `C = V · diag(λ) · V⁻¹` with all `λ < 0`. Built once per chip
/// configuration and reused by every transient and peak-temperature solve.
///
/// # Example
///
/// ```
/// use hp_linalg::{eigen::SystemEigen, Matrix, Vector};
///
/// # fn main() -> Result<(), hp_linalg::LinalgError> {
/// let a_diag = Vector::from(vec![1.0, 2.0]);
/// let b = Matrix::from_rows(&[&[3.0, -1.0], &[-1.0, 2.0]])?;
/// let sys = SystemEigen::new(&a_diag, &b)?;
/// assert!(sys.eigenvalues().iter().all(|&l| l < 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemEigen {
    eigenvalues: Vector,
    v: Matrix,
    v_inv: Matrix,
}

impl SystemEigen {
    /// Builds the decomposition from the diagonal of `A` and the symmetric
    /// conductance matrix `B`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidInput`] if any capacitance is non-positive or
    ///   dimensions disagree.
    /// * Errors from the underlying Jacobi decomposition.
    pub fn new(a_diag: &Vector, b: &Matrix) -> Result<Self> {
        let n = a_diag.len();
        if b.rows() != n || b.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "system eigendecomposition",
                left: (n, 1),
                right: (b.rows(), b.cols()),
            });
        }
        if a_diag.iter().any(|&c| c <= 0.0 || !c.is_finite()) {
            return Err(LinalgError::InvalidInput(
                "thermal capacitances must be positive and finite",
            ));
        }
        let inv_sqrt = Vector::from_fn(n, |i| 1.0 / a_diag[i].sqrt());
        let sqrt_a = Vector::from_fn(n, |i| a_diag[i].sqrt());
        // S = A^{-1/2} B A^{-1/2}, symmetric by construction.
        let s = Matrix::from_fn(n, n, |i, j| inv_sqrt[i] * b[(i, j)] * inv_sqrt[j]);
        // Numerical symmetrization guards against round-off in B's assembly.
        let s = Matrix::from_fn(n, n, |i, j| 0.5 * (s[(i, j)] + s[(j, i)]));
        let eig = SymmetricEigen::new(&s)?;
        let q = eig.eigenvectors();
        let v = Matrix::from_fn(n, n, |i, j| inv_sqrt[i] * q[(i, j)]);
        let v_inv = Matrix::from_fn(n, n, |i, j| q[(j, i)] * sqrt_a[j]);
        let eigenvalues = Vector::from_fn(n, |i| -eig.eigenvalues()[i]);
        Ok(SystemEigen {
            eigenvalues,
            v,
            v_inv,
        })
    }

    /// Dimension `N` of the system.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Eigenvalues of `C` (all negative for a physical RC model).
    pub fn eigenvalues(&self) -> &Vector {
        &self.eigenvalues
    }

    /// Eigenvector matrix `V`.
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Inverse eigenvector matrix `V⁻¹`.
    pub fn v_inv(&self) -> &Matrix {
        &self.v_inv
    }

    /// Eigenvalue spread `max|λ| / min|λ|` — the condition number of the
    /// diagonalized system. A huge spread means the fast and slow thermal
    /// modes differ by many orders of magnitude and the eigen route's
    /// round-off is no longer negligible; solvers use this to decide
    /// whether to arm their dense fallback.
    ///
    /// Returns infinity if any eigenvalue is (numerically) zero.
    pub fn eigenvalue_spread(&self) -> f64 {
        let mut min_abs = f64::INFINITY;
        let mut max_abs = 0.0f64;
        for &l in &self.eigenvalues {
            min_abs = min_abs.min(l.abs());
            max_abs = max_abs.max(l.abs());
        }
        if min_abs == 0.0 {
            return f64::INFINITY;
        }
        max_abs / min_abs
    }

    /// Residual `‖V·V⁻¹ − I‖∞` of the eigenbasis — a cheap spot check that
    /// the decomposition still inverts cleanly. For a healthy model this
    /// is at round-off level (≲ 1e-12); values far above that mean the
    /// congruence transform lost accuracy.
    pub fn basis_residual(&self) -> f64 {
        let n = self.dim();
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += self.v[(i, k)] * self.v_inv[(k, j)];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((acc - expect).abs());
            }
        }
        worst
    }

    /// Evaluates `e^{C·t} · x` without forming the full exponential.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn exp_apply(&self, t: f64, x: &Vector) -> Vector {
        let y = self.v_inv.mul_vector(x);
        let scaled = Vector::from_fn(self.dim(), |i| (self.eigenvalues[i] * t).exp() * y[i]);
        self.v.mul_vector(&scaled)
    }

    /// Forms the dense matrix `e^{C·t}`.
    pub fn exp_matrix(&self, t: f64) -> Matrix {
        let n = self.dim();
        let d = Vector::from_fn(n, |i| (self.eigenvalues[i] * t).exp());
        // V · diag(d) · V⁻¹ computed without an intermediate product.
        Matrix::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| self.v[(i, k)] * d[k] * self.v_inv[(k, j)])
                .sum()
        })
    }

    /// Forms `V · diag(d) · V⁻¹` for an arbitrary spectral filter `d`.
    ///
    /// This is the workhorse of the rotation peak-temperature closed form
    /// (paper Eq. 10), where `d` is e.g. `1 / (1 - e^{δλτ})`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != self.dim()`.
    pub fn spectral_filter(&self, d: &Vector) -> Matrix {
        let n = self.dim();
        assert_eq!(d.len(), n, "spectral filter length mismatch");
        Matrix::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| self.v[(i, k)] * d[k] * self.v_inv[(k, j)])
                .sum()
        })
    }

    /// Applies `V · diag(d) · V⁻¹ · x` without forming the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `d.len()` or `x.len()` differ from `self.dim()`.
    pub fn spectral_apply(&self, d: &Vector, x: &Vector) -> Vector {
        let y = self.v_inv.mul_vector(x);
        let filtered = Vector::from_fn(self.dim(), |i| d[i] * y[i]);
        self.v.mul_vector(&filtered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_2x2_known() {
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = m.symmetric_eigen().unwrap();
        assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_reconstruction() {
        let m = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 5.0]]).unwrap();
        let eig = m.symmetric_eigen().unwrap();
        let err = (&eig.reconstruct() - &m).norm_inf();
        assert!(err < 1e-10, "reconstruction error {err}");
    }

    #[test]
    fn jacobi_orthogonality() {
        let m = Matrix::from_fn(6, 6, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let eig = m.symmetric_eigen().unwrap();
        let q = eig.eigenvectors();
        let qtq = q.transpose().mul_matrix(q).unwrap();
        let err = (&qtq - &Matrix::identity(6)).norm_inf();
        assert!(err < 1e-10, "orthogonality error {err}");
    }

    #[test]
    fn jacobi_rejects_asymmetric() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            m.symmetric_eigen(),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn jacobi_diagonal_is_trivial() {
        let m = Matrix::from_diagonal(&Vector::from(vec![3.0, 1.0, 2.0]));
        let eig = m.symmetric_eigen().unwrap();
        assert_eq!(eig.eigenvalues().as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn system_eigen_matches_direct_c() {
        let a_diag = Vector::from(vec![1.0, 2.0, 0.5]);
        let b =
            Matrix::from_rows(&[&[3.0, -1.0, 0.0], &[-1.0, 2.5, -0.5], &[0.0, -0.5, 1.5]]).unwrap();
        let sys = SystemEigen::new(&a_diag, &b).unwrap();
        // Reconstruct C = V diag(lambda) V^{-1} and compare with -A^{-1}B.
        let c_rebuilt = sys.spectral_filter(sys.eigenvalues());
        let c_direct = Matrix::from_fn(3, 3, |i, j| -b[(i, j)] / a_diag[i]);
        let err = (&c_rebuilt - &c_direct).norm_inf();
        assert!(err < 1e-10, "C reconstruction error {err}");
    }

    #[test]
    fn system_eigenvalues_negative() {
        let a_diag = Vector::from(vec![0.1, 0.2, 0.3, 0.4]);
        let b = Matrix::from_fn(4, 4, |i, j| {
            if i == j {
                2.0 + i as f64
            } else if i.abs_diff(j) == 1 {
                -0.7
            } else {
                0.0
            }
        });
        let sys = SystemEigen::new(&a_diag, &b).unwrap();
        assert!(sys.eigenvalues().iter().all(|&l| l < 0.0));
    }

    #[test]
    fn exp_apply_at_zero_is_identity() {
        let a_diag = Vector::from(vec![1.0, 1.0]);
        let b = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        let sys = SystemEigen::new(&a_diag, &b).unwrap();
        let x = Vector::from(vec![1.0, -2.0]);
        let y = sys.exp_apply(0.0, &x);
        assert!((&y - &x).norm_inf() < 1e-12);
    }

    #[test]
    fn exp_apply_decays_to_zero() {
        let a_diag = Vector::from(vec![1.0, 1.0]);
        let b = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        let sys = SystemEigen::new(&a_diag, &b).unwrap();
        let x = Vector::from(vec![5.0, 7.0]);
        let y = sys.exp_apply(100.0, &x);
        assert!(y.norm_inf() < 1e-10);
    }

    #[test]
    fn system_rejects_nonpositive_capacitance() {
        let a_diag = Vector::from(vec![1.0, 0.0]);
        let b = Matrix::identity(2);
        assert!(SystemEigen::new(&a_diag, &b).is_err());
    }

    #[test]
    fn eigenvalue_spread_and_basis_residual_healthy() {
        let a_diag = Vector::from(vec![0.5, 1.5, 1.0]);
        let b =
            Matrix::from_rows(&[&[2.0, -0.5, 0.0], &[-0.5, 3.0, -1.0], &[0.0, -1.0, 2.5]]).unwrap();
        let sys = SystemEigen::new(&a_diag, &b).unwrap();
        let spread = sys.eigenvalue_spread();
        assert!((1.0..1e3).contains(&spread), "spread {spread:e}");
        assert!(sys.basis_residual() < 1e-12);
    }

    #[test]
    fn eigenvalue_spread_grows_with_capacitance_ratio() {
        // Widely split capacitances stretch the mode spectrum.
        let a_diag = Vector::from(vec![1e-9, 1.0]);
        let b = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        let sys = SystemEigen::new(&a_diag, &b).unwrap();
        assert!(sys.eigenvalue_spread() > 1e8);
    }

    #[test]
    fn exp_matrix_matches_exp_apply() {
        let a_diag = Vector::from(vec![0.5, 1.5, 1.0]);
        let b =
            Matrix::from_rows(&[&[2.0, -0.5, 0.0], &[-0.5, 3.0, -1.0], &[0.0, -1.0, 2.5]]).unwrap();
        let sys = SystemEigen::new(&a_diag, &b).unwrap();
        let x = Vector::from(vec![1.0, 2.0, 3.0]);
        let via_matrix = sys.exp_matrix(0.3).mul_vector(&x);
        let via_apply = sys.exp_apply(0.3, &x);
        assert!((&via_matrix - &via_apply).norm_inf() < 1e-12);
    }
}
