use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::{LinalgError, LuDecomposition, Result, SymmetricEigen, Vector};

/// An owned, dense, row-major matrix of `f64` values.
///
/// All matrices in the thermal tool-chain are small (`N ≲ 600`), so a simple
/// contiguous row-major layout with straightforward triple-loop kernels is
/// both adequate and cache-friendly.
///
/// # Example
///
/// ```
/// use hp_linalg::Matrix;
///
/// # fn main() -> Result<(), hp_linalg::LinalgError> {
/// let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]])?;
/// let inv = b.lu()?.inverse()?;
/// assert!((inv[(0, 0)] - 0.5).abs() < 1e-12);
/// assert!((inv[(1, 1)] - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the diagonal.
    pub fn from_diagonal(diag: &Vector) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        m
    }

    /// Creates a matrix by evaluating `f` at every `(row, col)` position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `rows` is empty or the rows
    /// have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(LinalgError::InvalidInput("from_rows: no rows"));
        }
        let ncols = rows[0].len();
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(LinalgError::InvalidInput("from_rows: ragged rows"));
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn column(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index {j} out of bounds");
        Vector::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Copies the main diagonal into a new [`Vector`].
    pub fn diagonal(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self[(i, i)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * alpha).collect(),
        }
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vector(&self, v: &Vector) -> Vector {
        assert_eq!(v.len(), self.cols, "mul_vector: dimension mismatch");
        Vector::from_fn(self.rows, |i| {
            self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum()
        })
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// Register-tiled over a block of output columns: each output element
    /// accumulates its dot product in a register while the inner loop
    /// streams a row of `self` against a 32-column panel of `other`, so
    /// the hot loop does two loads per multiply-add instead of the
    /// load/load/store of the textbook axpy form. For every output
    /// element the `k`-contributions are accumulated in ascending order
    /// from `0.0` — the exact addition order of
    /// [`mul_vector`](Matrix::mul_vector)'s dot products — so multiplying
    /// a column-stacked batch reproduces the per-vector products bit for
    /// bit. The batched Algorithm-1 kernel
    /// (`hotpotato::RotationPeakSolver::peak_celsius_many`) relies on
    /// this. On x86-64 the same kernel body is re-compiled for AVX-512F /
    /// AVX2 and dispatched at run time; lane-wise IEEE arithmetic keeps
    /// the results identical to the portable build.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions
    /// differ.
    pub fn mul_matrix(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matrix multiply",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let (m, n, inner) = (self.rows, other.cols, self.cols);
        let mut out = Matrix::zeros(m, n);
        // Under Miri the `#[target_feature]` kernels cannot run (Miri has
        // no AVX); everything routes through the scalar reference body.
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: the avx512f requirement was just checked.
                unsafe { gemm_tiled_avx512(&mut out.data, &self.data, &other.data, m, n, inner) };
                return Ok(out);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: the avx2 requirement was just checked.
                unsafe { gemm_tiled_avx2(&mut out.data, &self.data, &other.data, m, n, inner) };
                return Ok(out);
            }
        }
        gemm_tiled(&mut out.data, &self.data, &other.data, m, n, inner);
        Ok(out)
    }

    /// Name of the GEMM backend [`mul_matrix`](Matrix::mul_matrix)
    /// dispatches to on this CPU: `"avx512f"`, `"avx2"`, or `"scalar"`.
    ///
    /// The sanitizer CI job logs this from a test to prove the SIMD
    /// kernels actually executed under AddressSanitizer; under Miri it
    /// always reports `"scalar"`.
    #[must_use]
    pub fn gemm_backend() -> &'static str {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return "avx512f";
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return "avx2";
            }
        }
        "scalar"
    }

    /// Largest absolute entry.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Induced 1-norm: the largest absolute column sum. This is the norm
    /// the Hager condition estimator works in
    /// ([`LuDecomposition::condition_estimate`]).
    pub fn norm_one(&self) -> f64 {
        let mut worst = 0.0f64;
        for j in 0..self.cols {
            let mut sum = 0.0;
            for i in 0..self.rows {
                sum += self[(i, j)].abs();
            }
            worst = worst.max(sum);
        }
        worst
    }

    /// Largest absolute asymmetry `max |m[i][j] - m[j][i]|` (square matrices).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn max_asymmetry(&self) -> f64 {
        assert!(self.is_square(), "max_asymmetry requires a square matrix");
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Returns `true` if the matrix is symmetric up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.max_asymmetry() <= tol
    }

    /// Computes the partial-pivoting LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices and
    /// [`LinalgError::Singular`] for singular ones.
    pub fn lu(&self) -> Result<LuDecomposition> {
        LuDecomposition::new(self)
    }

    /// Computes the eigendecomposition of a symmetric matrix via cyclic Jacobi.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSymmetric`] if the matrix is noticeably
    /// asymmetric, or [`LinalgError::Numerical`] if Jacobi exhausts its
    /// sweep budget.
    pub fn symmetric_eigen(&self) -> Result<SymmetricEigen> {
        SymmetricEigen::new(self)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

/// Width of the output-column register tile in [`Matrix::mul_matrix`]:
/// 32 f64 accumulators fill four AVX-512 (or eight AVX2) vector
/// registers, giving enough independent add chains to hide FP latency.
const GEMM_J_TILE: usize = 32;

/// Shared GEMM body: `out = a × b` with `a` m×inner, `b` inner×n, all
/// row-major and `out` pre-zeroed. Every output element is a plain
/// ascending-`k` dot product accumulated from `0.0` in a register — see
/// [`Matrix::mul_matrix`] for why that addition order is load-bearing.
#[inline(always)]
fn gemm_tiled_body(out: &mut [f64], a: &[f64], b: &[f64], m: usize, n: usize, inner: usize) {
    let mut jb = 0;
    // 32-column panels of `b` (inner × 32 f64 ≈ 6 KiB for this crate's
    // thermal systems) stay L1-resident across the whole sweep of `a`'s
    // rows. The fixed-size tile views unroll the lane loop into straight
    // vector code with no per-lane bounds checks.
    while jb + GEMM_J_TILE <= n {
        for i in 0..m {
            let a_row = &a[i * inner..(i + 1) * inner];
            let mut acc = [0.0f64; GEMM_J_TILE];
            for (&a_ik, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
                // xtask: allow(panic) — the slice is exactly GEMM_J_TILE
                // wide by construction, so this try_into cannot fail.
                let b_tile: &[f64; GEMM_J_TILE] =
                    b_row[jb..jb + GEMM_J_TILE].try_into().expect("tile width");
                for jj in 0..GEMM_J_TILE {
                    acc[jj] += a_ik * b_tile[jj];
                }
            }
            out[i * n + jb..i * n + jb + GEMM_J_TILE].copy_from_slice(&acc);
        }
        jb += GEMM_J_TILE;
    }
    // Remainder columns: straight dot products.
    for j in jb..n {
        for i in 0..m {
            let a_row = &a[i * inner..(i + 1) * inner];
            let mut s = 0.0;
            for (&a_ik, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
                s += a_ik * b_row[j];
            }
            out[i * n + j] = s;
        }
    }
}

fn gemm_tiled(out: &mut [f64], a: &[f64], b: &[f64], m: usize, n: usize, inner: usize) {
    gemm_tiled_body(out, a, b, m, n, inner);
}

/// The same body compiled with AVX2 codegen. Lane-wise IEEE mul/add only
/// (rustc does not contract to FMA), so results are bit-identical to
/// [`gemm_tiled`].
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2, e.g. via
/// `is_x86_feature_detected!("avx2")` — executing the AVX2-encoded body
/// on a CPU without it is undefined behaviour (illegal instruction at
/// best). The body itself is safe Rust: all slice accesses are
/// bounds-checked, dimensions are validated by the sole caller
/// ([`Matrix::mul_matrix`]), and no pointers are formed.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn gemm_tiled_avx2(out: &mut [f64], a: &[f64], b: &[f64], m: usize, n: usize, inner: usize) {
    gemm_tiled_body(out, a, b, m, n, inner);
}

/// The same body compiled with AVX-512F codegen; bit-identical results,
/// as for [`gemm_tiled_avx2`].
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX-512F, e.g. via
/// `is_x86_feature_detected!("avx512f")`; see [`gemm_tiled_avx2`] — the
/// same contract applies, with AVX-512F in place of AVX2.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx512f")]
unsafe fn gemm_tiled_avx512(
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    m: usize,
    n: usize,
    inner: usize,
) {
    gemm_tiled_body(out, a, b, m, n, inner);
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl Mul<&Vector> for &Matrix {
    type Output = Vector;

    fn mul(self, rhs: &Vector) -> Vector {
        self.mul_vector(rhs)
    }
}

impl Mul<Vector> for &Matrix {
    type Output = Vector;

    fn mul(self, rhs: Vector) -> Vector {
        self.mul_vector(&rhs)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if the inner dimensions differ. Use [`Matrix::mul_matrix`] for
    /// a fallible version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        // xtask: allow(panic) — operator sugar cannot return Result; the
        // panic is documented above and mul_matrix is the fallible form.
        self.mul_matrix(rhs)
            .expect("matrix multiply shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector_is_identity() {
        let id = Matrix::identity(3);
        let v = Vector::from(vec![1.0, -2.0, 3.0]);
        assert_eq!(&id * &v, v);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn multiply_known_case() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul_matrix(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn multiply_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul_matrix(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.5, 3.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));
        assert!((ns.max_asymmetry() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn diagonal_roundtrip() {
        let d = Vector::from(vec![1.0, 2.0, 3.0]);
        let m = Matrix::from_diagonal(&d);
        assert_eq!(m.diagonal(), d);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn row_column_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.column(0).as_slice(), &[1.0, 3.0]);
    }
}
