use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// An owned, dense column vector of `f64` values.
///
/// `Vector` is the currency of the thermal tool-chain: temperature fields,
/// power maps and conductance-to-ambient columns are all `Vector`s. It wraps
/// a `Vec<f64>` and adds the arithmetic the solvers need.
///
/// # Example
///
/// ```
/// use hp_linalg::Vector;
///
/// let t = Vector::from(vec![45.0, 52.5, 61.0]);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.max(), 61.0);
/// let shifted = &t + &Vector::constant(3, 1.0);
/// assert_eq!(shifted[0], 46.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` copies of `value`.
    pub fn constant(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Creates a vector by evaluating `f` at every index.
    pub fn from_fn<F: FnMut(usize) -> f64>(len: usize, f: F) -> Self {
        Vector {
            data: (0..len).map(f).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product `selfᵀ · other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Maximum absolute entry (infinity norm). Returns `0.0` for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Largest entry. Returns `f64::NEG_INFINITY` for an empty vector.
    pub fn max(&self) -> f64 {
        self.data.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x))
    }

    /// Smallest entry. Returns `f64::INFINITY` for an empty vector.
    pub fn min(&self) -> f64 {
        self.data.iter().fold(f64::INFINITY, |m, &x| m.min(x))
    }

    /// Index of the largest entry, or `None` for an empty vector.
    pub fn argmax(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.len() {
            if self.data[i] > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| x * alpha).collect(),
        }
    }

    /// Entry-wise product.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "hadamard: length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

macro_rules! impl_vector_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Vector> for &Vector {
            type Output = Vector;

            fn $method(self, rhs: &Vector) -> Vector {
                assert_eq!(
                    self.len(),
                    rhs.len(),
                    concat!(stringify!($method), ": length mismatch")
                );
                Vector {
                    data: self
                        .data
                        .iter()
                        .zip(&rhs.data)
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }

        impl $trait<Vector> for Vector {
            type Output = Vector;

            fn $method(self, rhs: Vector) -> Vector {
                (&self).$method(&rhs)
            }
        }

        impl $trait<Vector> for &Vector {
            type Output = Vector;

            fn $method(self, rhs: Vector) -> Vector {
                self.$method(&rhs)
            }
        }

        impl $trait<&Vector> for Vector {
            type Output = Vector;

            fn $method(self, rhs: &Vector) -> Vector {
                (&self).$method(rhs)
            }
        }
    };
}

impl_vector_binop!(Add, add, +);
impl_vector_binop!(Sub, sub, -);

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::constant(2, 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(
            Vector::from_fn(3, |i| i as f64 * 2.0).as_slice(),
            &[0.0, 2.0, 4.0]
        );
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0, -3.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        a.axpy(2.0, &Vector::from(vec![3.0, 4.0]));
        assert_eq!(a.as_slice(), &[7.0, 9.0]);
    }

    #[test]
    fn reductions() {
        let v = Vector::from(vec![-5.0, 2.0, 3.0]);
        assert_eq!(v.max(), 3.0);
        assert_eq!(v.min(), -5.0);
        assert_eq!(v.norm_inf(), 5.0);
        assert_eq!(v.sum(), 0.0);
        assert_eq!(v.argmax(), Some(2));
        assert!((v.norm2() - (25.0f64 + 4.0 + 9.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn argmax_empty_is_none() {
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn collect_and_extend() {
        let v: Vector = (0..3).map(f64::from).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let mut v = v;
        v.extend([3.0]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        Vector::zeros(2).dot(&Vector::zeros(3));
    }
}
