//! General dense matrix exponential via scaling-and-squaring.
//!
//! The thermal pipeline normally computes `e^{Cτ}` through the
//! [`SystemEigen`](crate::eigen::SystemEigen) decomposition (the MatEx route)
//! because `C` is diagonalizable with a well-conditioned eigenbasis. This
//! module provides an *independent* Padé scaling-and-squaring implementation
//! used (a) to cross-validate the eigen route in tests and benches, and
//! (b) as a fallback for matrices that are not of the RC form.

use crate::{LinalgError, Matrix, Result};

/// Computes `e^{M}` with a degree-6 Padé approximant plus scaling and squaring.
///
/// Accuracy is ~1e-12 relative for well-scaled inputs, which is ample for
/// cross-validation of the eigendecomposition route.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::Singular`] if the Padé denominator is singular
///   (pathological inputs only).
///
/// # Example
///
/// ```
/// use hp_linalg::{expm, Matrix};
///
/// # fn main() -> Result<(), hp_linalg::LinalgError> {
/// let zero = Matrix::zeros(3, 3);
/// let e = expm(&zero)?;
/// assert!((&e - &Matrix::identity(3)).norm_inf() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn expm(m: &Matrix) -> Result<Matrix> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let n = m.rows();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }

    // Scale so the scaled norm is <= 0.5, where the degree-6 Padé
    // approximant is very accurate.
    let norm = m.norm_inf();
    let mut squarings = 0u32;
    let mut scale = 1.0;
    if norm > 0.5 {
        squarings = crate::convert::f64_to_u32_saturating((norm / 0.5).log2().ceil());
        scale = 0.5f64.powi(i32::try_from(squarings).unwrap_or(i32::MAX));
    }
    let a = m.scaled(scale);

    // Degree-7 diagonal Padé (Higham's exact integer coefficients):
    // exp(A) ~ q(A)^{-1} p(A), p(A) = W + U, q(A) = W - U with W even, U odd.
    const B: [f64; 8] = [
        17_297_280.0,
        8_648_640.0,
        1_995_840.0,
        277_200.0,
        25_200.0,
        1_512.0,
        56.0,
        1.0,
    ];
    let a2 = a.mul_matrix(&a)?;
    let a4 = a2.mul_matrix(&a2)?;
    let a6 = a4.mul_matrix(&a2)?;
    let id = Matrix::identity(n);

    let even = &(&(&id * B[0]) + &(&a2 * B[2])) + &(&(&a4 * B[4]) + &(&a6 * B[6]));
    let odd_poly = &(&(&id * B[1]) + &(&a2 * B[3])) + &(&(&a4 * B[5]) + &(&a6 * B[7]));
    let odd = a.mul_matrix(&odd_poly)?;

    let p = &even + &odd;
    let q = &even - &odd;
    let mut result = q.lu()?.solve_matrix(&p)?;

    for _ in 0..squarings {
        result = result.mul_matrix(&result)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    #[test]
    fn expm_zero_is_identity() {
        let e = expm(&Matrix::zeros(4, 4)).unwrap();
        assert!((&e - &Matrix::identity(4)).norm_inf() < 1e-14);
    }

    #[test]
    fn expm_diagonal() {
        let m = Matrix::from_diagonal(&Vector::from(vec![1.0, -2.0, 0.5]));
        let e = expm(&m).unwrap();
        assert!((e[(0, 0)] - 1.0f64.exp()).abs() < 1e-10);
        assert!((e[(1, 1)] - (-2.0f64).exp()).abs() < 1e-10);
        assert!((e[(2, 2)] - 0.5f64.exp()).abs() < 1e-10);
        assert!(e[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn expm_nilpotent() {
        // For N = [[0,1],[0,0]], exp(N) = I + N exactly.
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let e = expm(&m).unwrap();
        assert!((e[(0, 0)] - 1.0).abs() < 1e-13);
        assert!((e[(0, 1)] - 1.0).abs() < 1e-13);
        assert!(e[(1, 0)].abs() < 1e-13);
        assert!((e[(1, 1)] - 1.0).abs() < 1e-13);
    }

    #[test]
    fn expm_rotation_block() {
        // exp([[0,-t],[t,0]]) = [[cos t, -sin t],[sin t, cos t]].
        let t = 0.7;
        let m = Matrix::from_rows(&[&[0.0, -t], &[t, 0.0]]).unwrap();
        let e = expm(&m).unwrap();
        assert!((e[(0, 0)] - t.cos()).abs() < 1e-12);
        assert!((e[(1, 0)] - t.sin()).abs() < 1e-12);
    }

    #[test]
    fn expm_additivity_on_commuting() {
        // exp(2M) = exp(M)^2 for any M.
        let m = Matrix::from_rows(&[&[0.3, 0.1], &[0.2, -0.4]]).unwrap();
        let e1 = expm(&m).unwrap();
        let e2 = expm(&m.scaled(2.0)).unwrap();
        let e1sq = e1.mul_matrix(&e1).unwrap();
        assert!((&e2 - &e1sq).norm_inf() < 1e-11);
    }

    #[test]
    fn expm_agrees_with_eigen_route() {
        use crate::eigen::SystemEigen;
        let a_diag = Vector::from(vec![0.4, 1.1, 0.8]);
        let b = Matrix::from_rows(&[&[2.0, -0.5, -0.2], &[-0.5, 1.8, -0.6], &[-0.2, -0.6, 2.2]])
            .unwrap();
        let sys = SystemEigen::new(&a_diag, &b).unwrap();
        let c = Matrix::from_fn(3, 3, |i, j| -b[(i, j)] / a_diag[i]);
        let tau = 0.01;
        let via_pade = expm(&c.scaled(tau)).unwrap();
        let via_eigen = sys.exp_matrix(tau);
        assert!((&via_pade - &via_eigen).norm_inf() < 1e-10);
    }

    #[test]
    fn expm_rejects_rectangular() {
        assert!(matches!(
            expm(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn expm_large_norm_scaling() {
        // Large-norm input exercises the squaring path.
        let m = Matrix::from_diagonal(&Vector::from(vec![-30.0, -10.0]));
        let e = expm(&m).unwrap();
        assert!((e[(0, 0)] - (-30.0f64).exp()).abs() < 1e-18);
        assert!((e[(1, 1)] - (-10.0f64).exp()).abs() < 1e-9);
    }
}
