//! Documented numeric conversions for the thermal/linalg math.
//!
//! The workspace lint gate (`cargo xtask check`, rule `cast`) bans bare
//! `as` float↔int casts in `hp-linalg` and `hp-thermal` library code: a
//! silent truncation or precision loss in an index-to-time conversion
//! corrupts temperatures without any test noticing. Every conversion the
//! solvers need goes through one of these helpers instead, so its
//! rounding and range behaviour is named at the call site and the `as`
//! itself lives in exactly one audited place per shape.

/// Converts a count (loop index, dimension, sample number) to `f64`.
///
/// Exact for every value below 2⁵³ (≈ 9·10¹⁵); thermal models and epoch
/// counts live many orders of magnitude below that, and the debug
/// assertion documents the boundary rather than guarding a reachable
/// case.
#[inline]
#[must_use]
pub fn usize_to_f64(n: usize) -> f64 {
    debug_assert!(n < (1usize << 53), "usize→f64 would round: {n}");
    // xtask: allow(cast) — exact below 2^53, asserted above; this helper
    // is the audited home of the cast.
    n as f64
}

/// Converts a non-negative `f64` to `u32`, truncating toward zero and
/// saturating at the type bounds; NaN maps to 0.
///
/// Used for derived small counts (e.g. the squaring count in
/// scaling-and-squaring `expm`, which is `⌈log₂‖M‖⌉`-sized).
#[inline]
#[must_use]
pub fn f64_to_u32_saturating(x: f64) -> u32 {
    if x.is_nan() {
        return 0;
    }
    // xtask: allow(cast) — `as` from f64 to u32 is defined saturating
    // (toward zero) since Rust 1.45; this helper names that behaviour.
    x as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_to_f64_is_exact_for_small_counts() {
        for n in [0usize, 1, 3, 48, 4096, 1 << 20] {
            let f = usize_to_f64(n);
            assert_eq!(f, n as f64);
            assert_eq!(f.fract(), 0.0);
        }
    }

    #[test]
    fn f64_to_u32_saturating_behaviour() {
        assert_eq!(f64_to_u32_saturating(0.0), 0);
        assert_eq!(f64_to_u32_saturating(7.9), 7);
        assert_eq!(f64_to_u32_saturating(-3.0), 0);
        assert_eq!(f64_to_u32_saturating(f64::NAN), 0);
        assert_eq!(f64_to_u32_saturating(f64::INFINITY), u32::MAX);
        assert_eq!(f64_to_u32_saturating(1e20), u32::MAX);
    }
}
