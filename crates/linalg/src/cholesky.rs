//! Cholesky decomposition for symmetric positive definite matrices.
//!
//! The thermal conductance matrix `B` is SPD by construction, so the
//! Cholesky factorization `B = L·Lᵀ` applies: it is roughly twice as fast
//! as partial-pivoting LU, needs no pivoting, and — usefully for
//! validation — *fails exactly when the input is not positive definite*,
//! which turns "is this assembled RC network physical?" into a cheap
//! decidable check (see [`Matrix::is_positive_definite`]).

use crate::{LinalgError, Matrix, Result, Vector};

/// A Cholesky factorization `A = L·Lᵀ` of a symmetric positive definite
/// matrix (`L` lower triangular with positive diagonal).
///
/// # Example
///
/// ```
/// use hp_linalg::{cholesky::CholeskyDecomposition, Matrix, Vector};
///
/// # fn main() -> Result<(), hp_linalg::LinalgError> {
/// let b = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let chol = CholeskyDecomposition::new(&b)?;
/// let x = chol.solve(&Vector::from(vec![9.0, 7.0]))?;
/// let residual = (&b.mul_vector(&x) - &Vector::from(vec![9.0, 7.0])).norm_inf();
/// assert!(residual < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    /// Lower-triangular factor, stored densely (upper part zero).
    l: Matrix,
}

impl CholeskyDecomposition {
    /// Factorizes a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for rectangular input.
    /// * [`LinalgError::NotSymmetric`] if the asymmetry exceeds
    ///   `1e-8 · ‖A‖∞`.
    /// * [`LinalgError::Singular`] (with the offending pivot) if the
    ///   matrix is not positive definite.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let scale = a.norm_inf().max(f64::MIN_POSITIVE);
        for i in 0..n {
            for j in (i + 1)..n {
                let asym = (a[(i, j)] - a[(j, i)]).abs();
                if asym > 1e-8 * scale {
                    return Err(LinalgError::NotSymmetric {
                        at: (i, j),
                        asymmetry: asym,
                    });
                }
            }
        }

        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= scale * 1e-14 {
                return Err(LinalgError::Singular { pivot: j });
            }
            let diag = d.sqrt();
            l[(j, j)] = diag;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / diag;
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` by forward/backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // L·y = b.
        let mut x = Vector::zeros(n);
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        // Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Determinant (product of squared diagonal entries of `L`).
    pub fn determinant(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            det *= self.l[(i, i)] * self.l[(i, i)];
        }
        det
    }

    /// Log-determinant, numerically stable for large well-conditioned
    /// systems where the determinant itself would overflow.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

impl Matrix {
    /// Returns `true` if the matrix is symmetric positive definite
    /// (decided by attempting a Cholesky factorization).
    pub fn is_positive_definite(&self) -> bool {
        CholeskyDecomposition::new(self).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 6.0, 3.0], &[1.0, 3.0, 7.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let l = chol.l();
        let llt = l.mul_matrix(&l.transpose()).unwrap();
        assert!((&llt - &a).norm_inf() < 1e-12);
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = Vector::from(vec![1.0, -2.0, 4.0]);
        let x_chol = CholeskyDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = a.lu().unwrap().solve(&b).unwrap();
        assert!((&x_chol - &x_lu).norm_inf() < 1e-12);
    }

    #[test]
    fn determinant_matches_lu() {
        let a = spd3();
        let d_chol = CholeskyDecomposition::new(&a).unwrap().determinant();
        let d_lu = a.lu().unwrap().determinant();
        assert!((d_chol - d_lu).abs() < 1e-9 * d_lu.abs());
        let logd = CholeskyDecomposition::new(&a).unwrap().log_determinant();
        assert!((logd - d_lu.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        // Symmetric but with a negative eigenvalue.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
        assert!(!a.is_positive_definite());
    }

    #[test]
    fn rejects_asymmetric_and_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(LinalgError::NotSymmetric { .. })
        ));
        assert!(matches!(
            CholeskyDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn identity_factors_to_identity() {
        let chol = CholeskyDecomposition::new(&Matrix::identity(4)).unwrap();
        assert!((&(chol.l().clone()) - &Matrix::identity(4)).norm_inf() < 1e-15);
        assert_eq!(chol.determinant(), 1.0);
    }

    #[test]
    fn positive_definite_check_on_conductance_shape() {
        // A Laplacian + leak matrix (the thermal-model shape) is SPD...
        let mut b = Matrix::zeros(4, 4);
        for i in 0..3 {
            b[(i, i + 1)] = -1.0;
            b[(i + 1, i)] = -1.0;
            b[(i, i)] += 1.0;
            b[(i + 1, i + 1)] += 1.0;
        }
        for i in 0..4 {
            b[(i, i)] += 0.1;
        }
        assert!(b.is_positive_definite());
        // ...but the pure Laplacian (singular) is not.
        for i in 0..4 {
            b[(i, i)] -= 0.1;
        }
        assert!(!b.is_positive_definite());
    }
}
