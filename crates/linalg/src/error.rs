use std::error::Error;
use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Dimensions of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A factorization encountered a (numerically) singular matrix.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// An algorithm that requires a symmetric matrix received an asymmetric one.
    NotSymmetric {
        /// Position of the first asymmetric entry.
        at: (usize, usize),
        /// Magnitude of the asymmetry `|m[i][j] - m[j][i]|`.
        asymmetry: f64,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Input data was empty or otherwise malformed.
    InvalidInput(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotSymmetric { at, asymmetry } => write!(
                f,
                "matrix is not symmetric at ({}, {}), asymmetry {asymmetry:e}",
                at.0, at.1
            ),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::InvalidInput(what) => write!(f, "invalid input: {what}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            LinalgError::NotSquare { rows: 2, cols: 3 },
            LinalgError::DimensionMismatch {
                op: "mul",
                left: (2, 2),
                right: (3, 3),
            },
            LinalgError::Singular { pivot: 1 },
            LinalgError::NotSymmetric {
                at: (0, 1),
                asymmetry: 0.5,
            },
            LinalgError::NoConvergence {
                algorithm: "jacobi",
                iterations: 100,
            },
            LinalgError::InvalidInput("empty"),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
