use std::error::Error;
use std::fmt;

use crate::Vector;

/// Numerical-integrity failures: the input was structurally valid but the
/// arithmetic could not produce a trustworthy answer.
///
/// Unlike the structural variants of [`LinalgError`] (shape mismatches,
/// exact singularity), these carry enough diagnostic state — sweep counts,
/// residual norms, condition estimates, partial results — for a caller to
/// decide between retrying, degrading to a slower-but-stable path, or
/// surfacing the failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericalError {
    /// An iterative algorithm exhausted its budget without meeting its
    /// tolerance. Carries the partial state at the point of abort so a
    /// caller can assess how close the iteration got.
    NonConvergence {
        /// Sweeps (or iterations) performed before giving up.
        sweeps: u32,
        /// Residual measure at abort (e.g. largest off-diagonal entry for
        /// a Jacobi sweep).
        off_norm: f64,
        /// Partial result at abort (e.g. the diagonal holding the
        /// eigenvalue estimates so far). May be empty when no meaningful
        /// partial state exists.
        partial: Vector,
    },
    /// A condition-number estimate exceeded the caller's threshold: the
    /// factorization succeeded, but its solutions cannot be trusted to the
    /// accuracy the caller requires.
    IllConditioned {
        /// The 1-norm condition estimate `‖A‖₁·‖A⁻¹‖₁`.
        estimate: f64,
        /// The threshold that was exceeded.
        threshold: f64,
    },
    /// A NaN or infinity was observed where only finite values are valid.
    NonFinite {
        /// What held the non-finite value (input name or computed stage).
        what: &'static str,
    },
    /// A matrix that must stay symmetric drifted measurably asymmetric
    /// during computation.
    LossOfSymmetry {
        /// Position of the worst asymmetric pair.
        at: (usize, usize),
        /// Magnitude of the asymmetry `|m[i][j] - m[j][i]|`.
        asymmetry: f64,
    },
}

impl fmt::Display for NumericalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericalError::NonConvergence {
                sweeps, off_norm, ..
            } => write!(
                f,
                "no convergence after {sweeps} sweeps (residual {off_norm:e})"
            ),
            NumericalError::IllConditioned {
                estimate,
                threshold,
            } => write!(
                f,
                "ill-conditioned: estimate {estimate:e} exceeds threshold {threshold:e}"
            ),
            NumericalError::NonFinite { what } => {
                write!(f, "non-finite value in {what}")
            }
            NumericalError::LossOfSymmetry { at, asymmetry } => write!(
                f,
                "symmetry lost at ({}, {}), asymmetry {asymmetry:e}",
                at.0, at.1
            ),
        }
    }
}

impl Error for NumericalError {}

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Dimensions of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A factorization encountered a (numerically) singular matrix.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// An algorithm that requires a symmetric matrix received an asymmetric one.
    NotSymmetric {
        /// Position of the first asymmetric entry.
        at: (usize, usize),
        /// Magnitude of the asymmetry `|m[i][j] - m[j][i]|`.
        asymmetry: f64,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Input data was empty or otherwise malformed.
    InvalidInput(&'static str),
    /// A numerical-integrity failure (see [`NumericalError`]).
    Numerical(NumericalError),
}

impl From<NumericalError> for LinalgError {
    fn from(e: NumericalError) -> Self {
        LinalgError::Numerical(e)
    }
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotSymmetric { at, asymmetry } => write!(
                f,
                "matrix is not symmetric at ({}, {}), asymmetry {asymmetry:e}",
                at.0, at.1
            ),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::InvalidInput(what) => write!(f, "invalid input: {what}"),
            LinalgError::Numerical(e) => write!(f, "{e}"),
        }
    }
}

impl Error for LinalgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LinalgError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            LinalgError::NotSquare { rows: 2, cols: 3 },
            LinalgError::DimensionMismatch {
                op: "mul",
                left: (2, 2),
                right: (3, 3),
            },
            LinalgError::Singular { pivot: 1 },
            LinalgError::NotSymmetric {
                at: (0, 1),
                asymmetry: 0.5,
            },
            LinalgError::NoConvergence {
                algorithm: "jacobi",
                iterations: 100,
            },
            LinalgError::InvalidInput("empty"),
            LinalgError::Numerical(NumericalError::NonConvergence {
                sweeps: 64,
                off_norm: 1e-3,
                partial: Vector::zeros(2),
            }),
            LinalgError::Numerical(NumericalError::IllConditioned {
                estimate: 1e15,
                threshold: 1e12,
            }),
            LinalgError::Numerical(NumericalError::NonFinite { what: "power" }),
            LinalgError::Numerical(NumericalError::LossOfSymmetry {
                at: (0, 1),
                asymmetry: 1e-3,
            }),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
        assert_send_sync::<NumericalError>();
    }

    #[test]
    fn numerical_error_wraps_with_source() {
        let e = LinalgError::from(NumericalError::NonFinite { what: "dt" });
        assert!(matches!(e, LinalgError::Numerical(_)));
        assert!(Error::source(&e).is_some());
    }
}
