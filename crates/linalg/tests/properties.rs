//! Property-based tests for the dense linear-algebra kernels.

use hp_linalg::eigen::SystemEigen;
use hp_linalg::{expm, Matrix, Vector};
use proptest::prelude::*;

/// Strategy: a well-conditioned symmetric positive definite matrix of size n,
/// built as a diagonally dominant Laplacian-like conductance matrix — the
/// exact structure the thermal model produces.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    // Off-diagonal couplings in [0, 1], ambient leak in [0.1, 2].
    let offs = proptest::collection::vec(0.0..1.0f64, n * n);
    let leaks = proptest::collection::vec(0.1..2.0f64, n);
    (offs, leaks).prop_map(move |(offs, leaks)| {
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let g = offs[i * n + j];
                b[(i, j)] = -g;
                b[(j, i)] = -g;
                b[(i, i)] += g;
                b[(j, j)] += g;
            }
            b[(i, i)] += leaks[i];
        }
        b
    })
}

fn capacitances(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(0.05..5.0f64, n).prop_map(Vector::from)
}

fn rhs(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-10.0..10.0f64, n).prop_map(Vector::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_residual_small(b in spd_matrix(6), x in rhs(6)) {
        let rhs = b.mul_vector(&x);
        let solved = b.lu().unwrap().solve(&rhs).unwrap();
        let resid = (&b.mul_vector(&solved) - &rhs).norm_inf();
        prop_assert!(resid < 1e-8 * (1.0 + rhs.norm_inf()));
    }

    #[test]
    fn lu_inverse_roundtrip(b in spd_matrix(5)) {
        let inv = b.lu().unwrap().inverse().unwrap();
        let prod = b.mul_matrix(&inv).unwrap();
        let err = (&prod - &Matrix::identity(5)).norm_inf();
        prop_assert!(err < 1e-8);
    }

    #[test]
    fn lu_determinant_positive_for_spd(b in spd_matrix(5)) {
        prop_assert!(b.lu().unwrap().determinant() > 0.0);
    }

    #[test]
    fn jacobi_reconstructs(b in spd_matrix(6)) {
        let eig = b.symmetric_eigen().unwrap();
        let err = (&eig.reconstruct() - &b).norm_inf();
        prop_assert!(err < 1e-9 * (1.0 + b.norm_inf()));
    }

    #[test]
    fn jacobi_eigenvalues_positive_for_spd(b in spd_matrix(6)) {
        let eig = b.symmetric_eigen().unwrap();
        prop_assert!(eig.eigenvalues().iter().all(|&l| l > 0.0));
    }

    #[test]
    fn jacobi_vectors_orthonormal(b in spd_matrix(6)) {
        let eig = b.symmetric_eigen().unwrap();
        let q = eig.eigenvectors();
        let qtq = q.transpose().mul_matrix(q).unwrap();
        prop_assert!((&qtq - &Matrix::identity(6)).norm_inf() < 1e-9);
    }

    #[test]
    fn system_eigen_all_negative(a in capacitances(6), b in spd_matrix(6)) {
        let sys = SystemEigen::new(&a, &b).unwrap();
        prop_assert!(sys.eigenvalues().iter().all(|&l| l < 0.0));
    }

    #[test]
    fn system_exp_semigroup(a in capacitances(4), b in spd_matrix(4), x in rhs(4)) {
        // e^{C(s+t)} x == e^{Cs} e^{Ct} x
        let sys = SystemEigen::new(&a, &b).unwrap();
        let (s, t) = (0.07, 0.13);
        let once = sys.exp_apply(s + t, &x);
        let twice = sys.exp_apply(s, &sys.exp_apply(t, &x));
        prop_assert!((&once - &twice).norm_inf() < 1e-9 * (1.0 + x.norm_inf()));
    }

    #[test]
    fn system_exp_matches_pade(a in capacitances(4), b in spd_matrix(4)) {
        let sys = SystemEigen::new(&a, &b).unwrap();
        let n = 4;
        let c = Matrix::from_fn(n, n, |i, j| -b[(i, j)] / a[i]);
        let tau = 0.05;
        let via_pade = expm(&c.scaled(tau)).unwrap();
        let via_eigen = sys.exp_matrix(tau);
        prop_assert!((&via_pade - &via_eigen).norm_inf() < 1e-8);
    }

    #[test]
    fn exp_apply_contracts(a in capacitances(5), b in spd_matrix(5), x in rhs(5)) {
        // The RC system is dissipative: the A-weighted norm never grows.
        let sys = SystemEigen::new(&a, &b).unwrap();
        let y = sys.exp_apply(0.5, &x);
        let wnorm = |v: &Vector| -> f64 {
            v.iter().enumerate().map(|(i, &vi)| a[i] * vi * vi).sum::<f64>()
        };
        prop_assert!(wnorm(&y) <= wnorm(&x) * (1.0 + 1e-9));
    }

    #[test]
    fn matmul_associative(x in rhs(4), b in spd_matrix(4), c in spd_matrix(4)) {
        let left = b.mul_matrix(&c).unwrap().mul_vector(&x);
        let right = b.mul_vector(&c.mul_vector(&x));
        prop_assert!((&left - &right).norm_inf() < 1e-8 * (1.0 + x.norm_inf()));
    }

    #[test]
    fn transpose_preserves_norm(b in spd_matrix(5)) {
        prop_assert_eq!(b.transpose().norm_inf(), b.norm_inf());
    }
}
