//! Differential test for the SIMD GEMM kernels, written to run under
//! AddressSanitizer in CI: the dispatched (AVX-512/AVX2) product must
//! agree with the scalar reference on every entry, and the test prints
//! which backend actually executed so the CI log can assert the SIMD
//! path was exercised rather than silently falling back to scalar.

use hp_linalg::Matrix;

/// Scalar reference product, independent of the library's kernels.
fn naive_mul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, inner, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..inner {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    // Small deterministic LCG; values in [-1, 1) exercise sign handling
    // without accumulating past f64 precision in these sizes.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

#[test]
fn dispatched_gemm_matches_scalar_reference() {
    // CI greps this exact line to assert the SIMD path executed.
    println!("gemm dispatch backend: {}", Matrix::gemm_backend());

    // Sizes straddle the kernels' 8-lane tiles: remainders in every
    // dimension, the empty-ish edge, and a tile-aligned case.
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (3, 5, 7),
        (8, 8, 8),
        (16, 16, 16),
        (17, 13, 9),
        (32, 7, 25),
        (33, 33, 33),
    ] {
        let a = filled(m, k, 42 + m as u64);
        let b = filled(k, n, 1000 + n as u64);
        let fast = a.mul_matrix(&b).expect("shapes agree");
        let slow = naive_mul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let d = (fast[(i, j)] - slow[(i, j)]).abs();
                assert!(
                    d < 1e-12,
                    "({m}x{k})·({k}x{n}) entry ({i},{j}): dispatched {} vs reference {} \
                     under backend {}",
                    fast[(i, j)],
                    slow[(i, j)],
                    Matrix::gemm_backend()
                );
            }
        }
    }
}

/// On x86-64 hosts with AVX the dispatch must not silently degrade to
/// scalar — that would turn the sanitizer job into a no-op. (Miri and
/// non-AVX hosts legitimately report "scalar".)
#[test]
#[cfg(all(target_arch = "x86_64", not(miri)))]
fn dispatch_uses_simd_when_available() {
    let backend = Matrix::gemm_backend();
    if std::arch::is_x86_feature_detected!("avx2") {
        assert!(
            backend == "avx2" || backend == "avx512f",
            "AVX detected but backend is {backend}"
        );
    } else {
        assert_eq!(backend, "scalar");
    }
}
