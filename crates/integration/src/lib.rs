//! Anchor crate for the workspace-level integration tests in `tests/`.
//!
//! The tests themselves exercise the public APIs of every other crate in
//! the workspace; this library is intentionally empty.
