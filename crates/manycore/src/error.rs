use std::error::Error;
use std::fmt;

use hp_floorplan::FloorplanError;

/// Errors produced by the many-core architecture model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManycoreError {
    /// A configuration parameter was non-physical.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Its value.
        value: f64,
    },
    /// An underlying floorplan query failed.
    Floorplan(FloorplanError),
}

impl fmt::Display for ManycoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManycoreError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "architecture parameter {name} has non-physical value {value}"
                )
            }
            ManycoreError::Floorplan(e) => write!(f, "floorplan failure: {e}"),
        }
    }
}

impl Error for ManycoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ManycoreError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FloorplanError> for ManycoreError {
    fn from(e: FloorplanError) -> Self {
        ManycoreError::Floorplan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ManycoreError::Floorplan(FloorplanError::EmptyGrid);
        assert!(e.to_string().contains("floorplan"));
        assert!(e.source().is_some());
    }
}
