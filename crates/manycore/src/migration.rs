use serde::{Deserialize, Serialize};

use crate::{ManycoreError, Result};

/// Cost model for a thread migration on an S-NUCA many-core.
///
/// Because the LLC is logically shared, a migration only needs to
/// write back the private L1/L2 state and refill it through the LLC
/// (paper §I). We model this as
///
/// * a fixed **flush stall** while dirty private lines drain to the LLC
///   and the context moves, and
/// * a **warmup window** after restart during which the flushed private
///   lines refill through the LLC. The *total* extra misses per
///   migration are bounded by the private cache's line count
///   (`refill_lines`), so memory-streaming threads — whose L1 content is
///   transient anyway — pay barely more than their steady miss traffic,
///   exactly the "not particularly severe" penalty the paper's premise
///   rests on (§I).
///
/// Defaults are calibrated so a 0.5 ms rotation epoch costs a
/// compute-bound thread several percent (Fig. 2(c) reports an 8.1 %
/// rotation penalty), far below the DVFS penalty a TSP budget would
/// impose.
///
/// # Example
///
/// ```
/// use hp_manycore::MigrationModel;
///
/// let m = MigrationModel::default();
/// // Penalty fraction for a 0.5 ms epoch: stall + part of the warmup.
/// assert!(m.flush_seconds() < 0.5e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    /// Stall while flushing private caches and moving the context, µs.
    pub flush_us: f64,
    /// Cold-cache window after restart, µs.
    pub warmup_us: f64,
    /// Private cache lines that must refill after a migration (I + D).
    pub refill_lines: u64,
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel {
            // 16+16 KB L1 at 64 B/line = 512 lines; writing back and
            // refilling through the LLC at a few ns each ≈ a few µs.
            flush_us: 8.0,
            warmup_us: 60.0,
            refill_lines: 512,
        }
    }
}

impl MigrationModel {
    /// Flush stall in seconds.
    pub fn flush_seconds(&self) -> f64 {
        self.flush_us * 1e-6
    }

    /// Warmup window in seconds.
    pub fn warmup_seconds(&self) -> f64 {
        self.warmup_us * 1e-6
    }

    /// The extra L1 misses per kilo-instruction during the warmup window
    /// for a thread retiring `nominal_ips` instructions per second:
    /// `refill_lines` spread over the instructions executed in the window.
    ///
    /// Returns `0.0` for a non-positive `nominal_ips` (idle threads).
    pub fn warmup_extra_mpki(&self, nominal_ips: f64) -> f64 {
        let window_instructions = nominal_ips * self.warmup_seconds();
        if window_instructions <= 0.0 {
            return 0.0;
        }
        self.refill_lines as f64 * 1000.0 / window_instructions
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ManycoreError::InvalidParameter`] for negative or
    /// non-finite values, or a warmup factor below 1.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [("flush_us", self.flush_us), ("warmup_us", self.warmup_us)] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(ManycoreError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_valid_and_sub_epoch() {
        let m = MigrationModel::default();
        assert!(m.validate().is_ok());
        // The entire migration disruption must fit well within a 0.5 ms
        // rotation epoch, otherwise rotation could never pay off.
        assert!(m.flush_seconds() + m.warmup_seconds() < 0.25e-3);
    }

    #[test]
    fn rejects_negative_flush() {
        let m = MigrationModel {
            flush_us: -1.0,
            ..MigrationModel::default()
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn warmup_extra_mpki_capacity_bounded() {
        let m = MigrationModel::default();
        // A 5.8 GIPS compute-bound thread retires ~348k instructions in
        // the 60 us window: 512 lines over 348 kilo-instructions.
        let extra = m.warmup_extra_mpki(5.8e9);
        assert!((extra - 512.0 * 1000.0 / (5.8e9 * 60e-6)).abs() < 1e-9);
        assert!(extra > 1.0 && extra < 2.0, "extra {extra}");
        // Total extra misses are ips-independent: slower threads see a
        // proportionally higher rate over fewer instructions.
        let slow = m.warmup_extra_mpki(0.6e9);
        assert!((slow / extra - 5.8 / 0.6).abs() < 1e-6);
    }

    #[test]
    fn warmup_extra_mpki_zero_for_idle() {
        assert_eq!(MigrationModel::default().warmup_extra_mpki(0.0), 0.0);
    }
}
