//! Architecture and interval performance model of the simulated S-NUCA
//! many-core (paper Table I).
//!
//! This crate is the performance half of the HotSniper substitute: it turns
//! *where a thread runs* and *at what frequency* into instructions per
//! second and an activity factor for the power model. The S-NUCA-specific
//! ingredient is the AMD-dependent LLC latency: cache lines are statically
//! interleaved across all banks, so the average L1-miss round trip of a
//! core is proportional to its Average Manhattan Distance (paper \[19\]) —
//! which is exactly the performance heterogeneity HotPotato's rings encode.
//!
//! * [`ArchConfig`] — Table-I machine parameters.
//! * [`Machine`] — floorplan + parameters; computes per-core LLC latency.
//! * [`WorkPoint`] — an interval workload description (base CPI, miss
//!   rates, activity); produced by the workload models.
//! * [`CpiStack`] — the resolved cycles-per-instruction breakdown on a
//!   specific core and frequency.
//! * [`MigrationModel`] — flush latency and cold-cache warmup after a
//!   thread migration.
//!
//! # Example
//!
//! ```
//! use hp_floorplan::CoreId;
//! use hp_manycore::{ArchConfig, Machine, WorkPoint};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = Machine::new(ArchConfig::default())?;
//! let w = WorkPoint::compute_bound();
//! // The same thread runs faster on a centre core than on a corner core.
//! let centre = machine.cpi_stack(&w, CoreId(27), 4.0)?;
//! let corner = machine.cpi_stack(&w, CoreId(0), 4.0)?;
//! assert!(centre.ips() > corner.ips());
//! # Ok(())
//! # }
//! ```

mod config;
mod error;
mod machine;
mod migration;
mod perf;

pub use config::ArchConfig;
pub use error::ManycoreError;
pub use machine::Machine;
pub use migration::MigrationModel;
pub use perf::{CpiStack, WorkPoint};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ManycoreError>;
