use hp_floorplan::{CoreId, GridFloorplan, RingSet};
use hp_power::DvfsLevel;

use crate::{ArchConfig, CpiStack, Result, WorkPoint};

/// The assembled machine: floorplan geometry plus architecture parameters.
///
/// `Machine` answers the two questions the interval simulator asks every
/// epoch: *how fast does this work point run on this core at this
/// frequency* ([`cpi_stack`](Machine::cpi_stack)) and *how much power does
/// that draw* (via the embedded [`hp_power::PowerModel`]).
///
/// # Example
///
/// ```
/// use hp_floorplan::CoreId;
/// use hp_manycore::{ArchConfig, Machine, WorkPoint};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let machine = Machine::new(ArchConfig::default())?;
/// // Memory-bound work barely benefits from frequency...
/// let w = WorkPoint::memory_bound();
/// let slow = machine.cpi_stack(&w, CoreId(0), 1.0)?.ips();
/// let fast = machine.cpi_stack(&w, CoreId(0), 4.0)?.ips();
/// assert!(fast / slow < 2.0);
/// // ...while compute-bound work scales almost linearly.
/// let c = WorkPoint::compute_bound();
/// let slow = machine.cpi_stack(&c, CoreId(0), 1.0)?.ips();
/// let fast = machine.cpi_stack(&c, CoreId(0), 4.0)?.ips();
/// assert!(fast / slow > 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: ArchConfig,
    floorplan: GridFloorplan,
    rings: RingSet,
    /// Average LLC round-trip latency per core, ns.
    llc_latency_ns: Vec<f64>,
}

impl Machine {
    /// Builds the machine from its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ManycoreError::InvalidParameter`] for invalid
    /// configuration.
    pub fn new(config: ArchConfig) -> Result<Self> {
        config.validate()?;
        let floorplan = GridFloorplan::new(config.grid_width, config.grid_height)?;
        let rings = floorplan.amd_rings();
        // S-NUCA statically interleaves lines across all banks, so an L1
        // miss travels to a uniformly random bank: average one-way distance
        // is AMD hops (self-bank at distance 0 included via AMD-to-others
        // times (n-1)/n; the correction is negligible and we use AMD
        // directly, matching [19]).
        let llc_latency_ns = floorplan
            .amd_values()
            .iter()
            .map(|amd| 2.0 * amd * config.noc_hop_ns + config.llc_bank_ns)
            .collect();
        Ok(Machine {
            config,
            floorplan,
            rings,
            llc_latency_ns,
        })
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// The floorplan.
    pub fn floorplan(&self) -> &GridFloorplan {
        &self.floorplan
    }

    /// The concentric AMD rings.
    pub fn rings(&self) -> &RingSet {
        &self.rings
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.floorplan.core_count()
    }

    /// Average LLC round-trip latency seen from `core`, in ns
    /// (`2 × AMD × hop + bank`).
    ///
    /// # Errors
    ///
    /// Returns a floorplan error for out-of-range cores.
    pub fn llc_latency_ns(&self, core: CoreId) -> Result<f64> {
        self.floorplan.check(core)?;
        Ok(self.llc_latency_ns[core.index()])
    }

    /// Resolves a [`WorkPoint`] into a [`CpiStack`] on `core` at
    /// `freq_ghz`.
    ///
    /// Memory latencies are fixed in nanoseconds, so their CPI contribution
    /// *grows* with frequency — the mechanism that makes DVFS cheap for
    /// memory-bound threads and expensive for compute-bound ones.
    ///
    /// # Errors
    ///
    /// Returns a floorplan error for out-of-range cores.
    pub fn cpi_stack(&self, work: &WorkPoint, core: CoreId, freq_ghz: f64) -> Result<CpiStack> {
        self.cpi_stack_loaded(work, core, freq_ghz, 0.0)
    }

    /// Like [`cpi_stack`](Machine::cpi_stack) but with NoC contention: at
    /// network utilization `noc_load ∈ [0, 1)` every hop is stretched by
    /// the M/M/1-style factor `1 / (1 − noc_load)` (capped at 4× — XY
    /// meshes saturate rather than diverge).
    ///
    /// The paper's calibration (and the default engine) runs contention-
    /// free (`noc_load = 0`); the loaded variant exists for sensitivity
    /// studies on memory-heavy workloads.
    ///
    /// # Errors
    ///
    /// Returns a floorplan error for out-of-range cores or
    /// [`crate::ManycoreError::InvalidParameter`] for a load outside
    /// `[0, 1)`.
    pub fn cpi_stack_loaded(
        &self,
        work: &WorkPoint,
        core: CoreId,
        freq_ghz: f64,
        noc_load: f64,
    ) -> Result<CpiStack> {
        if !(noc_load.is_finite() && (0.0..1.0).contains(&noc_load)) {
            return Err(crate::ManycoreError::InvalidParameter {
                name: "noc_load",
                value: noc_load,
            });
        }
        let contention = (1.0 / (1.0 - noc_load)).min(4.0);
        let llc_ns = self.config.llc_bank_ns
            + (self.llc_latency_ns(core)? - self.config.llc_bank_ns) * contention;
        if work.is_idle() {
            return Ok(CpiStack {
                base: 0.0,
                llc: 0.0,
                memory: 0.0,
                freq_ghz,
                activity: 0.0,
            });
        }
        let llc_cycles = llc_ns * freq_ghz; // ns × cycles/ns
        let mem_cycles = self.config.memory_ns * freq_ghz;
        let llc = work.l1_mpki / 1000.0 * llc_cycles;
        let memory = work.llc_mpki / 1000.0 * mem_cycles;
        let total = work.cpi_base + llc + memory;
        let exec_frac = work.cpi_base / total;
        let activity = work.activity_exec * exec_frac + work.activity_stall * (1.0 - exec_frac);
        Ok(CpiStack {
            base: work.cpi_base,
            llc,
            memory,
            freq_ghz,
            activity,
        })
    }

    /// Convenience: the [`CpiStack`] at a DVFS level of the machine's
    /// ladder.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range core; panics are avoided by
    /// clamping handled in the ladder.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for the machine's ladder.
    pub fn cpi_stack_at_level(
        &self,
        work: &WorkPoint,
        core: CoreId,
        level: DvfsLevel,
    ) -> Result<CpiStack> {
        let f = self.config.dvfs.frequency_ghz(level);
        self.cpi_stack(work, core, f)
    }

    /// Core power (W) for a resolved [`CpiStack`] at DVFS `level` and
    /// junction temperature `temp_c`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for the machine's ladder.
    pub fn core_power(&self, stack: &CpiStack, level: DvfsLevel, temp_c: f64) -> f64 {
        let f = self.config.dvfs.frequency_ghz(level);
        let v = self.config.dvfs.voltage(level);
        self.config.power.core_power(f, v, stack.activity, temp_c)
    }

    /// Idle core power (W) at junction temperature `temp_c`, assuming the
    /// idle core stays at nominal voltage (clock-gated, not power-gated).
    pub fn idle_power(&self, temp_c: f64) -> f64 {
        self.config
            .power
            .leakage_power(self.config.power.v_nom, temp_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_8x8() -> Machine {
        Machine::new(ArchConfig::default()).unwrap()
    }

    #[test]
    fn llc_latency_lower_in_center() {
        let m = machine_8x8();
        // Core 27 = (3,3) is one of the four centre cores of an 8x8 grid.
        let center = m.llc_latency_ns(CoreId(27)).unwrap();
        let corner = m.llc_latency_ns(CoreId(0)).unwrap();
        assert!(center < corner);
        // Sanity: with AMD around 4–8 hops and 1.5 ns/hop, round trips are
        // in the 15–30 ns range.
        assert!(center > 10.0 && corner < 40.0, "{center} vs {corner}");
    }

    #[test]
    fn cpi_grows_with_amd() {
        let m = machine_8x8();
        let w = WorkPoint::memory_bound();
        let center = m.cpi_stack(&w, CoreId(27), 4.0).unwrap().total();
        let corner = m.cpi_stack(&w, CoreId(0), 4.0).unwrap().total();
        assert!(corner > center);
    }

    #[test]
    fn compute_bound_insensitive_to_placement() {
        let m = machine_8x8();
        let w = WorkPoint::compute_bound();
        let center = m.cpi_stack(&w, CoreId(27), 4.0).unwrap().ips();
        let corner = m.cpi_stack(&w, CoreId(0), 4.0).unwrap().ips();
        let ratio = center / corner;
        assert!(ratio > 1.0 && ratio < 1.15, "ratio {ratio:.3}");
    }

    #[test]
    fn memory_bound_sensitive_to_placement() {
        let m = machine_8x8();
        let w = WorkPoint::memory_bound();
        let center = m.cpi_stack(&w, CoreId(27), 4.0).unwrap().ips();
        let corner = m.cpi_stack(&w, CoreId(0), 4.0).unwrap().ips();
        assert!(center / corner > 1.05);
    }

    #[test]
    fn activity_lower_when_memory_bound() {
        let m = machine_8x8();
        let hot = m
            .cpi_stack(&WorkPoint::compute_bound(), CoreId(27), 4.0)
            .unwrap();
        let cool = m
            .cpi_stack(&WorkPoint::memory_bound(), CoreId(27), 4.0)
            .unwrap();
        assert!(hot.activity > 0.85);
        assert!(cool.activity < 0.5);
    }

    #[test]
    fn idle_work_runs_nothing() {
        let m = machine_8x8();
        let s = m.cpi_stack(&WorkPoint::idle(), CoreId(0), 4.0).unwrap();
        assert_eq!(s.ips(), 0.0);
        assert_eq!(s.activity, 0.0);
    }

    #[test]
    fn power_at_peak_matches_calibration() {
        let m = machine_8x8();
        let stack = m
            .cpi_stack(&WorkPoint::compute_bound(), CoreId(27), 4.0)
            .unwrap();
        let p = m.core_power(&stack, m.config().dvfs.max_level(), 60.0);
        assert!(p > 5.5 && p < 8.0, "peak power {p:.2}");
    }

    #[test]
    fn power_drops_with_dvfs() {
        let m = machine_8x8();
        let ladder = &m.config().dvfs;
        let lo_level = ladder.level_for_frequency(2.0).unwrap();
        let stack_hi = m
            .cpi_stack(&WorkPoint::compute_bound(), CoreId(27), 4.0)
            .unwrap();
        let stack_lo = m
            .cpi_stack(&WorkPoint::compute_bound(), CoreId(27), 2.0)
            .unwrap();
        let p_hi = m.core_power(&stack_hi, ladder.max_level(), 60.0);
        let p_lo = m.core_power(&stack_lo, lo_level, 60.0);
        assert!(p_lo < 0.5 * p_hi);
    }

    #[test]
    fn out_of_range_core_rejected() {
        let m = machine_8x8();
        assert!(m.llc_latency_ns(CoreId(64)).is_err());
        assert!(m
            .cpi_stack(&WorkPoint::compute_bound(), CoreId(64), 4.0)
            .is_err());
    }

    #[test]
    fn contention_stretches_llc_only() {
        let m = machine_8x8();
        let w = WorkPoint::memory_bound();
        let free = m.cpi_stack_loaded(&w, CoreId(27), 4.0, 0.0).unwrap();
        let busy = m.cpi_stack_loaded(&w, CoreId(27), 4.0, 0.5).unwrap();
        assert_eq!(
            free.total(),
            m.cpi_stack(&w, CoreId(27), 4.0).unwrap().total()
        );
        assert!(busy.llc > free.llc, "network hops stretch under load");
        assert_eq!(busy.memory, free.memory, "off-chip latency unaffected");
        assert_eq!(busy.base, free.base);
    }

    #[test]
    fn contention_factor_saturates() {
        let m = machine_8x8();
        let w = WorkPoint::memory_bound();
        let c99 = m.cpi_stack_loaded(&w, CoreId(27), 4.0, 0.99).unwrap();
        let c999 = m.cpi_stack_loaded(&w, CoreId(27), 4.0, 0.999).unwrap();
        assert!((c99.llc - c999.llc).abs() < 1e-9, "capped at 4x");
    }

    #[test]
    fn contention_rejects_bad_load() {
        let m = machine_8x8();
        let w = WorkPoint::memory_bound();
        assert!(m.cpi_stack_loaded(&w, CoreId(0), 4.0, 1.0).is_err());
        assert!(m.cpi_stack_loaded(&w, CoreId(0), 4.0, -0.1).is_err());
        assert!(m.cpi_stack_loaded(&w, CoreId(0), 4.0, f64::NAN).is_err());
    }

    #[test]
    fn rings_available() {
        let m = machine_8x8();
        assert_eq!(m.rings().total_cores(), 64);
    }
}
