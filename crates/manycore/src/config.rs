use hp_power::{DvfsLadder, PowerModel};
use serde::{Deserialize, Serialize};

use crate::{ManycoreError, MigrationModel, Result};

/// Machine parameters of the simulated S-NUCA processor (paper Table I).
///
/// | Parameter        | Default                              |
/// |------------------|--------------------------------------|
/// | Cores            | 64 (8×8 grid)                        |
/// | Core model       | x86-like OoO, 1.0–4.0 GHz DVFS       |
/// | L1 I/D           | 16/16 KB, 8-way, 64 B blocks         |
/// | LLC              | 128 KB per core, 16-way, 64 B blocks |
/// | NoC latency      | 1.5 ns per hop                       |
/// | NoC link width   | 256 bit                              |
/// | Core area        | 0.81 mm²                             |
///
/// # Example
///
/// ```
/// use hp_manycore::ArchConfig;
///
/// let cfg = ArchConfig { grid_width: 4, grid_height: 4, ..ArchConfig::default() };
/// assert_eq!(cfg.core_count(), 16);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Grid width in cores.
    pub grid_width: usize,
    /// Grid height in cores.
    pub grid_height: usize,
    /// DVFS operating points.
    pub dvfs: DvfsLadder,
    /// Per-core power model.
    pub power: PowerModel,
    /// NoC latency per hop, ns (Table I: 1.5 ns).
    pub noc_hop_ns: f64,
    /// LLC bank access latency (tag + data array), ns.
    pub llc_bank_ns: f64,
    /// Off-chip memory access latency, ns.
    pub memory_ns: f64,
    /// Private L1 data cache size, KiB (Table I: 16).
    pub l1_kb: usize,
    /// LLC slice per core, KiB (Table I: 128).
    pub llc_kb_per_core: usize,
    /// Cache block size, bytes (Table I: 64).
    pub block_bytes: usize,
    /// Core area, mm² (Table I: 0.81).
    pub core_area_mm2: f64,
    /// Migration cost model.
    pub migration: MigrationModel,
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig {
            grid_width: 8,
            grid_height: 8,
            dvfs: DvfsLadder::default(),
            power: PowerModel::default(),
            noc_hop_ns: 1.5,
            llc_bank_ns: 4.0,
            memory_ns: 80.0,
            l1_kb: 16,
            llc_kb_per_core: 128,
            block_bytes: 64,
            core_area_mm2: 0.81,
            migration: MigrationModel::default(),
        }
    }
}

impl ArchConfig {
    /// Total number of cores.
    pub fn core_count(&self) -> usize {
        self.grid_width * self.grid_height
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ManycoreError::InvalidParameter`] naming the first
    /// offender; grid dimensions of zero are reported as `grid_width` /
    /// `grid_height`.
    pub fn validate(&self) -> Result<()> {
        if self.grid_width == 0 {
            return Err(ManycoreError::InvalidParameter {
                name: "grid_width",
                value: 0.0,
            });
        }
        if self.grid_height == 0 {
            return Err(ManycoreError::InvalidParameter {
                name: "grid_height",
                value: 0.0,
            });
        }
        for (name, value) in [
            ("noc_hop_ns", self.noc_hop_ns),
            ("llc_bank_ns", self.llc_bank_ns),
            ("memory_ns", self.memory_ns),
            ("core_area_mm2", self.core_area_mm2),
            ("l1_kb", self.l1_kb as f64),
            ("llc_kb_per_core", self.llc_kb_per_core as f64),
            ("block_bytes", self.block_bytes as f64),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ManycoreError::InvalidParameter { name, value });
            }
        }
        self.migration.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = ArchConfig::default();
        assert_eq!(c.core_count(), 64);
        assert_eq!(c.noc_hop_ns, 1.5);
        assert_eq!(c.l1_kb, 16);
        assert_eq!(c.llc_kb_per_core, 128);
        assert_eq!(c.block_bytes, 64);
        assert_eq!(c.core_area_mm2, 0.81);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_grid() {
        let c = ArchConfig {
            grid_width: 0,
            ..ArchConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ManycoreError::InvalidParameter {
                name: "grid_width",
                ..
            })
        ));
    }

    #[test]
    fn rejects_negative_latency() {
        let c = ArchConfig {
            noc_hop_ns: -1.0,
            ..ArchConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
