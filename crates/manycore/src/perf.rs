use serde::{Deserialize, Serialize};

/// An interval workload description: what a thread *is doing* during a
/// simulation interval, independent of where it runs.
///
/// The mechanistic interval model (the approach of Sniper, on which
/// HotSniper builds) characterises a thread by its base CPI and its memory
/// access intensity; the machine then adds the location-dependent stall
/// cycles. Power derives from the same numbers: execution cycles switch the
/// core at `activity_exec`, stall cycles at `activity_stall`.
///
/// # Example
///
/// ```
/// use hp_manycore::WorkPoint;
///
/// let hot = WorkPoint::compute_bound();
/// let cool = WorkPoint::memory_bound();
/// assert!(hot.l1_mpki < cool.l1_mpki);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkPoint {
    /// Cycles per instruction with a perfect memory hierarchy.
    pub cpi_base: f64,
    /// L1 misses per kilo-instruction (these travel to the S-NUCA LLC).
    pub l1_mpki: f64,
    /// LLC misses per kilo-instruction (these go to off-chip memory).
    pub llc_mpki: f64,
    /// Switching activity while executing (0–1).
    pub activity_exec: f64,
    /// Switching activity while stalled on memory (0–1).
    pub activity_stall: f64,
}

impl WorkPoint {
    /// A typical compute-bound point (e.g. *blackscholes*, *swaptions*):
    /// high IPC, few misses, hot.
    pub fn compute_bound() -> Self {
        WorkPoint {
            cpi_base: 0.55,
            l1_mpki: 1.0,
            llc_mpki: 0.1,
            activity_exec: 1.0,
            activity_stall: 0.15,
        }
    }

    /// A typical memory-bound point (e.g. *canneal*): low IPC, many misses,
    /// cool.
    pub fn memory_bound() -> Self {
        WorkPoint {
            cpi_base: 0.9,
            l1_mpki: 30.0,
            llc_mpki: 8.0,
            activity_exec: 0.75,
            activity_stall: 0.12,
        }
    }

    /// An idle point: no instructions retire, the core sits clock-gated.
    pub fn idle() -> Self {
        WorkPoint {
            cpi_base: 0.0,
            l1_mpki: 0.0,
            llc_mpki: 0.0,
            activity_exec: 0.0,
            activity_stall: 0.0,
        }
    }

    /// Returns `true` for the idle point (no execution).
    pub fn is_idle(&self) -> bool {
        self.cpi_base == 0.0
    }

    /// Returns a copy with the L1 miss rate scaled by `factor`.
    pub fn with_l1_miss_factor(&self, factor: f64) -> Self {
        WorkPoint {
            l1_mpki: self.l1_mpki * factor,
            ..*self
        }
    }

    /// Returns a copy with `extra` additional L1 misses per
    /// kilo-instruction — the capacity-bounded cold-cache penalty after a
    /// migration (the refill traffic cannot exceed the private cache's
    /// line count, no matter how memory-bound the thread is).
    pub fn with_extra_l1_mpki(&self, extra: f64) -> Self {
        WorkPoint {
            l1_mpki: self.l1_mpki + extra.max(0.0),
            ..*self
        }
    }
}

/// The resolved cycles-per-instruction breakdown of a [`WorkPoint`] on a
/// specific core at a specific frequency.
///
/// Produced by [`Machine::cpi_stack`](crate::Machine::cpi_stack); exposes
/// the intermediate quantities (per C-INTERMEDIATE) so schedulers can sort
/// threads by CPI, as HotPotato's Algorithm 2 requires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiStack {
    /// Base (execution) component.
    pub base: f64,
    /// Stall cycles on LLC accesses (AMD-dependent).
    pub llc: f64,
    /// Stall cycles on off-chip memory accesses.
    pub memory: f64,
    /// Clock frequency used, GHz.
    pub freq_ghz: f64,
    /// Switching activity factor for the power model.
    pub activity: f64,
}

impl CpiStack {
    /// Total cycles per instruction.
    pub fn total(&self) -> f64 {
        self.base + self.llc + self.memory
    }

    /// Instructions per second at the stack's frequency.
    ///
    /// Returns `0.0` for an idle stack.
    pub fn ips(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.freq_ghz * 1e9 / total
    }

    /// Fraction of cycles spent executing (not stalled).
    pub fn execute_fraction(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.base / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_points_are_consistent() {
        let c = WorkPoint::compute_bound();
        let m = WorkPoint::memory_bound();
        assert!(c.cpi_base < m.cpi_base);
        assert!(c.llc_mpki < m.llc_mpki);
        assert!(!c.is_idle() && !m.is_idle());
        assert!(WorkPoint::idle().is_idle());
    }

    #[test]
    fn miss_factor_scales_only_l1() {
        let w = WorkPoint::memory_bound().with_l1_miss_factor(2.0);
        assert_eq!(w.l1_mpki, 60.0);
        assert_eq!(w.llc_mpki, WorkPoint::memory_bound().llc_mpki);
    }

    #[test]
    fn stack_arithmetic() {
        let s = CpiStack {
            base: 0.5,
            llc: 0.3,
            memory: 0.2,
            freq_ghz: 2.0,
            activity: 0.6,
        };
        assert_eq!(s.total(), 1.0);
        assert_eq!(s.ips(), 2.0e9);
        assert_eq!(s.execute_fraction(), 0.5);
    }

    #[test]
    fn idle_stack_has_zero_ips() {
        let s = CpiStack {
            base: 0.0,
            llc: 0.0,
            memory: 0.0,
            freq_ghz: 4.0,
            activity: 0.0,
        };
        assert_eq!(s.ips(), 0.0);
        assert_eq!(s.execute_fraction(), 0.0);
    }
}
