//! Property-based tests for floorplan geometry and AMD rings.

use hp_floorplan::{CoreId, GridFloorplan};
use proptest::prelude::*;

fn grids() -> impl Strategy<Value = GridFloorplan> {
    (1usize..=10, 1usize..=10).prop_map(|(w, h)| GridFloorplan::new(w, h).expect("non-empty grid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hops_are_a_metric(fp in grids(), a in 0usize..100, b in 0usize..100, c in 0usize..100) {
        let n = fp.core_count();
        let (a, b, c) = (CoreId(a % n), CoreId(b % n), CoreId(c % n));
        let d_ab = fp.hops(a, b).unwrap();
        let d_ba = fp.hops(b, a).unwrap();
        let d_ac = fp.hops(a, c).unwrap();
        let d_cb = fp.hops(c, b).unwrap();
        prop_assert_eq!(d_ab, d_ba);                       // symmetry
        prop_assert_eq!(fp.hops(a, a).unwrap(), 0);        // identity
        prop_assert!(d_ab <= d_ac + d_cb);                 // triangle
    }

    #[test]
    fn amd_bounded_by_extremes(fp in grids(), core in 0usize..100) {
        let n = fp.core_count();
        let core = CoreId(core % n);
        let amd = fp.amd(core).unwrap();
        let max_hops = (fp.width() - 1 + fp.height() - 1) as f64;
        prop_assert!(amd >= 0.0);
        prop_assert!(amd <= max_hops);
        if n > 1 {
            prop_assert!(amd >= 1.0 - 1e-12, "other cores are at least 1 hop away");
        }
    }

    #[test]
    fn rings_partition_and_sort(fp in grids()) {
        let rings = fp.amd_rings();
        prop_assert_eq!(rings.total_cores(), fp.core_count());
        let mut seen = vec![false; fp.core_count()];
        let mut last_amd = f64::NEG_INFINITY;
        for ring in &rings {
            prop_assert!(ring.amd() > last_amd);
            last_amd = ring.amd();
            for &c in ring.cores() {
                prop_assert!(!seen[c.index()]);
                seen[c.index()] = true;
                // Each member really has the ring's AMD.
                prop_assert!((fp.amd(c).unwrap() - ring.amd()).abs() < 1e-6);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ring_rotation_orders_are_cyclic(fp in grids()) {
        for ring in &fp.amd_rings() {
            let k = ring.capacity();
            let mut slot = 0usize;
            for _ in 0..k {
                slot = ring.next_slot(slot);
            }
            prop_assert_eq!(slot, 0);
        }
    }

    #[test]
    fn symmetric_grids_have_symmetric_amd(side in 1usize..=9) {
        // On a square grid, AMD is invariant under the 4 reflections.
        let fp = GridFloorplan::new(side, side).expect("grid");
        for core in fp.cores() {
            let c = fp.coord(core).expect("in range");
            let mirror_x = fp.core_at(side - 1 - c.x, c.y).expect("in range");
            let mirror_y = fp.core_at(c.x, side - 1 - c.y).expect("in range");
            let transpose = fp.core_at(c.y, c.x).expect("in range");
            let amd = fp.amd(core).expect("in range");
            prop_assert!((fp.amd(mirror_x).unwrap() - amd).abs() < 1e-9);
            prop_assert!((fp.amd(mirror_y).unwrap() - amd).abs() < 1e-9);
            prop_assert!((fp.amd(transpose).unwrap() - amd).abs() < 1e-9);
        }
    }

    #[test]
    fn neighbors_are_distance_one(fp in grids(), core in 0usize..100) {
        let n = fp.core_count();
        let core = CoreId(core % n);
        for nb in fp.neighbors(core).unwrap() {
            prop_assert_eq!(fp.hops(core, nb).unwrap(), 1);
        }
    }

    #[test]
    fn amd_increases_from_center(fp in grids()) {
        // The minimum-AMD core is always one of the central cores.
        let n = fp.core_count();
        if n < 4 {
            return Ok(());
        }
        let min_core = fp
            .cores()
            .min_by(|&a, &b| {
                fp.amd(a).unwrap().partial_cmp(&fp.amd(b).unwrap()).unwrap()
            })
            .unwrap();
        let c = fp.coord(min_core).unwrap();
        let cx = (fp.width() as f64 - 1.0) / 2.0;
        let cy = (fp.height() as f64 - 1.0) / 2.0;
        prop_assert!((c.x as f64 - cx).abs() <= 0.5 + 1e-9);
        prop_assert!((c.y as f64 - cy).abs() <= 0.5 + 1e-9);
    }
}
