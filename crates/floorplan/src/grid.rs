use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rings::RingSet;
use crate::{FloorplanError, Result};

/// Identifier of a core on the floorplan.
///
/// Cores are numbered row-major: core `y * width + x` sits at column `x`,
/// row `y` — the numbering used in the paper's Fig. 1 (a 4×4 chip whose
/// centre cores are 5, 6, 9 and 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(i: usize) -> Self {
        CoreId(i)
    }
}

/// A grid coordinate `(x, y)` with `x` the column and `y` the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column, `0 ≤ x < width`.
    pub x: usize,
    /// Row, `0 ≤ y < height`.
    pub y: usize,
}

impl Coord {
    /// Manhattan distance to `other` — the hop count of XY routing.
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A rectangular grid of micro-architecturally homogeneous cores connected
/// by a mesh NoC with XY routing, each holding one bank of the distributed
/// LLC (paper §III-A).
///
/// # Example
///
/// ```
/// use hp_floorplan::{Coord, CoreId, GridFloorplan};
///
/// # fn main() -> Result<(), hp_floorplan::FloorplanError> {
/// let fp = GridFloorplan::new(4, 4)?;
/// assert_eq!(fp.coord(CoreId(5))?, Coord { x: 1, y: 1 });
/// assert_eq!(fp.hops(CoreId(0), CoreId(15))?, 6);
/// // Centre cores have the lowest AMD.
/// assert!(fp.amd(CoreId(5))? < fp.amd(CoreId(0))?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridFloorplan {
    width: usize,
    height: usize,
    /// Pre-computed AMD per core.
    amd: Vec<f64>,
}

impl GridFloorplan {
    /// Creates a `width × height` grid floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::EmptyGrid`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(FloorplanError::EmptyGrid);
        }
        let n = width * height;
        let coord = |c: usize| Coord {
            x: c % width,
            y: c / width,
        };
        let mut amd = vec![0.0; n];
        if n > 1 {
            for (i, a) in amd.iter_mut().enumerate() {
                let ci = coord(i);
                let total: usize = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| ci.manhattan(coord(j)))
                    .sum();
                *a = total as f64 / (n - 1) as f64;
            }
        }
        Ok(GridFloorplan { width, height, amd })
    }

    /// Grid width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of cores.
    pub fn core_count(&self) -> usize {
        self.width * self.height
    }

    /// Iterator over all core ids in row-major order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.core_count()).map(CoreId)
    }

    /// Validates a core id.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for out-of-range ids.
    pub fn check(&self, core: CoreId) -> Result<()> {
        if core.0 >= self.core_count() {
            return Err(FloorplanError::CoreOutOfRange {
                core: core.0,
                cores: self.core_count(),
            });
        }
        Ok(())
    }

    /// The grid coordinate of `core`.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for out-of-range ids.
    pub fn coord(&self, core: CoreId) -> Result<Coord> {
        self.check(core)?;
        Ok(Coord {
            x: core.0 % self.width,
            y: core.0 / self.width,
        })
    }

    /// The core at coordinate `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoordOutOfRange`] if outside the grid.
    pub fn core_at(&self, x: usize, y: usize) -> Result<CoreId> {
        if x >= self.width || y >= self.height {
            return Err(FloorplanError::CoordOutOfRange {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(CoreId(y * self.width + x))
    }

    /// XY-routing hop count between two cores' routers.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for out-of-range ids.
    pub fn hops(&self, a: CoreId, b: CoreId) -> Result<usize> {
        Ok(self.coord(a)?.manhattan(self.coord(b)?))
    }

    /// Average Manhattan Distance of `core` to all *other* cores.
    ///
    /// This is the AMD of \[19\] that governs S-NUCA LLC latency: a uniformly
    /// distributed cache line is `AMD` hops away on average.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for out-of-range ids.
    pub fn amd(&self, core: CoreId) -> Result<f64> {
        self.check(core)?;
        Ok(self.amd[core.0])
    }

    /// All AMD values, indexed by core.
    pub fn amd_values(&self) -> &[f64] {
        &self.amd
    }

    /// The 4-neighbourhood of `core` (mesh adjacency, used for lateral
    /// thermal coupling).
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::CoreOutOfRange`] for out-of-range ids.
    pub fn neighbors(&self, core: CoreId) -> Result<Vec<CoreId>> {
        let c = self.coord(core)?;
        let mut out = Vec::with_capacity(4);
        if c.x > 0 {
            out.push(CoreId(core.0 - 1));
        }
        if c.x + 1 < self.width {
            out.push(CoreId(core.0 + 1));
        }
        if c.y > 0 {
            out.push(CoreId(core.0 - self.width));
        }
        if c.y + 1 < self.height {
            out.push(CoreId(core.0 + self.width));
        }
        Ok(out)
    }

    /// Groups cores into concentric rings of equal AMD, sorted by ascending
    /// AMD (paper Fig. 3). Cores inside a ring are ordered cyclically around
    /// the die centre so that "rotate by one slot" moves each thread to a
    /// geometrically adjacent position.
    pub fn amd_rings(&self) -> RingSet {
        RingSet::from_floorplan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(
            GridFloorplan::new(0, 4).unwrap_err(),
            FloorplanError::EmptyGrid
        );
        assert_eq!(
            GridFloorplan::new(4, 0).unwrap_err(),
            FloorplanError::EmptyGrid
        );
    }

    #[test]
    fn coordinates_roundtrip() {
        let fp = GridFloorplan::new(5, 3).unwrap();
        for core in fp.cores() {
            let c = fp.coord(core).unwrap();
            assert_eq!(fp.core_at(c.x, c.y).unwrap(), core);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let fp = GridFloorplan::new(2, 2).unwrap();
        assert!(fp.coord(CoreId(4)).is_err());
        assert!(fp.core_at(2, 0).is_err());
        assert!(fp.hops(CoreId(0), CoreId(9)).is_err());
    }

    #[test]
    fn hops_match_manhattan() {
        let fp = GridFloorplan::new(4, 4).unwrap();
        assert_eq!(fp.hops(CoreId(0), CoreId(0)).unwrap(), 0);
        assert_eq!(fp.hops(CoreId(0), CoreId(3)).unwrap(), 3);
        assert_eq!(fp.hops(CoreId(0), CoreId(12)).unwrap(), 3);
        assert_eq!(fp.hops(CoreId(0), CoreId(15)).unwrap(), 6);
        assert_eq!(fp.hops(CoreId(5), CoreId(10)).unwrap(), 2);
    }

    #[test]
    fn amd_center_lower_than_corner_4x4() {
        let fp = GridFloorplan::new(4, 4).unwrap();
        // Centre cores of the paper's Fig. 1: 5, 6, 9, 10.
        let center = fp.amd(CoreId(5)).unwrap();
        let corner = fp.amd(CoreId(0)).unwrap();
        assert!(center < corner);
        // All four centre cores share the same AMD by symmetry.
        for c in [6usize, 9, 10] {
            assert!((fp.amd(CoreId(c)).unwrap() - center).abs() < 1e-12);
        }
        // All four corners share the same AMD.
        for c in [3usize, 12, 15] {
            assert!((fp.amd(CoreId(c)).unwrap() - corner).abs() < 1e-12);
        }
    }

    #[test]
    fn amd_known_value_2x2() {
        // Every core in a 2x2 grid has neighbours at distance 1, 1, 2.
        let fp = GridFloorplan::new(2, 2).unwrap();
        for core in fp.cores() {
            assert!((fp.amd(core).unwrap() - 4.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_core_amd_zero() {
        let fp = GridFloorplan::new(1, 1).unwrap();
        assert_eq!(fp.amd(CoreId(0)).unwrap(), 0.0);
    }

    #[test]
    fn neighbors_counts() {
        let fp = GridFloorplan::new(3, 3).unwrap();
        assert_eq!(fp.neighbors(CoreId(4)).unwrap().len(), 4); // centre
        assert_eq!(fp.neighbors(CoreId(0)).unwrap().len(), 2); // corner
        assert_eq!(fp.neighbors(CoreId(1)).unwrap().len(), 3); // edge
    }

    #[test]
    fn neighbors_symmetric() {
        let fp = GridFloorplan::new(4, 3).unwrap();
        for a in fp.cores() {
            for b in fp.neighbors(a).unwrap() {
                assert!(fp.neighbors(b).unwrap().contains(&a));
            }
        }
    }
}
