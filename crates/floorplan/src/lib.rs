//! Grid floorplans and the AMD (Average Manhattan Distance) geometry of
//! S-NUCA many-cores.
//!
//! On an S-NUCA many-core the last-level cache is statically distributed
//! across all cores' banks, so every memory access travels on average
//! `AMD(core) × hop latency` through the NoC. The AMD of a core therefore
//! determines both its *performance* (lower AMD ⇒ faster LLC) and its
//! *thermal* situation (low-AMD cores sit in the die centre and are hotter).
//! The HotPotato scheduler exploits the resulting **concentric AMD rings**
//! (paper Fig. 3): cores with equal AMD are performance- and thermal-wise
//! homogeneous and form natural rotation groups.
//!
//! # Example
//!
//! ```
//! use hp_floorplan::GridFloorplan;
//!
//! # fn main() -> Result<(), hp_floorplan::FloorplanError> {
//! let fp = GridFloorplan::new(8, 8)?; // the paper's 64-core chip
//! let rings = fp.amd_rings();
//! assert_eq!(rings.total_cores(), 64);
//! // Innermost ring has the lowest AMD: the four centre cores.
//! assert_eq!(rings.ring(0).cores().len(), 4);
//! # Ok(())
//! # }
//! ```

mod error;
mod grid;
mod rings;

pub use error::FloorplanError;
pub use grid::{Coord, CoreId, GridFloorplan};
pub use rings::{AmdRing, RingIndex, RingSet};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FloorplanError>;
