use std::error::Error;
use std::fmt;

/// Errors produced while constructing or querying floorplans.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FloorplanError {
    /// A grid dimension was zero.
    EmptyGrid,
    /// A core index was out of range for the floorplan.
    CoreOutOfRange {
        /// The offending core index.
        core: usize,
        /// Number of cores in the floorplan.
        cores: usize,
    },
    /// A coordinate was outside the grid.
    CoordOutOfRange {
        /// The offending coordinate.
        x: usize,
        /// The offending coordinate.
        y: usize,
        /// Grid width.
        width: usize,
        /// Grid height.
        height: usize,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::EmptyGrid => write!(f, "grid dimensions must be non-zero"),
            FloorplanError::CoreOutOfRange { core, cores } => {
                write!(f, "core {core} out of range (floorplan has {cores} cores)")
            }
            FloorplanError::CoordOutOfRange {
                x,
                y,
                width,
                height,
            } => write!(f, "coordinate ({x}, {y}) outside {width}x{height} grid"),
        }
    }
}

impl Error for FloorplanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(FloorplanError::EmptyGrid.to_string().contains("non-zero"));
        assert!(FloorplanError::CoreOutOfRange {
            core: 70,
            cores: 64
        }
        .to_string()
        .contains("70"));
    }
}
