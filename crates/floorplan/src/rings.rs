//! Concentric AMD rings (paper Fig. 3) and cyclic rotation orders.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::grid::{CoreId, GridFloorplan};

/// Tolerance when grouping floating-point AMD values into rings.
const AMD_EPS: f64 = 1e-9;

/// Index of a ring inside a [`RingSet`], `0` being the innermost
/// (lowest-AMD, best-performance) ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RingIndex(pub usize);

impl RingIndex {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RingIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring{}", self.0)
    }
}

/// One concentric ring of cores sharing the same AMD.
///
/// Cores within a ring are performance- and thermal-wise homogeneous
/// (paper §V), so threads assigned to a ring may rotate freely among its
/// slots. The stored order is a cyclic walk around the die centre.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmdRing {
    amd: f64,
    cores: Vec<CoreId>,
}

impl AmdRing {
    /// The common AMD of the ring's cores.
    pub fn amd(&self) -> f64 {
        self.amd
    }

    /// The ring's cores in cyclic rotation order.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// Number of slots (cores) in the ring.
    pub fn capacity(&self) -> usize {
        self.cores.len()
    }

    /// The slot that follows `slot` in rotation order (wraps around).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.capacity()`.
    pub fn next_slot(&self, slot: usize) -> usize {
        assert!(slot < self.cores.len(), "slot {slot} out of range");
        (slot + 1) % self.cores.len()
    }

    /// Position of `core` in the ring's rotation order, if present.
    pub fn slot_of(&self, core: CoreId) -> Option<usize> {
        self.cores.iter().position(|&c| c == core)
    }
}

/// All concentric AMD rings of a floorplan, innermost first.
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
///
/// # fn main() -> Result<(), hp_floorplan::FloorplanError> {
/// let rings = GridFloorplan::new(4, 4)?.amd_rings();
/// // 4x4 grid: centre ring of 4, middle ring of 8, corner ring of 4.
/// assert_eq!(rings.len(), 3);
/// assert_eq!(rings.ring(0).capacity(), 4);
/// assert_eq!(rings.ring(1).capacity(), 8);
/// assert_eq!(rings.ring(2).capacity(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingSet {
    rings: Vec<AmdRing>,
    /// Ring index per core.
    ring_of: Vec<usize>,
}

impl RingSet {
    /// Groups a floorplan's cores by AMD and orders each ring cyclically.
    pub fn from_floorplan(fp: &GridFloorplan) -> Self {
        let n = fp.core_count();
        let mut order: Vec<usize> = (0..n).collect();
        let amd = fp.amd_values();
        order.sort_by(|&a, &b| amd[a].total_cmp(&amd[b]));

        let cx = (fp.width() as f64 - 1.0) / 2.0;
        let cy = (fp.height() as f64 - 1.0) / 2.0;

        let mut rings: Vec<AmdRing> = Vec::new();
        let mut ring_of = vec![0usize; n];
        for &core in &order {
            let a = amd[core];
            let matches_last = rings
                .last()
                .is_some_and(|r| (r.amd - a).abs() <= AMD_EPS * (1.0 + a));
            if !matches_last {
                rings.push(AmdRing {
                    amd: a,
                    cores: Vec::new(),
                });
            }
            let idx = rings.len().saturating_sub(1);
            if let Some(ring) = rings.last_mut() {
                ring.cores.push(CoreId(core));
            }
            ring_of[core] = idx;
        }

        // Order each ring's cores as a cyclic walk around the die centre.
        // Out-of-range cores cannot occur (all ids come from `0..n`);
        // the sentinel keeps the comparator total instead of panicking.
        let angle_of = |c: CoreId| -> f64 {
            match fp.coord(c) {
                Ok(p) => (p.y as f64 - cy).atan2(p.x as f64 - cx),
                Err(_) => f64::NEG_INFINITY,
            }
        };
        for ring in &mut rings {
            ring.cores
                .sort_by(|&a, &b| angle_of(a).total_cmp(&angle_of(b)).then(a.cmp(&b)));
        }

        RingSet { rings, ring_of }
    }

    /// Number of rings.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Returns `true` if there are no rings (impossible for a valid
    /// floorplan, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// The ring at `index` (0 = innermost).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn ring(&self, index: usize) -> &AmdRing {
        &self.rings[index]
    }

    /// Iterator over rings, innermost first.
    pub fn iter(&self) -> std::slice::Iter<'_, AmdRing> {
        self.rings.iter()
    }

    /// The ring that contains `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for the originating floorplan.
    pub fn ring_of(&self, core: CoreId) -> RingIndex {
        RingIndex(self.ring_of[core.0])
    }

    /// Total cores across all rings.
    pub fn total_cores(&self) -> usize {
        self.rings.iter().map(|r| r.capacity()).sum()
    }
}

impl<'a> IntoIterator for &'a RingSet {
    type Item = &'a AmdRing;
    type IntoIter = std::slice::Iter<'a, AmdRing>;

    fn into_iter(self) -> Self::IntoIter {
        self.rings.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_partition_cores() {
        let fp = GridFloorplan::new(8, 8).unwrap();
        let rings = fp.amd_rings();
        assert_eq!(rings.total_cores(), 64);
        let mut seen = [false; 64];
        for ring in &rings {
            for &c in ring.cores() {
                assert!(!seen[c.0], "core {c} in two rings");
                seen[c.0] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rings_sorted_by_amd() {
        let fp = GridFloorplan::new(8, 8).unwrap();
        let rings = fp.amd_rings();
        for w in rings.rings.windows(2) {
            assert!(w[0].amd() < w[1].amd());
        }
    }

    #[test]
    fn ring_of_is_consistent() {
        let fp = GridFloorplan::new(6, 6).unwrap();
        let rings = fp.amd_rings();
        for core in fp.cores() {
            let idx = rings.ring_of(core);
            assert!(rings.ring(idx.index()).cores().contains(&core));
        }
    }

    #[test]
    fn four_by_four_ring_structure() {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let rings = fp.amd_rings();
        assert_eq!(rings.len(), 3);
        // Innermost ring is exactly the paper's centre cores {5, 6, 9, 10}.
        let mut inner: Vec<usize> = rings.ring(0).cores().iter().map(|c| c.0).collect();
        inner.sort_unstable();
        assert_eq!(inner, vec![5, 6, 9, 10]);
        // Outermost ring is the corners.
        let mut outer: Vec<usize> = rings.ring(2).cores().iter().map(|c| c.0).collect();
        outer.sort_unstable();
        assert_eq!(outer, vec![0, 3, 12, 15]);
    }

    #[test]
    fn rotation_order_is_cyclic_permutation() {
        let fp = GridFloorplan::new(8, 8).unwrap();
        let rings = fp.amd_rings();
        for ring in &rings {
            let k = ring.capacity();
            let mut visited = vec![false; k];
            let mut slot = 0;
            for _ in 0..k {
                assert!(!visited[slot]);
                visited[slot] = true;
                slot = ring.next_slot(slot);
            }
            assert_eq!(slot, 0, "rotation returns to start");
            assert!(visited.iter().all(|&v| v));
        }
    }

    #[test]
    fn inner_ring_rotation_is_geometrically_tight_4x4() {
        // Rotating around the 4-core centre ring should always move a
        // thread to an adjacent core (1 hop), like the paper's Fig. 1.
        let fp = GridFloorplan::new(4, 4).unwrap();
        let rings = fp.amd_rings();
        let ring = rings.ring(0);
        for s in 0..ring.capacity() {
            let a = ring.cores()[s];
            let b = ring.cores()[ring.next_slot(s)];
            assert_eq!(fp.hops(a, b).unwrap(), 1, "{a} -> {b}");
        }
    }

    #[test]
    fn slot_of_roundtrip() {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let rings = fp.amd_rings();
        for ring in &rings {
            for (slot, &core) in ring.cores().iter().enumerate() {
                assert_eq!(ring.slot_of(core), Some(slot));
            }
        }
        assert_eq!(rings.ring(0).slot_of(CoreId(0)), None);
    }

    #[test]
    fn single_core_grid() {
        let fp = GridFloorplan::new(1, 1).unwrap();
        let rings = fp.amd_rings();
        assert_eq!(rings.len(), 1);
        assert_eq!(rings.ring(0).capacity(), 1);
        assert_eq!(rings.ring(0).next_slot(0), 0);
    }
}
