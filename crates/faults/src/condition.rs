use crate::inject::SensorReading;

/// A serializable capture of a [`SensorConditioner`]'s mutable state
/// (held values, staleness counters, seen flags), sufficient to resume
/// conditioning exactly where it stopped
/// ([`SensorConditioner::restore`]). Configuration (neighbours, budget,
/// fallback temperature) is not captured — the restoring caller rebuilds
/// the conditioner from the same configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionerSnapshot {
    /// Per-core last delivered reading, °C.
    pub last_good_celsius: Vec<f64>,
    /// Per-core consecutive missed readings.
    pub staleness: Vec<u64>,
    /// Per-core whether any reading was ever delivered.
    pub seen: Vec<bool>,
}

/// The conditioned per-core temperature view schedulers consume.
///
/// Confidence is in `[0, 1]` per core: `1.0` for a fresh reading,
/// decaying while a value is held through dropouts, lower again when a
/// core's temperature had to be reconstructed from its neighbours, and
/// `0.0` when nothing better than the configured fallback was available.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustedTemps {
    /// Conditioned temperature estimate per core, °C.
    pub temps_celsius: Vec<f64>,
    /// Trust in each estimate, in `[0, 1]`.
    pub confidence: Vec<f64>,
}

impl TrustedTemps {
    /// The least-trusted core's confidence (`1.0` for an empty chip).
    pub fn min_confidence(&self) -> f64 {
        self.confidence.iter().copied().fold(1.0, f64::min)
    }

    /// The hottest conditioned estimate, °C (`f64::NEG_INFINITY` for an
    /// empty chip).
    pub fn max_celsius(&self) -> f64 {
        self.temps_celsius
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Turns raw, possibly missing sensor readings into a [`TrustedTemps`]
/// view via a fixed fallback ladder:
///
/// 1. **Fresh reading** — delivered value, confidence `1.0`.
/// 2. **Last-good hold** — while a core has missed at most
///    `staleness_budget` consecutive readings, its last delivered value
///    is held; confidence decays linearly toward the budget.
/// 3. **Spatial median** — past the budget, the median of the core's
///    neighbours' current estimates (themselves rung-1 or rung-2 values)
///    stands in, at half the contributing neighbours' mean confidence.
/// 4. **Fallback constant** — with no usable neighbours either, the
///    configured fallback temperature is reported at confidence `0.0`.
///
/// The conditioner is pure bookkeeping — no RNG — so identical reading
/// sequences always condition identically.
#[derive(Debug, Clone)]
pub struct SensorConditioner {
    /// Consecutive missed readings a held value survives.
    staleness_budget: u64,
    /// Reported when a core has no history and no usable neighbours, °C.
    fallback_temp_celsius: f64,
    /// Adjacency list per core (engine supplies mesh neighbours).
    neighbors: Vec<Vec<usize>>,
    last_good_celsius: Vec<f64>,
    /// Consecutive intervals since the core last delivered a reading.
    staleness: Vec<u64>,
    /// Whether the core has ever delivered a reading.
    seen: Vec<bool>,
}

impl SensorConditioner {
    /// Builds a conditioner for `neighbors.len()` cores.
    pub fn new(
        neighbors: Vec<Vec<usize>>,
        staleness_budget: u64,
        fallback_temp_celsius: f64,
    ) -> Self {
        let cores = neighbors.len();
        SensorConditioner {
            staleness_budget,
            fallback_temp_celsius,
            neighbors,
            last_good_celsius: vec![fallback_temp_celsius; cores],
            staleness: vec![0; cores],
            seen: vec![false; cores],
        }
    }

    /// Number of cores this conditioner tracks.
    pub fn cores(&self) -> usize {
        self.neighbors.len()
    }

    /// Captures the conditioner's mutable state for checkpointing.
    pub fn snapshot(&self) -> ConditionerSnapshot {
        ConditionerSnapshot {
            last_good_celsius: self.last_good_celsius.clone(),
            staleness: self.staleness.clone(),
            seen: self.seen.clone(),
        }
    }

    /// Restores a previously captured [`ConditionerSnapshot`].
    ///
    /// Returns `false` (leaving the conditioner untouched) when the
    /// snapshot's per-core vectors do not match this conditioner's core
    /// count — a wrong-run snapshot.
    pub fn restore(&mut self, snap: &ConditionerSnapshot) -> bool {
        let cores = self.neighbors.len();
        if snap.last_good_celsius.len() != cores
            || snap.staleness.len() != cores
            || snap.seen.len() != cores
        {
            return false;
        }
        self.last_good_celsius.clone_from(&snap.last_good_celsius);
        self.staleness.clone_from(&snap.staleness);
        self.seen.clone_from(&snap.seen);
        true
    }

    /// Conditions one interval's readings. `readings` beyond the
    /// configured core count are ignored; missing trailing entries are
    /// treated as dropouts.
    pub fn condition(&mut self, readings: &[SensorReading]) -> TrustedTemps {
        let cores = self.neighbors.len();
        let mut temps = vec![self.fallback_temp_celsius; cores];
        let mut confidence = vec![0.0; cores];
        // Cores that still need the spatial-median rung after the
        // hold rung has run for everyone.
        let mut unresolved = Vec::new();

        for core in 0..cores {
            match readings.get(core).copied().flatten() {
                Some(value) => {
                    if let (Some(last), Some(stale), Some(seen)) = (
                        self.last_good_celsius.get_mut(core),
                        self.staleness.get_mut(core),
                        self.seen.get_mut(core),
                    ) {
                        *last = value;
                        *stale = 0;
                        *seen = true;
                    }
                    if let (Some(t), Some(c)) = (temps.get_mut(core), confidence.get_mut(core)) {
                        *t = value;
                        *c = 1.0;
                    }
                }
                None => {
                    if let Some(stale) = self.staleness.get_mut(core) {
                        *stale = stale.saturating_add(1);
                    }
                    let stale = self.staleness.get(core).copied().unwrap_or(u64::MAX);
                    let seen = self.seen.get(core).copied().unwrap_or(false);
                    if seen && stale <= self.staleness_budget {
                        let held = self
                            .last_good_celsius
                            .get(core)
                            .copied()
                            .unwrap_or(self.fallback_temp_celsius);
                        // Linear decay: one missed interval on a budget
                        // of b costs 1/(b+1) of full trust.
                        let decayed = 1.0 - (stale as f64) / (self.staleness_budget as f64 + 1.0);
                        if let (Some(t), Some(c)) = (temps.get_mut(core), confidence.get_mut(core))
                        {
                            *t = held;
                            *c = decayed.max(0.0);
                        }
                    } else {
                        unresolved.push(core);
                    }
                }
            }
        }

        // Spatial rung: reconstruct from neighbours that resolved on the
        // first pass (fresh or held). Neighbours that are themselves
        // unresolved this interval contribute nothing.
        for &core in &unresolved {
            let mut samples: Vec<(f64, f64)> = Vec::new();
            for &n in self.neighbors.get(core).map(Vec::as_slice).unwrap_or(&[]) {
                if let (Some(&t), Some(&c)) = (temps.get(n), confidence.get(n)) {
                    if c > 0.0 && !unresolved.contains(&n) {
                        samples.push((t, c));
                    }
                }
            }
            if samples.is_empty() {
                // Rung 4: nothing to lean on. Keep whatever history we
                // have (or the fallback constant) at zero confidence.
                let held = if self.seen.get(core).copied().unwrap_or(false) {
                    self.last_good_celsius
                        .get(core)
                        .copied()
                        .unwrap_or(self.fallback_temp_celsius)
                } else {
                    self.fallback_temp_celsius
                };
                if let (Some(t), Some(c)) = (temps.get_mut(core), confidence.get_mut(core)) {
                    *t = held;
                    *c = 0.0;
                }
            } else {
                samples.sort_by(|a, b| a.0.total_cmp(&b.0));
                let median = if samples.len() % 2 == 1 {
                    samples
                        .get(samples.len() / 2)
                        .map(|s| s.0)
                        .unwrap_or(self.fallback_temp_celsius)
                } else {
                    let hi = samples.len() / 2;
                    let a = samples
                        .get(hi - 1)
                        .map(|s| s.0)
                        .unwrap_or(self.fallback_temp_celsius);
                    let b = samples
                        .get(hi)
                        .map(|s| s.0)
                        .unwrap_or(self.fallback_temp_celsius);
                    0.5 * (a + b)
                };
                let mean_conf: f64 =
                    samples.iter().map(|s| s.1).sum::<f64>() / samples.len() as f64;
                if let (Some(t), Some(c)) = (temps.get_mut(core), confidence.get_mut(core)) {
                    *t = median;
                    *c = 0.5 * mean_conf;
                }
            }
        }

        TrustedTemps {
            temps_celsius: temps,
            confidence,
        }
    }
}

/// Builds the 4-neighbour (von Neumann) adjacency lists for a
/// `rows × cols` mesh in row-major core order — the layout the interval
/// simulator uses for its floorplans.
pub fn mesh_neighbors(rows: usize, cols: usize) -> Vec<Vec<usize>> {
    let mut neighbors = Vec::with_capacity(rows.saturating_mul(cols));
    for r in 0..rows {
        for c in 0..cols {
            let mut adj = Vec::with_capacity(4);
            if r > 0 {
                adj.push((r - 1) * cols + c);
            }
            if r + 1 < rows {
                adj.push((r + 1) * cols + c);
            }
            if c > 0 {
                adj.push(r * cols + c - 1);
            }
            if c + 1 < cols {
                adj.push(r * cols + c + 1);
            }
            neighbors.push(adj);
        }
    }
    neighbors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_readings_pass_through_with_full_confidence() {
        let mut cond = SensorConditioner::new(mesh_neighbors(2, 2), 3, 45.0);
        let out = cond.condition(&[Some(50.0), Some(51.0), Some(52.0), Some(53.0)]);
        assert_eq!(out.temps_celsius, vec![50.0, 51.0, 52.0, 53.0]);
        assert_eq!(out.confidence, vec![1.0; 4]);
        assert_eq!(out.min_confidence(), 1.0);
        assert_eq!(out.max_celsius(), 53.0);
    }

    #[test]
    fn hold_decays_then_spatial_median_takes_over() {
        let mut cond = SensorConditioner::new(mesh_neighbors(2, 2), 2, 45.0);
        cond.condition(&[Some(50.0), Some(60.0), Some(70.0), Some(80.0)]);
        // Core 0 goes silent; cores 1/2 stay fresh.
        let out = cond.condition(&[None, Some(60.0), Some(70.0), Some(80.0)]);
        assert_eq!(out.temps_celsius[0], 50.0);
        assert!(out.confidence[0] < 1.0 && out.confidence[0] > 0.0);
        let first_hold_conf = out.confidence[0];
        let out = cond.condition(&[None, Some(60.0), Some(70.0), Some(80.0)]);
        assert_eq!(out.temps_celsius[0], 50.0);
        assert!(out.confidence[0] < first_hold_conf);
        // Budget (2) exhausted: neighbours 1 and 2 stand in via median.
        let out = cond.condition(&[None, Some(60.0), Some(70.0), Some(80.0)]);
        assert_eq!(out.temps_celsius[0], 65.0);
        assert!(out.confidence[0] <= 0.5);
        assert!(out.confidence[0] > 0.0);
    }

    #[test]
    fn recovery_restores_full_confidence() {
        let mut cond = SensorConditioner::new(mesh_neighbors(2, 2), 1, 45.0);
        cond.condition(&[Some(50.0), Some(50.0), Some(50.0), Some(50.0)]);
        cond.condition(&[None, Some(50.0), Some(50.0), Some(50.0)]);
        let out = cond.condition(&[Some(55.0), Some(50.0), Some(50.0), Some(50.0)]);
        assert_eq!(out.temps_celsius[0], 55.0);
        assert_eq!(out.confidence[0], 1.0);
    }

    #[test]
    fn total_blackout_reports_fallback_at_zero_confidence() {
        let mut cond = SensorConditioner::new(mesh_neighbors(2, 2), 0, 45.0);
        let out = cond.condition(&[None, None, None, None]);
        assert_eq!(out.temps_celsius, vec![45.0; 4]);
        assert_eq!(out.confidence, vec![0.0; 4]);
        assert_eq!(out.min_confidence(), 0.0);
    }

    #[test]
    fn blackout_after_history_holds_last_good_at_zero_confidence() {
        let mut cond = SensorConditioner::new(mesh_neighbors(1, 2), 0, 45.0);
        cond.condition(&[Some(58.0), Some(62.0)]);
        let out = cond.condition(&[None, None]);
        // Neither core resolved, so the spatial rung finds no samples and
        // history is kept rather than snapping to the fallback constant.
        assert_eq!(out.temps_celsius, vec![58.0, 62.0]);
        assert_eq!(out.confidence, vec![0.0, 0.0]);
    }

    #[test]
    fn short_reading_slice_counts_as_dropout() {
        let mut cond = SensorConditioner::new(mesh_neighbors(2, 2), 3, 45.0);
        cond.condition(&[Some(50.0), Some(50.0), Some(50.0), Some(50.0)]);
        let out = cond.condition(&[Some(51.0)]);
        assert_eq!(out.temps_celsius[0], 51.0);
        assert_eq!(out.temps_celsius[1], 50.0);
        assert!(out.confidence[1] < 1.0);
    }

    #[test]
    fn mesh_neighbors_shape() {
        let n = mesh_neighbors(2, 3);
        assert_eq!(n.len(), 6);
        assert_eq!(n[0], vec![3, 1]);
        assert_eq!(n[4], vec![1, 3, 5]);
    }

    #[test]
    fn snapshot_restore_resumes_conditioning() {
        let feed: Vec<Vec<SensorReading>> = vec![
            vec![Some(50.0), Some(60.0), Some(70.0), Some(80.0)],
            vec![None, Some(60.5), None, Some(80.5)],
            vec![None, None, None, Some(81.0)],
            vec![Some(52.0), None, Some(71.0), None],
        ];
        let mut golden = SensorConditioner::new(mesh_neighbors(2, 2), 2, 45.0);
        let mut live = SensorConditioner::new(mesh_neighbors(2, 2), 2, 45.0);
        for r in &feed[..2] {
            assert_eq!(golden.condition(r), live.condition(r));
        }
        let snap = live.snapshot();
        let mut resumed = SensorConditioner::new(mesh_neighbors(2, 2), 2, 45.0);
        assert!(resumed.restore(&snap));
        for r in &feed[2..] {
            assert_eq!(golden.condition(r), resumed.condition(r));
        }
        // A wrong-sized snapshot is refused.
        let mut other = SensorConditioner::new(mesh_neighbors(3, 3), 2, 45.0);
        assert!(!other.restore(&snap));
    }

    #[test]
    fn conditioning_is_deterministic() {
        let readings: Vec<Vec<SensorReading>> = vec![
            vec![Some(50.0), None, Some(52.0), Some(53.0)],
            vec![None, None, Some(52.5), Some(53.5)],
            vec![None, Some(51.0), None, Some(54.0)],
        ];
        let run = |mut cond: SensorConditioner| -> Vec<TrustedTemps> {
            readings.iter().map(|r| cond.condition(r)).collect()
        };
        let a = run(SensorConditioner::new(mesh_neighbors(2, 2), 1, 45.0));
        let b = run(SensorConditioner::new(mesh_neighbors(2, 2), 1, 45.0));
        assert_eq!(a, b);
    }
}
