//! Deterministic fault injection for the interval thermal simulator.
//!
//! HotPotato's run-time guarantee (`T_peak < T_DTM`) is only as good as
//! the inputs it acts on. Real thermal managers live with noisy or stuck
//! sensors, migration requests that silently fail, and transient power
//! excursions; a simulator that assumes all three away either skews
//! results quietly or aborts a run and discards everything it measured.
//! This crate supplies the three pieces the engine composes into a
//! graceful-degradation chain:
//!
//! * [`FaultPlan`] — a seed-driven, serde-visible description of *what*
//!   to inject: per-interval sensor faults (Gaussian noise, stuck-at-
//!   last-value, dropout), migration failures with a blackout window,
//!   and transient power spikes. All rates default to zero; a default
//!   plan is inert and the engine bypasses the fault layer entirely, so
//!   the no-fault path stays bit-identical.
//! * [`FaultInjector`] — the runtime that draws those faults from a
//!   deterministic RNG ([`rand`]'s xoshiro stand-in seeded from the
//!   plan). Two runs with the same plan, workload and schedule see the
//!   same faults at the same intervals.
//! * [`SensorConditioner`] — turns raw (possibly missing or stale)
//!   readings into a [`TrustedTemps`] view with per-core confidence:
//!   last-good-value hold inside a staleness budget, then a
//!   median-of-neighbours spatial fallback, with confidence decaying at
//!   each step down the ladder. Schedulers consume the conditioned view
//!   and can compare its confidence against their own floor to decide
//!   when to degrade to a simpler policy.
//!
//! The crate is deliberately dependency-light (no simulator types): the
//! engine hands in plain slices and neighbour lists, which keeps every
//! rule unit-testable without a thermal model.

mod condition;
mod error;
mod inject;
mod plan;

pub use condition::{mesh_neighbors, ConditionerSnapshot, SensorConditioner, TrustedTemps};
pub use error::FaultError;
pub use inject::{FaultInjector, FaultStats, InjectorSnapshot, SensorReading};
pub use plan::FaultPlan;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FaultError>;
