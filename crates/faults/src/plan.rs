use serde::{Deserialize, Serialize};

use crate::{FaultError, Result};

/// A deterministic, serde-visible fault-injection plan.
///
/// All rates are per-draw probabilities in `[0, 1]` and default to zero:
/// `FaultPlan::default()` is *inert* ([`is_inert`](FaultPlan::is_inert)
/// returns `true`) and the engine skips the fault layer entirely, which
/// keeps the no-fault path bit-identical. Durations are measured in
/// simulation intervals; magnitudes carry their unit in the field name.
///
/// The same plan + seed + workload always produces the same fault
/// sequence — the determinism contract behind the pinned golden fault
/// scenario (DESIGN.md §8).
///
/// # Example
///
/// ```
/// use hp_faults::FaultPlan;
///
/// let plan = FaultPlan {
///     sensor_dropout_rate: 0.05,
///     seed: 7,
///     ..FaultPlan::default()
/// };
/// assert!(!plan.is_inert());
/// assert!(plan.validate().is_ok());
/// assert!(FaultPlan::default().is_inert());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed; the whole fault sequence is a pure function of the seed
    /// and the engine's call order.
    pub seed: u64,
    /// Standard deviation of zero-mean Gaussian noise added to every
    /// delivered sensor reading, °C (0 = no noise).
    pub sensor_noise_sigma_celsius: f64,
    /// Per-core, per-interval probability of a sensor entering a
    /// stuck-at-last-value episode.
    pub sensor_stuck_rate: f64,
    /// Length of a stuck episode, in simulation intervals.
    pub sensor_stuck_intervals: u64,
    /// Per-core, per-interval probability that a reading is dropped
    /// entirely (the sensor returns nothing).
    pub sensor_dropout_rate: f64,
    /// Per-requested-migration probability that the move silently does
    /// not take effect.
    pub migration_failure_rate: f64,
    /// After a migration failure, *all* migrations keep failing for this
    /// many intervals (a migration-subsystem blackout).
    pub migration_blackout_intervals: u64,
    /// Per-interval probability that a transient power spike starts on a
    /// uniformly chosen core (at most one spike active at a time).
    pub power_spike_rate: f64,
    /// Extra power drawn by a spiking core, W.
    pub power_spike_watts: f64,
    /// Length of one power spike, in simulation intervals.
    pub power_spike_intervals: u64,
    /// Keep the fault layer engaged even when every rate is zero. Only
    /// used by the differential tests that pin down the contract "zero
    /// rates through the fault layer is bit-identical to no fault layer".
    pub force_active: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            sensor_noise_sigma_celsius: 0.0,
            sensor_stuck_rate: 0.0,
            sensor_stuck_intervals: 50,
            sensor_dropout_rate: 0.0,
            migration_failure_rate: 0.0,
            migration_blackout_intervals: 10,
            power_spike_rate: 0.0,
            power_spike_watts: 0.0,
            power_spike_intervals: 10,
            force_active: false,
        }
    }
}

impl FaultPlan {
    /// `true` when the plan can never produce a fault, in which case the
    /// engine bypasses the fault layer entirely (bit-identical runs).
    pub fn is_inert(&self) -> bool {
        !self.force_active
            && self.sensor_noise_sigma_celsius == 0.0
            && self.sensor_stuck_rate == 0.0
            && self.sensor_dropout_rate == 0.0
            && self.migration_failure_rate == 0.0
            && self.power_spike_rate == 0.0
    }

    /// Validates every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParameter`] naming the first
    /// offender: rates outside `[0, 1]`, non-finite or negative
    /// magnitudes, or a zero duration paired with a non-zero rate.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("sensor_stuck_rate", self.sensor_stuck_rate),
            ("sensor_dropout_rate", self.sensor_dropout_rate),
            ("migration_failure_rate", self.migration_failure_rate),
            ("power_spike_rate", self.power_spike_rate),
        ] {
            if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                return Err(FaultError::InvalidParameter { name, value });
            }
        }
        for (name, value) in [
            (
                "sensor_noise_sigma_celsius",
                self.sensor_noise_sigma_celsius,
            ),
            ("power_spike_watts", self.power_spike_watts),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(FaultError::InvalidParameter { name, value });
            }
        }
        if self.sensor_stuck_rate > 0.0 && self.sensor_stuck_intervals == 0 {
            return Err(FaultError::InvalidParameter {
                name: "sensor_stuck_intervals",
                value: 0.0,
            });
        }
        if self.power_spike_rate > 0.0 && self.power_spike_intervals == 0 {
            return Err(FaultError::InvalidParameter {
                name: "power_spike_intervals",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// Parses a plan from a flat JSON object, e.g.
    /// `{"seed": 42, "sensor_dropout_rate": 0.05}`.
    ///
    /// Absent fields keep their [`Default`] value; unknown fields are an
    /// error (they are almost certainly typos that would otherwise turn a
    /// chaos experiment into a silent no-op). The workspace deliberately
    /// carries no JSON backend, so this is a minimal hand parser for the
    /// one flat shape a plan can take.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Parse`] on malformed JSON or unknown keys,
    /// and [`FaultError::InvalidParameter`] when the parsed plan fails
    /// [`validate`](FaultPlan::validate).
    pub fn from_json_str(json: &str) -> Result<Self> {
        let mut plan = FaultPlan::default();
        let body = json.trim();
        let body = body
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or_else(|| FaultError::Parse {
                message: "expected a top-level JSON object".into(),
            })?;
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (raw_key, raw_value) = part.split_once(':').ok_or_else(|| FaultError::Parse {
                message: format!("expected `\"key\": value`, got `{part}`"),
            })?;
            let key = raw_key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| FaultError::Parse {
                    message: format!("key `{}` must be double-quoted", raw_key.trim()),
                })?;
            let value = raw_value.trim();
            plan.set_field(key, value)?;
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Renders the plan as the flat JSON object
    /// [`from_json_str`](FaultPlan::from_json_str) accepts.
    pub fn to_json_string(&self) -> String {
        format!(
            "{{\n  \"seed\": {},\n  \"sensor_noise_sigma_celsius\": {},\n  \
             \"sensor_stuck_rate\": {},\n  \"sensor_stuck_intervals\": {},\n  \
             \"sensor_dropout_rate\": {},\n  \"migration_failure_rate\": {},\n  \
             \"migration_blackout_intervals\": {},\n  \"power_spike_rate\": {},\n  \
             \"power_spike_watts\": {},\n  \"power_spike_intervals\": {},\n  \
             \"force_active\": {}\n}}\n",
            self.seed,
            self.sensor_noise_sigma_celsius,
            self.sensor_stuck_rate,
            self.sensor_stuck_intervals,
            self.sensor_dropout_rate,
            self.migration_failure_rate,
            self.migration_blackout_intervals,
            self.power_spike_rate,
            self.power_spike_watts,
            self.power_spike_intervals,
            self.force_active,
        )
    }

    fn set_field(&mut self, key: &str, value: &str) -> Result<()> {
        fn num(key: &str, value: &str) -> Result<f64> {
            value.parse().map_err(|_| FaultError::Parse {
                message: format!("field `{key}`: `{value}` is not a number"),
            })
        }
        fn int(key: &str, value: &str) -> Result<u64> {
            value.parse().map_err(|_| FaultError::Parse {
                message: format!("field `{key}`: `{value}` is not a non-negative integer"),
            })
        }
        match key {
            "seed" => self.seed = int(key, value)?,
            "sensor_noise_sigma_celsius" => self.sensor_noise_sigma_celsius = num(key, value)?,
            "sensor_stuck_rate" => self.sensor_stuck_rate = num(key, value)?,
            "sensor_stuck_intervals" => self.sensor_stuck_intervals = int(key, value)?,
            "sensor_dropout_rate" => self.sensor_dropout_rate = num(key, value)?,
            "migration_failure_rate" => self.migration_failure_rate = num(key, value)?,
            "migration_blackout_intervals" => {
                self.migration_blackout_intervals = int(key, value)?;
            }
            "power_spike_rate" => self.power_spike_rate = num(key, value)?,
            "power_spike_watts" => self.power_spike_watts = num(key, value)?,
            "power_spike_intervals" => self.power_spike_intervals = int(key, value)?,
            "force_active" => {
                self.force_active = match value {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(FaultError::Parse {
                            message: format!("field `force_active`: `{other}` is not a bool"),
                        })
                    }
                }
            }
            other => {
                return Err(FaultError::Parse {
                    message: format!("unknown fault-plan field `{other}`"),
                })
            }
        }
        Ok(())
    }
}

/// Splits on commas, ignoring commas inside strings (keys are the only
/// strings a flat numeric plan contains, but stay robust anyway).
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_inert());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn force_active_defeats_inertness() {
        let plan = FaultPlan {
            force_active: true,
            ..FaultPlan::default()
        };
        assert!(!plan.is_inert());
    }

    #[test]
    fn any_nonzero_rate_defeats_inertness() {
        for plan in [
            FaultPlan {
                sensor_noise_sigma_celsius: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                sensor_stuck_rate: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                sensor_dropout_rate: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                migration_failure_rate: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                power_spike_rate: 0.1,
                ..FaultPlan::default()
            },
        ] {
            assert!(!plan.is_inert(), "{plan:?}");
        }
    }

    #[test]
    fn validation_rejects_bad_rates_and_durations() {
        let bad = FaultPlan {
            sensor_dropout_rate: 1.5,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            sensor_noise_sigma_celsius: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            sensor_stuck_rate: 0.1,
            sensor_stuck_intervals: 0,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            power_spike_rate: 0.1,
            power_spike_intervals: 0,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            migration_failure_rate: -0.1,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let plan = FaultPlan {
            seed: 42,
            sensor_noise_sigma_celsius: 0.25,
            sensor_stuck_rate: 0.01,
            sensor_stuck_intervals: 30,
            sensor_dropout_rate: 0.05,
            migration_failure_rate: 0.1,
            migration_blackout_intervals: 20,
            power_spike_rate: 0.02,
            power_spike_watts: 4.0,
            power_spike_intervals: 15,
            force_active: false,
        };
        let json = plan.to_json_string();
        let back = FaultPlan::from_json_str(&json).expect("roundtrip parses");
        assert_eq!(plan, back);
    }

    #[test]
    fn json_partial_object_keeps_defaults() {
        let plan = FaultPlan::from_json_str(r#"{"seed": 7, "sensor_dropout_rate": 0.5}"#)
            .expect("partial plan parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.sensor_dropout_rate, 0.5);
        assert_eq!(
            plan.sensor_stuck_intervals,
            FaultPlan::default().sensor_stuck_intervals
        );
    }

    #[test]
    fn json_rejects_unknown_and_malformed() {
        assert!(FaultPlan::from_json_str("not json").is_err());
        assert!(FaultPlan::from_json_str(r#"{"sensor_dropout": 0.5}"#).is_err());
        assert!(FaultPlan::from_json_str(r#"{"seed": "high"}"#).is_err());
        assert!(FaultPlan::from_json_str(r#"{"force_active": 1}"#).is_err());
        assert!(FaultPlan::from_json_str(r#"{"sensor_dropout_rate": 2.0}"#).is_err());
        assert!(FaultPlan::from_json_str(r#"{seed: 3}"#).is_err());
    }

    #[test]
    fn json_empty_object_is_default() {
        let plan = FaultPlan::from_json_str("{}").expect("empty object parses");
        assert_eq!(plan, FaultPlan::default());
    }
}
