use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::{FaultError, FaultPlan, Result};

/// One delivered sensor sample: `Some(reading)` (possibly noisy or
/// stuck) or `None` when the sensor dropped out this interval.
pub type SensorReading = Option<f64>;

/// Running counters for every fault the injector has produced.
///
/// The engine folds these into `Metrics` so a chaos run reports exactly
/// how much abuse it absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FaultStats {
    /// Readings perturbed by Gaussian noise.
    pub noisy_readings: u64,
    /// Stuck-at-last-value episodes started.
    pub stuck_episodes: u64,
    /// Readings served from a stuck sensor.
    pub stuck_readings: u64,
    /// Readings dropped entirely.
    pub dropouts: u64,
    /// Requested migrations that silently failed.
    pub migration_failures: u64,
    /// Migration-subsystem blackout windows opened.
    pub migration_blackouts: u64,
    /// Transient power spikes started.
    pub power_spikes: u64,
}

/// A serializable capture of a [`FaultInjector`]'s mutable runtime
/// state — RNG cursor, stuck/blackout/spike windows and the accumulated
/// [`FaultStats`] — sufficient to resume the fault stream exactly where
/// it stopped ([`FaultInjector::restore`]). The plan itself is *not*
/// part of the snapshot: the restoring caller must hold the same plan,
/// which checkpoint formats bind via their spec hash.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectorSnapshot {
    /// Raw xoshiro256++ state of the fault RNG.
    pub rng_state: [u64; 4],
    /// Per-core stuck-episode end intervals.
    pub stuck_until: Vec<u64>,
    /// Per-core captured stuck values, °C.
    pub stuck_value_celsius: Vec<f64>,
    /// Migration-blackout end interval.
    pub blackout_until: u64,
    /// Core carrying the active power spike.
    pub spike_core: usize,
    /// Power-spike end interval.
    pub spike_until: u64,
    /// Current interval index.
    pub interval: u64,
    /// Counters accumulated so far.
    pub stats: FaultStats,
}

/// Draws the faults described by a [`FaultPlan`] from a deterministic
/// RNG.
///
/// The sequence of faults is a pure function of the plan (including its
/// seed) and the order of calls the engine makes, so a fixed workload
/// and schedule replays bit-identically — the property the pinned golden
/// fault fixture locks down.
///
/// Call protocol, once per simulated interval:
/// 1. [`begin_interval`](FaultInjector::begin_interval)
/// 2. [`sense`](FaultInjector::sense) once per core, in core order
/// 3. [`power_spike_watts`](FaultInjector::power_spike_watts) per core
/// 4. [`migration_fails`](FaultInjector::migration_fails) once per
///    requested migration
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    cores: usize,
    /// Interval index; the core's sensor is stuck while `interval < stuck_until`.
    stuck_until: Vec<u64>,
    /// Value a stuck sensor keeps reporting, °C.
    stuck_value_celsius: Vec<f64>,
    /// Migrations fail unconditionally while `interval < blackout_until`.
    blackout_until: u64,
    /// Core carrying the active power spike (meaningful while `interval < spike_until`).
    spike_core: usize,
    spike_until: u64,
    interval: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector for `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParameter`] when the plan fails
    /// [`FaultPlan::validate`] or `cores` is zero.
    pub fn new(plan: &FaultPlan, cores: usize) -> Result<Self> {
        plan.validate()?;
        if cores == 0 {
            return Err(FaultError::InvalidParameter {
                name: "cores",
                value: 0.0,
            });
        }
        Ok(FaultInjector {
            plan: *plan,
            rng: StdRng::seed_from_u64(plan.seed),
            cores,
            stuck_until: vec![0; cores],
            stuck_value_celsius: vec![0.0; cores],
            blackout_until: 0,
            spike_core: 0,
            spike_until: 0,
            interval: 0,
            stats: FaultStats::default(),
        })
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Captures the injector's mutable runtime state for checkpointing.
    pub fn snapshot(&self) -> InjectorSnapshot {
        InjectorSnapshot {
            rng_state: self.rng.state(),
            stuck_until: self.stuck_until.clone(),
            stuck_value_celsius: self.stuck_value_celsius.clone(),
            blackout_until: self.blackout_until,
            spike_core: self.spike_core,
            spike_until: self.spike_until,
            interval: self.interval,
            stats: self.stats,
        }
    }

    /// Restores a previously captured [`InjectorSnapshot`], resuming the
    /// fault stream exactly where the snapshot was taken.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParameter`] when the snapshot's
    /// per-core vectors do not match this injector's core count (a
    /// wrong-run snapshot).
    pub fn restore(&mut self, snap: &InjectorSnapshot) -> Result<()> {
        if snap.stuck_until.len() != self.cores || snap.stuck_value_celsius.len() != self.cores {
            return Err(FaultError::InvalidParameter {
                name: "snapshot cores",
                value: snap.stuck_until.len() as f64,
            });
        }
        self.rng = StdRng::from_state(snap.rng_state);
        self.stuck_until.clone_from(&snap.stuck_until);
        self.stuck_value_celsius
            .clone_from(&snap.stuck_value_celsius);
        self.blackout_until = snap.blackout_until;
        self.spike_core = snap.spike_core;
        self.spike_until = snap.spike_until;
        self.interval = snap.interval;
        self.stats = snap.stats;
        Ok(())
    }

    /// Advances to the next interval and rolls for a new power spike
    /// (at most one spike is active at a time).
    pub fn begin_interval(&mut self) {
        self.interval += 1;
        if self.plan.power_spike_rate > 0.0
            && self.interval >= self.spike_until
            && self.rng.gen_bool(self.plan.power_spike_rate)
        {
            self.spike_core = self.rng.gen_range(0..self.cores);
            self.spike_until = self.interval + self.plan.power_spike_intervals;
            self.stats.power_spikes += 1;
        }
    }

    /// Produces the sensor reading delivered for `core` this interval,
    /// given the physically true temperature.
    ///
    /// Fault precedence: an active stuck episode overrides everything
    /// (the sensor keeps repeating its captured value); otherwise a
    /// dropout roll may suppress the reading; otherwise the true value
    /// (plus optional Gaussian noise) is delivered and may start a new
    /// stuck episode capturing that delivered value.
    pub fn sense(&mut self, core: usize, true_temp_celsius: f64) -> SensorReading {
        if core >= self.cores {
            // Out-of-range cores see an honest sensor; the engine never
            // asks for one, but the library must not panic if it does.
            return Some(true_temp_celsius);
        }
        if self.interval < self.stuck_until.get(core).copied().unwrap_or(0) {
            self.stats.stuck_readings += 1;
            return Some(self.stuck_value_celsius.get(core).copied().unwrap_or(0.0));
        }
        if self.plan.sensor_dropout_rate > 0.0 && self.rng.gen_bool(self.plan.sensor_dropout_rate) {
            self.stats.dropouts += 1;
            return None;
        }
        let mut reading = true_temp_celsius;
        if self.plan.sensor_noise_sigma_celsius > 0.0 {
            reading += self.plan.sensor_noise_sigma_celsius * self.sample_standard_normal();
            self.stats.noisy_readings += 1;
        }
        if self.plan.sensor_stuck_rate > 0.0 && self.rng.gen_bool(self.plan.sensor_stuck_rate) {
            if let (Some(until), Some(value)) = (
                self.stuck_until.get_mut(core),
                self.stuck_value_celsius.get_mut(core),
            ) {
                *until = self.interval + self.plan.sensor_stuck_intervals;
                *value = reading;
                self.stats.stuck_episodes += 1;
            }
        }
        Some(reading)
    }

    /// Extra power drawn by `core` this interval from the active
    /// transient spike, W (zero for every core but the spiking one).
    pub fn power_spike_watts(&self, core: usize) -> f64 {
        if self.interval < self.spike_until && core == self.spike_core {
            self.plan.power_spike_watts
        } else {
            0.0
        }
    }

    /// Rolls whether one requested migration silently fails.
    ///
    /// A failure opens a blackout window during which every further
    /// migration request also fails, modelling a wedged migration
    /// subsystem rather than independent per-request coin flips.
    pub fn migration_fails(&mut self) -> bool {
        if self.interval < self.blackout_until {
            self.stats.migration_failures += 1;
            return true;
        }
        if self.plan.migration_failure_rate > 0.0
            && self.rng.gen_bool(self.plan.migration_failure_rate)
        {
            self.blackout_until = self.interval + self.plan.migration_blackout_intervals;
            self.stats.migration_failures += 1;
            self.stats.migration_blackouts += 1;
            return true;
        }
        false
    }

    /// Standard normal sample via Box–Muller (the vendored RNG only
    /// offers uniform draws).
    fn sample_standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan() -> FaultPlan {
        FaultPlan {
            seed: 11,
            sensor_noise_sigma_celsius: 0.5,
            sensor_stuck_rate: 0.05,
            sensor_stuck_intervals: 4,
            sensor_dropout_rate: 0.1,
            migration_failure_rate: 0.2,
            migration_blackout_intervals: 3,
            power_spike_rate: 0.1,
            power_spike_watts: 2.0,
            power_spike_intervals: 5,
            ..FaultPlan::default()
        }
    }

    fn drive(
        mut inj: FaultInjector,
        intervals: u64,
    ) -> (Vec<SensorReading>, Vec<bool>, FaultStats) {
        let mut readings = Vec::new();
        let mut failures = Vec::new();
        for t in 0..intervals {
            inj.begin_interval();
            for core in 0..4 {
                readings.push(inj.sense(core, 50.0 + (t as f64) + (core as f64)));
            }
            failures.push(inj.migration_fails());
        }
        (readings, failures, *inj.stats())
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let plan = noisy_plan();
        let a = drive(FaultInjector::new(&plan, 4).expect("valid plan"), 200);
        let b = drive(FaultInjector::new(&plan, 4).expect("valid plan"), 200);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let plan = noisy_plan();
        let other = FaultPlan { seed: 12, ..plan };
        let a = drive(FaultInjector::new(&plan, 4).expect("valid plan"), 200);
        let b = drive(FaultInjector::new(&other, 4).expect("valid plan"), 200);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn inert_plan_is_a_perfect_sensor() {
        let mut inj = FaultInjector::new(&FaultPlan::default(), 4).expect("valid plan");
        for t in 0..100 {
            inj.begin_interval();
            for core in 0..4 {
                let true_temp = 40.0 + f64::from(t);
                assert_eq!(inj.sense(core, true_temp), Some(true_temp));
                assert_eq!(inj.power_spike_watts(core), 0.0);
            }
            assert!(!inj.migration_fails());
        }
        assert_eq!(*inj.stats(), FaultStats::default());
    }

    #[test]
    fn stuck_sensor_repeats_captured_value() {
        let plan = FaultPlan {
            seed: 1,
            sensor_stuck_rate: 1.0,
            sensor_stuck_intervals: 5,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 1).expect("valid plan");
        inj.begin_interval();
        let captured = inj.sense(0, 55.0).expect("delivered");
        assert_eq!(captured, 55.0);
        for t in 1..5 {
            inj.begin_interval();
            assert_eq!(inj.sense(0, 55.0 + f64::from(t)), Some(captured));
        }
        assert!(inj.stats().stuck_readings >= 4);
    }

    #[test]
    fn certain_dropout_always_drops() {
        let plan = FaultPlan {
            sensor_dropout_rate: 1.0,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 2).expect("valid plan");
        inj.begin_interval();
        assert_eq!(inj.sense(0, 50.0), None);
        assert_eq!(inj.sense(1, 50.0), None);
        assert_eq!(inj.stats().dropouts, 2);
    }

    #[test]
    fn migration_blackout_window_holds() {
        let plan = FaultPlan {
            migration_failure_rate: 1.0,
            migration_blackout_intervals: 3,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 1).expect("valid plan");
        inj.begin_interval();
        assert!(inj.migration_fails());
        assert_eq!(inj.stats().migration_blackouts, 1);
        // Subsequent requests inside the window fail without new rolls.
        inj.begin_interval();
        assert!(inj.migration_fails());
        assert!(inj.migration_fails());
        assert_eq!(inj.stats().migration_blackouts, 1);
    }

    #[test]
    fn power_spike_targets_one_core_then_expires() {
        let plan = FaultPlan {
            seed: 3,
            power_spike_rate: 1.0,
            power_spike_watts: 4.0,
            power_spike_intervals: 2,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 8).expect("valid plan");
        inj.begin_interval();
        let spiking: Vec<usize> = (0..8).filter(|&c| inj.power_spike_watts(c) > 0.0).collect();
        assert_eq!(spiking.len(), 1);
        assert_eq!(inj.power_spike_watts(spiking[0]), 4.0);
        assert_eq!(inj.stats().power_spikes, 1);
    }

    #[test]
    fn snapshot_restore_resumes_fault_stream() {
        let plan = noisy_plan();
        let mut golden = FaultInjector::new(&plan, 4).expect("valid plan");
        let mut live = FaultInjector::new(&plan, 4).expect("valid plan");
        // Advance both in lockstep, then fork `live` through a snapshot.
        for t in 0..50 {
            golden.begin_interval();
            live.begin_interval();
            for core in 0..4 {
                let temp = 50.0 + f64::from(t);
                assert_eq!(golden.sense(core, temp), live.sense(core, temp));
            }
            assert_eq!(golden.migration_fails(), live.migration_fails());
        }
        let snap = live.snapshot();
        let mut resumed = FaultInjector::new(&plan, 4).expect("valid plan");
        resumed.restore(&snap).expect("matching cores");
        assert_eq!(*resumed.stats(), *golden.stats());
        for t in 50..150 {
            golden.begin_interval();
            resumed.begin_interval();
            for core in 0..4 {
                let temp = 50.0 + f64::from(t);
                assert_eq!(golden.sense(core, temp), resumed.sense(core, temp));
            }
            assert_eq!(golden.migration_fails(), resumed.migration_fails());
        }
        assert_eq!(*resumed.stats(), *golden.stats());
    }

    #[test]
    fn restore_rejects_wrong_core_count() {
        let plan = noisy_plan();
        let donor = FaultInjector::new(&plan, 2).expect("valid plan");
        let mut target = FaultInjector::new(&plan, 4).expect("valid plan");
        assert!(target.restore(&donor.snapshot()).is_err());
    }

    #[test]
    fn zero_cores_is_rejected() {
        assert!(FaultInjector::new(&FaultPlan::default(), 0).is_err());
    }

    #[test]
    fn out_of_range_core_reads_honestly() {
        let mut inj = FaultInjector::new(&noisy_plan(), 2).expect("valid plan");
        inj.begin_interval();
        assert_eq!(inj.sense(99, 42.0), Some(42.0));
    }
}
