use std::error::Error;
use std::fmt;

/// Errors produced by the fault-injection layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// A plan parameter was out of range (rates must be probabilities,
    /// magnitudes finite and non-negative, durations non-zero).
    InvalidParameter {
        /// Name of the offending field.
        name: &'static str,
        /// Its value.
        value: f64,
    },
    /// A fault-plan JSON document could not be parsed.
    Parse {
        /// Human-readable description of the first problem found.
        message: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidParameter { name, value } => {
                write!(f, "fault-plan parameter {name} has invalid value {value}")
            }
            FaultError::Parse { message } => write!(f, "fault-plan parse error: {message}"),
        }
    }
}

impl Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let samples = vec![
            FaultError::InvalidParameter {
                name: "sensor_dropout_rate",
                value: 2.0,
            },
            FaultError::Parse {
                message: "unexpected token".into(),
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
