//! Property-based invariants of the fault-injection layer in isolation:
//! arbitrary plans never panic, replay deterministically, and an inert
//! plan is an honest pass-through. The engine-level differential (zero
//! rates bit-identical to the no-fault path) lives in the integration
//! suite; these pin the primitives it builds on.

use hp_faults::{mesh_neighbors, FaultInjector, FaultPlan, SensorConditioner};
use proptest::prelude::*;

fn plans() -> impl Strategy<Value = FaultPlan> {
    (
        (0u64..u64::MAX, 0.0..2.0f64, 0.0..1.0f64, 1u64..100),
        (0.0..1.0f64, 0.0..1.0f64, 0u64..50),
        (0.0..1.0f64, 0.0..10.0f64, 1u64..50),
    )
        .prop_map(
            |(
                (seed, sigma, stuck_rate, stuck_intervals),
                (dropout_rate, mig_rate, blackout),
                (spike_rate, spike_watts, spike_intervals),
            )| FaultPlan {
                seed,
                sensor_noise_sigma_celsius: sigma,
                sensor_stuck_rate: stuck_rate,
                sensor_stuck_intervals: stuck_intervals,
                sensor_dropout_rate: dropout_rate,
                migration_failure_rate: mig_rate,
                migration_blackout_intervals: blackout,
                power_spike_rate: spike_rate,
                power_spike_watts: spike_watts,
                power_spike_intervals: spike_intervals,
                force_active: false,
            },
        )
}

/// Drives injector + conditioner together for `intervals` steps on a
/// 4×4 mesh and returns everything observable.
fn drive(plan: &FaultPlan, intervals: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<bool>) {
    let cores = 16;
    let mut injector = FaultInjector::new(plan, cores).expect("generated plans are valid");
    let mut conditioner = SensorConditioner::new(mesh_neighbors(4, 4), 3, 45.0);
    let mut temps = Vec::new();
    let mut confs = Vec::new();
    let mut migs = Vec::new();
    for t in 0..intervals {
        injector.begin_interval();
        let readings: Vec<_> = (0..cores)
            .map(|c| injector.sense(c, 45.0 + (t as f64) * 0.1 + (c as f64) * 0.5))
            .collect();
        let trusted = conditioner.condition(&readings);
        assert_eq!(trusted.temps_celsius.len(), cores);
        assert_eq!(trusted.confidence.len(), cores);
        temps.push(trusted.temps_celsius);
        confs.push(trusted.confidence);
        migs.push(injector.migration_fails());
    }
    (temps, confs, migs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated plan validates, runs without panicking, and keeps
    /// every confidence inside [0, 1] with finite conditioned temps.
    #[test]
    fn arbitrary_plans_run_and_stay_bounded(plan in plans()) {
        prop_assert!(plan.validate().is_ok());
        let (temps, confs, _) = drive(&plan, 150);
        for row in &confs {
            for &c in row {
                prop_assert!((0.0..=1.0).contains(&c), "confidence {c} out of range");
            }
        }
        for row in &temps {
            for &t in row {
                prop_assert!(t.is_finite(), "non-finite conditioned temp {t}");
            }
        }
    }

    /// The same plan replays bit-identically: faults are a pure function
    /// of (plan, call order).
    #[test]
    fn replay_is_bit_identical(plan in plans()) {
        prop_assert_eq!(drive(&plan, 120), drive(&plan, 120));
    }

    /// With every rate zeroed the layer is an honest pass-through: the
    /// conditioned view equals the true temperatures at full confidence
    /// and no migration ever fails, regardless of seed.
    #[test]
    fn zero_rates_are_transparent(seed in 0u64..u64::MAX) {
        let plan = FaultPlan { seed, force_active: true, ..FaultPlan::default() };
        prop_assert!(plan.validate().is_ok());
        prop_assert!(!plan.is_inert());
        let cores = 16;
        let mut injector = FaultInjector::new(&plan, cores).expect("valid plan");
        let mut conditioner = SensorConditioner::new(mesh_neighbors(4, 4), 3, 45.0);
        for t in 0..100 {
            injector.begin_interval();
            let truth: Vec<f64> = (0..cores)
                .map(|c| 45.0 + f64::from(t) * 0.1 + (c as f64) * 0.5)
                .collect();
            let readings: Vec<_> = (0..cores).map(|c| injector.sense(c, truth[c])).collect();
            let trusted = conditioner.condition(&readings);
            prop_assert_eq!(&trusted.temps_celsius, &truth);
            prop_assert!(trusted.confidence.iter().all(|&c| c == 1.0));
            prop_assert!(!injector.migration_fails());
            for c in 0..cores {
                prop_assert_eq!(injector.power_spike_watts(c), 0.0);
            }
        }
    }

    /// JSON round-trips preserve every field of an arbitrary plan.
    #[test]
    fn json_roundtrip_preserves_plan(plan in plans()) {
        let back = FaultPlan::from_json_str(&plan.to_json_string());
        prop_assert_eq!(back, Ok(plan));
    }
}
