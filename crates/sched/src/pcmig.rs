use hp_floorplan::CoreId;
use hp_sim::{Action, Scheduler, SimView};
use hp_thermal::RcThermalModel;

use crate::budget::{assign_levels_for_budget, assign_levels_per_core, BudgetCache};
use crate::tsp_uniform::TspUniform;

/// Configuration of the [`PcMig`] baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcMigConfig {
    /// DTM threshold, °C.
    pub t_dtm: f64,
    /// Idle-core power, W.
    pub idle_power: f64,
    /// Prediction horizon for the linear temperature extrapolation, s.
    pub predict_horizon: f64,
    /// Safety margin below the threshold that triggers a migration, °C.
    pub migration_margin: f64,
    /// Minimum time between two migrations of the same thread, s
    /// (on-demand migrations are a measure of last resort, not a rotation).
    pub migration_cooldown: f64,
}

impl Default for PcMigConfig {
    fn default() -> Self {
        PcMigConfig {
            t_dtm: 70.0,
            idle_power: 0.3,
            predict_horizon: 5e-3,
            migration_margin: 1.0,
            migration_cooldown: 10e-3,
        }
    }
}

/// The PCGov scheduler \[6\], \[20\]: cache-aware lowest-AMD-first placement
/// with Pareto-optimal per-core DVFS budgets (water-filling TSP). No
/// migrations.
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
/// use hp_sched::PcGov;
/// use hp_thermal::{RcThermalModel, ThermalConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = RcThermalModel::new(&GridFloorplan::new(4, 4)?, &ThermalConfig::default())?;
/// let _sched = PcGov::new(model, 70.0, 0.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PcGov {
    model: RcThermalModel,
    t_dtm: f64,
    idle_power: f64,
    preferred: Option<Vec<CoreId>>,
    cache: BudgetCache,
}

impl PcGov {
    /// Creates the scheduler.
    pub fn new(model: RcThermalModel, t_dtm: f64, idle_power: f64) -> Self {
        PcGov {
            model,
            t_dtm,
            idle_power,
            preferred: None,
            cache: BudgetCache::default(),
        }
    }
}

impl Scheduler for PcGov {
    fn name(&self) -> &str {
        "pcgov"
    }

    fn schedule(&mut self, view: &SimView<'_>) -> Vec<Action> {
        let mut actions = TspUniform::place_pending(view, &mut self.preferred);
        actions.extend(assign_levels_per_core(
            view,
            &self.model,
            self.t_dtm,
            self.idle_power,
            &mut self.cache,
        ));
        actions
    }
}

/// The PCMig scheduler \[10\], \[21\] — the paper's state-of-the-art baseline:
/// PCGov's DVFS budgeting plus **asynchronous on-demand thread
/// migrations**.
///
/// Every period each core's temperature trend is extrapolated
/// `predict_horizon` seconds ahead; a thread whose core is predicted to
/// cross `t_dtm − migration_margin` is migrated to the coolest free core
/// (if any), with a per-thread cooldown so migration remains the last
/// resort it is in the original. The original's neural-network
/// temperature predictor is replaced by this linear extrapolation
/// (DESIGN.md §2).
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
/// use hp_sched::{PcMig, PcMigConfig};
/// use hp_thermal::{RcThermalModel, ThermalConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = RcThermalModel::new(&GridFloorplan::new(4, 4)?, &ThermalConfig::default())?;
/// let _sched = PcMig::new(model, PcMigConfig::default());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PcMig {
    model: RcThermalModel,
    config: PcMigConfig,
    preferred: Option<Vec<CoreId>>,
    /// Last observed core temperatures and their timestamp.
    last_temps: Option<(f64, Vec<f64>)>,
    /// Per-thread time of last migration.
    last_migration: std::collections::BTreeMap<hp_sim::ThreadId, f64>,
    migrations_issued: u64,
}

impl PcMig {
    /// Creates the scheduler.
    pub fn new(model: RcThermalModel, config: PcMigConfig) -> Self {
        PcMig {
            model,
            config,
            preferred: None,
            last_temps: None,
            last_migration: std::collections::BTreeMap::new(),
            migrations_issued: 0,
        }
    }

    /// Pins the first job exactly on `cores`.
    pub fn with_preferred_cores(mut self, cores: Vec<CoreId>) -> Self {
        self.preferred = Some(cores);
        self
    }

    /// Total on-demand migrations issued so far.
    pub fn migrations_issued(&self) -> u64 {
        self.migrations_issued
    }
}

impl Scheduler for PcMig {
    fn name(&self) -> &str {
        "pcmig"
    }

    fn schedule(&mut self, view: &SimView<'_>) -> Vec<Action> {
        let mut actions = TspUniform::place_pending(view, &mut self.preferred);

        // Linear temperature prediction per core.
        let n = view.machine.core_count();
        let now = view.time;
        let current: Vec<f64> = (0..n).map(|c| view.core_temps[c]).collect();
        let predicted: Vec<f64> = match &self.last_temps {
            Some((t0, prev)) if now > *t0 => {
                let dt = now - t0;
                (0..n)
                    .map(|c| {
                        let slope = (current[c] - prev[c]) / dt;
                        current[c] + slope * self.config.predict_horizon
                    })
                    .collect()
            }
            _ => current.clone(),
        };
        self.last_temps = Some((now, current));

        // On-demand migrations: hottest predicted core first.
        let trigger = self.config.t_dtm - self.config.migration_margin;
        let mut hot_threads: Vec<(f64, hp_sim::ThreadId, CoreId)> = view
            .threads
            .iter()
            .filter(|t| predicted[t.core.index()] > trigger)
            .filter(|t| {
                self.last_migration
                    .get(&t.id)
                    .is_none_or(|&last| now - last >= self.config.migration_cooldown)
            })
            .map(|t| (predicted[t.core.index()], t.id, t.core))
            .collect();
        hot_threads.sort_by(|a, b| b.0.total_cmp(&a.0));

        let mut free = view.free_cores();
        // Cores claimed by placements in this very call are not free.
        for a in &actions {
            if let Action::PlaceJob { cores, .. } = a {
                free.retain(|c| !cores.contains(c));
            }
        }
        // Coolest (predicted) free cores first.
        free.sort_by(|a, b| predicted[a.index()].total_cmp(&predicted[b.index()]));
        for (_, tid, from) in hot_threads {
            let Some(pos) = free
                .iter()
                .position(|c| predicted[c.index()] < predicted[from.index()] - 2.0)
            else {
                continue;
            };
            let to = free.remove(pos);
            actions.push(Action::Migrate { thread: tid, to });
            self.last_migration.insert(tid, now);
            self.migrations_issued += 1;
            // The vacated core is now free (and hot).
            free.push(from);
        }

        // TSP budgeting for the (possibly updated) mapping. Note the
        // budget is computed against current cores; next period corrects
        // for the migrations.
        actions.extend(assign_levels_for_budget(
            view,
            &self.model,
            self.config.t_dtm,
            self.config.idle_power,
        ));
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_manycore::{ArchConfig, Machine};
    use hp_sim::{SimConfig, Simulation};
    use hp_thermal::ThermalConfig;
    use hp_workload::{closed_batch, Benchmark, Job, JobId};

    fn setup() -> (Simulation, RcThermalModel) {
        let machine = Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .unwrap();
        let model = RcThermalModel::new(
            &GridFloorplan::new(4, 4).unwrap(),
            &ThermalConfig::default(),
        )
        .unwrap();
        let sim = Simulation::new(machine, ThermalConfig::default(), SimConfig::default()).unwrap();
        (sim, model)
    }

    #[test]
    fn pcgov_completes_safely() {
        let (mut sim, model) = setup();
        let mut sched = PcGov::new(model, 70.0, 0.3);
        let jobs = vec![Job {
            id: JobId(0),
            benchmark: Benchmark::Swaptions,
            spec: Benchmark::Swaptions.spec(4),
            arrival: 0.0,
        }];
        let m = sim.run(jobs, &mut sched).unwrap();
        assert_eq!(m.completed_jobs(), 1);
        assert!(m.peak_temperature <= 70.2, "peak {:.2}", m.peak_temperature);
    }

    #[test]
    fn pcmig_migrates_on_demand() {
        let (mut sim, model) = setup();
        let mut sched = PcMig::new(model, PcMigConfig::default());
        // A batch load leaves free cores to migrate to.
        let jobs = closed_batch(Benchmark::Blackscholes, 8, 3);
        let m = sim.run(jobs, &mut sched).unwrap();
        assert_eq!(m.completed_jobs(), m.jobs.len());
        assert!(m.peak_temperature <= 70.5, "peak {:.2}", m.peak_temperature);
    }

    #[test]
    fn pcmig_migration_count_is_bounded() {
        // Asynchronous on-demand migration is a last resort: the cooldown
        // keeps the count far below a synchronous rotation's.
        let (mut sim, model) = setup();
        let mut sched = PcMig::new(model, PcMigConfig::default());
        let jobs = vec![Job {
            id: JobId(0),
            benchmark: Benchmark::Blackscholes,
            spec: Benchmark::Blackscholes.spec(2),
            arrival: 0.0,
        }];
        let m = sim.run(jobs, &mut sched).unwrap();
        assert_eq!(m.completed_jobs(), 1);
        // ~55 ms run, 10 ms cooldown, 2 threads => at most ~12 migrations.
        assert!(m.migrations <= 14, "{} migrations", m.migrations);
    }
}
