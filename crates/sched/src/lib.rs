//! Baseline thermal-aware schedulers for S-NUCA many-cores.
//!
//! These are the policies HotPotato is evaluated against (paper §II, §VI):
//!
//! * [`TspUniform`] — pure TSP power budgeting \[14\]: every scheduling
//!   period the uniform per-core budget for the current active mapping is
//!   computed from the RC model, and each active core is throttled to the
//!   fastest DVFS level whose power fits the budget. No migrations. This
//!   is the DVFS trace of Fig. 2(b).
//! * [`PcGov`] — the PCGov scheduler \[6\], \[20\]: TSP-based budgeting plus
//!   cache-aware (lowest-AMD-first) placement.
//! * [`PcMig`] — the paper's state-of-the-art baseline \[10\], \[21\]: PCGov
//!   plus *asynchronous on-demand* thread migrations driven by a
//!   temperature predictor. The original uses a neural network to predict
//!   post-migration temperatures; we substitute a linear extrapolation of
//!   each core's recent temperature trend (see DESIGN.md §2).
//! * [`HotPotatoDvfs`] — **extension** implementing the paper's §VII
//!   future work: synchronous rotation unified with DVFS.
//!
//! All three implement [`hp_sim::Scheduler`].
//!
//! # Example
//!
//! ```
//! use hp_floorplan::GridFloorplan;
//! use hp_sched::TspUniform;
//! use hp_thermal::{RcThermalModel, ThermalConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = RcThermalModel::new(&GridFloorplan::new(4, 4)?, &ThermalConfig::default())?;
//! let sched = TspUniform::new(model, 70.0, 0.3);
//! # let _ = sched;
//! # Ok(())
//! # }
//! ```

mod budget;
mod fallback;
mod hybrid;
mod pcmig;
mod tsp_uniform;

pub use budget::assign_levels_for_budget;
pub use fallback::{FallbackChain, FallbackConfig};
pub use hybrid::HotPotatoDvfs;
pub use pcmig::{PcGov, PcMig, PcMigConfig};
pub use tsp_uniform::TspUniform;
