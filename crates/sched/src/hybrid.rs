//! **Extension (paper §VII future work):** unifying synchronous thread
//! rotation with DVFS.
//!
//! Pure HotPotato refuses to touch frequency: when even the fastest
//! rotation cannot keep `T_peak < T_DTM` (a fully loaded chip of
//! compute-bound threads), it runs at 4 GHz and lets the hardware DTM
//! duty-cycle the chip — wasteful, because DTM crashes to the minimum
//! frequency. [`HotPotatoDvfs`] adds the knob the paper plans as future
//! work: when the rotation analytics report an unsustainable schedule,
//! the chip is throttled to the *highest* frequency whose power the
//! rotation CAN sustain — a much gentler cut than both DTM and PCMig's
//! worst-case TSP budget; when the rotation becomes sustainable again,
//! frequency returns to peak.

use hotpotato::{HotPotato, HotPotatoConfig};
use hp_power::DvfsLevel;
use hp_sim::{Action, Scheduler, SimView};
use hp_thermal::RcThermalModel;

/// HotPotato + DVFS hybrid: rotation first, frequency as the overflow
/// valve.
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
/// use hp_sched::HotPotatoDvfs;
/// use hp_thermal::{RcThermalModel, ThermalConfig};
/// use hotpotato::HotPotatoConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = RcThermalModel::new(&GridFloorplan::new(4, 4)?, &ThermalConfig::default())?;
/// let _sched = HotPotatoDvfs::new(model, HotPotatoConfig::default())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HotPotatoDvfs {
    inner: HotPotato,
    t_dtm: f64,
    /// Current chip-wide throttle level (None = peak everywhere).
    throttle: Option<DvfsLevel>,
}

impl HotPotatoDvfs {
    /// Creates the hybrid scheduler; `model` must match the simulated
    /// machine.
    ///
    /// # Errors
    ///
    /// Propagates HotPotato construction failures.
    pub fn new(model: RcThermalModel, config: HotPotatoConfig) -> hotpotato::Result<Self> {
        let t_dtm = config.t_dtm;
        Ok(HotPotatoDvfs {
            inner: HotPotato::new(model, config)?,
            t_dtm,
            throttle: None,
        })
    }

    /// Creates the hybrid scheduler around a prebuilt rotation-peak
    /// solver (shared cache handle — see [`HotPotato::with_solver`]).
    ///
    /// # Errors
    ///
    /// Propagates HotPotato configuration failures.
    pub fn with_solver(
        solver: hotpotato::RotationPeakSolver,
        config: HotPotatoConfig,
    ) -> hotpotato::Result<Self> {
        let t_dtm = config.t_dtm;
        Ok(HotPotatoDvfs {
            inner: HotPotato::with_solver(solver, config)?,
            t_dtm,
            throttle: None,
        })
    }

    /// The currently applied chip-wide throttle, if any.
    pub fn throttle(&self) -> Option<DvfsLevel> {
        self.throttle
    }

    /// Access to the wrapped rotation scheduler.
    pub fn rotation(&self) -> &HotPotato {
        &self.inner
    }
}

impl Scheduler for HotPotatoDvfs {
    fn name(&self) -> &str {
        "hotpotato-dvfs"
    }

    fn schedule(&mut self, view: &SimView<'_>) -> Vec<Action> {
        let mut actions = self.inner.schedule(view);
        let ladder = &view.machine.config().dvfs;

        // The inner scheduler has already exhausted its knobs (eviction,
        // rotation acceleration). The valve reacts to *measured*
        // temperature — the d→∞ rotation estimate is deliberately
        // conservative (it assumes a fully warmed heat sink), and acting
        // on it would over-throttle short runs the way a worst-case TSP
        // budget does. A one-step-per-period bang-bang controller with a
        // hysteresis band just below the DTM trip point keeps the chip at
        // the highest sustainable frequency.
        let measured = view.core_temps.max();
        let margin = 0.5;

        let next = if measured > self.t_dtm - margin {
            // About to trip DTM: throttle one step further. Power drops
            // superlinearly in frequency, so a few 100 MHz steps suffice.
            Some(match self.throttle {
                Some(level) => ladder.step_down(level),
                None => ladder.step_down(ladder.max_level()),
            })
        } else if measured < self.t_dtm - 3.0 * margin {
            // Comfortable again: release one step towards peak.
            match self.throttle {
                Some(level) if ladder.step_up(level) == ladder.max_level() => None,
                Some(level) => Some(ladder.step_up(level)),
                None => None,
            }
        } else {
            self.throttle // hold
        };

        if next != self.throttle {
            self.throttle = next;
            actions.push(Action::SetAllLevels {
                level: next.unwrap_or(ladder.max_level()),
            });
        }
        actions
    }

    fn observability(&self) -> Option<hp_obs::RunReport> {
        // Forward the wrapped rotation scheduler's report; the valve
        // itself only contributes its current throttle state.
        let mut report = self.inner.observability().unwrap_or_default();
        report.push_counter("dvfs.throttled", u64::from(self.throttle.is_some()));
        Some(report)
    }

    // The valve's only state is the chip-wide throttle level; the wrapped
    // rotation scheduler's snapshot rides along as an escaped string.
    fn snapshot(&self) -> Option<String> {
        let inner = self.inner.snapshot()?;
        let throttle = match self.throttle {
            None => "null".to_string(),
            Some(level) => level.index().to_string(),
        };
        Some(format!(
            "{{\"throttle\":{throttle},\"inner\":\"{}\"}}",
            hp_obs::json::escape(&inner)
        ))
    }

    fn restore(&mut self, state: &str) -> std::result::Result<(), String> {
        use hp_obs::json::Json;
        let doc =
            hp_obs::json::parse(state).map_err(|e| format!("hotpotato-dvfs snapshot: {e}"))?;
        self.throttle = match doc
            .get("throttle")
            .ok_or("hotpotato-dvfs snapshot: missing `throttle`")?
        {
            Json::Null => None,
            v => Some(DvfsLevel(
                v.as_u64()
                    .ok_or("hotpotato-dvfs snapshot: bad `throttle`")? as usize,
            )),
        };
        let inner = doc
            .get("inner")
            .and_then(Json::as_str)
            .ok_or("hotpotato-dvfs snapshot: missing `inner`")?;
        self.inner.restore(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_manycore::{ArchConfig, Machine};
    use hp_sim::{SimConfig, Simulation};
    use hp_thermal::ThermalConfig;
    use hp_workload::{closed_batch, Benchmark};

    fn setup() -> (Simulation, RcThermalModel) {
        let machine = Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .expect("valid config");
        let model = RcThermalModel::new(
            &GridFloorplan::new(4, 4).expect("grid"),
            &ThermalConfig::default(),
        )
        .expect("valid thermal config");
        let sim = Simulation::new(
            machine,
            ThermalConfig::default(),
            SimConfig {
                horizon: 120.0,
                ..SimConfig::default()
            },
        )
        .expect("valid sim config");
        (sim, model)
    }

    #[test]
    fn hybrid_completes_oversubscribed_hot_load() {
        // A full chip of swaptions is unsustainable for pure rotation;
        // the hybrid must finish it with almost no DTM interference.
        let (mut sim, model) = setup();
        let mut s = HotPotatoDvfs::new(model, HotPotatoConfig::default()).expect("valid");
        let jobs = closed_batch(Benchmark::Swaptions, 16, 1);
        let m = sim.run(jobs, &mut s).expect("completes");
        assert_eq!(m.completed_jobs(), m.jobs.len());
        // The DTM watchdog holds each engagement until the peak falls a
        // full hysteresis band below t_dtm, so a trip now costs several
        // intervals; "rare" means a handful of engagements, not a
        // per-interval duty cycle (which would be thousands).
        assert!(
            m.dtm_intervals < 60,
            "DVFS valve keeps DTM rare ({} intervals)",
            m.dtm_intervals
        );
        assert!(
            m.robustness.watchdog_activations > 0
                && m.robustness.watchdog_activations <= m.dtm_intervals,
            "engagement edges are counted ({} trips over {} intervals)",
            m.robustness.watchdog_activations,
            m.dtm_intervals
        );
        assert!(m.peak_temperature <= 71.0, "peak {:.1}", m.peak_temperature);
    }

    #[test]
    fn hybrid_beats_pure_rotation_on_saturated_load() {
        let jobs = closed_batch(Benchmark::Swaptions, 16, 1);

        let (mut sim, model) = setup();
        let mut hybrid = HotPotatoDvfs::new(model, HotPotatoConfig::default()).expect("valid");
        let hybrid_m = sim.run(jobs.clone(), &mut hybrid).expect("completes");

        let (mut sim, model) = setup();
        let mut pure = hotpotato::HotPotato::new(model, HotPotatoConfig::default()).expect("valid");
        let pure_m = sim.run(jobs, &mut pure).expect("completes");

        assert!(
            hybrid_m.makespan <= pure_m.makespan * 1.02,
            "hybrid {:.1} ms vs pure {:.1} ms",
            hybrid_m.makespan * 1e3,
            pure_m.makespan * 1e3
        );
        // And it does so with far fewer hardware interventions.
        assert!(hybrid_m.dtm_intervals <= pure_m.dtm_intervals);
    }

    #[test]
    fn hybrid_keeps_peak_frequency_on_cool_load() {
        let (mut sim, model) = setup();
        let mut s = HotPotatoDvfs::new(model, HotPotatoConfig::default()).expect("valid");
        let jobs = closed_batch(Benchmark::Canneal, 8, 2);
        let m = sim.run(jobs, &mut s).expect("completes");
        assert_eq!(m.completed_jobs(), m.jobs.len());
        assert_eq!(s.throttle(), None, "no throttle for a cool workload");
    }
}
