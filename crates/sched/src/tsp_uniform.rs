use hp_floorplan::CoreId;
use hp_sim::{Action, Scheduler, SimView};
use hp_thermal::RcThermalModel;

use crate::budget::assign_levels_for_budget;

/// Pure TSP power budgeting (paper \[14\]) — the DVFS-only baseline of
/// Fig. 2(b).
///
/// Jobs are placed on the lowest-AMD free cores; every scheduling period
/// the TSP budget for the executing mapping is recomputed and each busy
/// core is throttled to the fastest level that fits. Threads never
/// migrate.
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
/// use hp_sched::TspUniform;
/// use hp_thermal::{RcThermalModel, ThermalConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = RcThermalModel::new(&GridFloorplan::new(4, 4)?, &ThermalConfig::default())?;
/// let _sched = TspUniform::new(model, 70.0, 0.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TspUniform {
    model: RcThermalModel,
    t_dtm: f64,
    idle_power: f64,
    /// Optional fixed placement for the first job (Fig. 2 pinning).
    preferred: Option<Vec<CoreId>>,
}

impl TspUniform {
    /// Creates the scheduler for a chip with thermal model `model`,
    /// DTM threshold `t_dtm` (°C) and per-core idle power (W).
    pub fn new(model: RcThermalModel, t_dtm: f64, idle_power: f64) -> Self {
        TspUniform {
            model,
            t_dtm,
            idle_power,
            preferred: None,
        }
    }

    /// Pins the first job exactly on `cores` (the Fig. 2 setup).
    pub fn with_preferred_cores(mut self, cores: Vec<CoreId>) -> Self {
        self.preferred = Some(cores);
        self
    }

    pub(crate) fn place_pending(
        view: &SimView<'_>,
        preferred: &mut Option<Vec<CoreId>>,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut free = view.free_cores();
        // Out-of-range cores (impossible for a free-core list) sort last
        // via the +inf sentinel instead of aborting the run.
        free.sort_by(|&a, &b| {
            let fa = view.machine.floorplan().amd(a).unwrap_or(f64::INFINITY);
            let fb = view.machine.floorplan().amd(b).unwrap_or(f64::INFINITY);
            fa.total_cmp(&fb).then(a.cmp(&b))
        });
        for job in view.pending {
            if let Some(cores) = preferred.take() {
                if cores.len() == job.threads && cores.iter().all(|c| free.contains(c)) {
                    free.retain(|c| !cores.contains(c));
                    actions.push(Action::PlaceJob {
                        job: job.job,
                        cores,
                    });
                    continue;
                }
            }
            if free.len() < job.threads {
                break;
            }
            let cores: Vec<CoreId> = free.drain(..job.threads).collect();
            actions.push(Action::PlaceJob {
                job: job.job,
                cores,
            });
        }
        actions
    }
}

impl Scheduler for TspUniform {
    fn name(&self) -> &str {
        "tsp-uniform"
    }

    fn schedule(&mut self, view: &SimView<'_>) -> Vec<Action> {
        let mut actions = Self::place_pending(view, &mut self.preferred);
        actions.extend(assign_levels_for_budget(
            view,
            &self.model,
            self.t_dtm,
            self.idle_power,
        ));
        actions
    }

    // The budget recomputation is stateless; the only mutable state is
    // the one-shot preferred placement, which `schedule` consumes.
    fn snapshot(&self) -> Option<String> {
        let body = match &self.preferred {
            None => "null".to_string(),
            Some(cores) => {
                let list: Vec<String> = cores.iter().map(|c| c.index().to_string()).collect();
                format!("[{}]", list.join(","))
            }
        };
        Some(format!("{{\"preferred\":{body}}}"))
    }

    fn restore(&mut self, state: &str) -> std::result::Result<(), String> {
        use hp_obs::json::Json;
        let doc = hp_obs::json::parse(state).map_err(|e| format!("tsp-uniform snapshot: {e}"))?;
        let preferred = doc
            .get("preferred")
            .ok_or("tsp-uniform snapshot: missing `preferred`")?;
        self.preferred = match preferred {
            Json::Null => None,
            Json::Arr(items) => Some(
                items
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .map(|i| CoreId(i as usize))
                            .ok_or_else(|| "tsp-uniform snapshot: non-integer core".to_string())
                    })
                    .collect::<std::result::Result<Vec<_>, _>>()?,
            ),
            _ => return Err("tsp-uniform snapshot: `preferred` must be null or a list".into()),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_manycore::{ArchConfig, Machine};
    use hp_sim::{SimConfig, Simulation};
    use hp_thermal::ThermalConfig;
    use hp_workload::{Benchmark, Job, JobId};

    fn setup() -> (Simulation, RcThermalModel) {
        let machine = Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .unwrap();
        let model = RcThermalModel::new(
            &GridFloorplan::new(4, 4).unwrap(),
            &ThermalConfig::default(),
        )
        .unwrap();
        let sim = Simulation::new(machine, ThermalConfig::default(), SimConfig::default()).unwrap();
        (sim, model)
    }

    fn blackscholes2() -> Vec<Job> {
        vec![Job {
            id: JobId(0),
            benchmark: Benchmark::Blackscholes,
            spec: Benchmark::Blackscholes.spec(2),
            arrival: 0.0,
        }]
    }

    #[test]
    fn tsp_keeps_chip_under_threshold() {
        let (mut sim, model) = setup();
        let mut sched =
            TspUniform::new(model, 70.0, 0.3).with_preferred_cores(vec![CoreId(5), CoreId(10)]);
        let m = sim.run(blackscholes2(), &mut sched).unwrap();
        assert_eq!(m.completed_jobs(), 1);
        assert!(
            m.peak_temperature <= 70.2,
            "TSP safe (peak {:.2})",
            m.peak_temperature
        );
        assert_eq!(m.migrations, 0, "TSP never migrates");
    }

    #[test]
    fn tsp_is_slower_than_unmanaged() {
        // DVFS throttling must cost wall-clock time vs. the pinned
        // unmanaged run (Fig. 2(a) vs 2(b)).
        let (mut sim, model) = setup();
        let mut tsp =
            TspUniform::new(model, 70.0, 0.3).with_preferred_cores(vec![CoreId(5), CoreId(10)]);
        let tsp_m = sim.run(blackscholes2(), &mut tsp).unwrap();

        let machine = Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .unwrap();
        let mut unmanaged_sim = Simulation::new(
            machine,
            ThermalConfig::default(),
            SimConfig {
                dtm_enabled: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let mut pinned =
            hp_sim::schedulers::PinnedScheduler::with_preferred_cores(vec![CoreId(5), CoreId(10)]);
        let un_m = unmanaged_sim.run(blackscholes2(), &mut pinned).unwrap();
        assert!(
            tsp_m.makespan > un_m.makespan * 1.05,
            "tsp {:.4} vs unmanaged {:.4}",
            tsp_m.makespan,
            un_m.makespan
        );
    }
}
