//! Shared DVFS budgeting helpers for the TSP-based baselines.

use hp_floorplan::CoreId;
use hp_manycore::{Machine, WorkPoint};
use hp_power::DvfsLevel;
use hp_sim::{Action, SimView};
use hp_thermal::{tsp, RcThermalModel};

/// Cache for the expensive per-core (water-filling) budgets, keyed on the
/// executing core set.
#[derive(Debug, Default)]
pub(crate) struct BudgetCache {
    key: Vec<usize>,
    budgets: Vec<f64>,
}

/// Like [`assign_levels_for_budget`] but with PCGov's Pareto-optimal
/// *per-core* budgets ([`tsp::per_core_budgets`]): cooler peripheral
/// cores receive a larger share, so the mapping extracts more total power
/// at the same threshold. Falls back to the uniform budget when the
/// water-filling iteration fails.
pub(crate) fn assign_levels_per_core(
    view: &SimView<'_>,
    model: &RcThermalModel,
    t_dtm: f64,
    idle_power: f64,
    cache: &mut BudgetCache,
) -> Vec<Action> {
    let machine = view.machine;
    let ladder = &machine.config().dvfs;
    let mut active: Vec<CoreId> = view
        .threads
        .iter()
        .filter(|t| !t.work.is_idle())
        .map(|t| t.core)
        .collect();
    active.sort();
    let mut actions = Vec::new();
    if active.is_empty() {
        actions.push(Action::SetAllLevels {
            level: ladder.max_level(),
        });
        return actions;
    }
    let key: Vec<usize> = active.iter().map(|c| c.index()).collect();
    if cache.key != key {
        let budgets = tsp::per_core_budgets(model, &active, t_dtm, idle_power)
            .or_else(|_| {
                tsp::budget(model, &active, t_dtm, idle_power)
                    .map(|b| vec![b.per_core_watts; active.len()])
            })
            .unwrap_or_else(|_| vec![idle_power; active.len()]);
        cache.key = key;
        cache.budgets = budgets;
    }

    for t in view.threads {
        if t.work.is_idle() {
            actions.push(Action::SetLevel {
                core: t.core,
                level: ladder.max_level(),
            });
            continue;
        }
        // `active` was built from exactly these executing cores above;
        // a miss means the view changed under us, so leave the core be.
        let Ok(k) = active.binary_search(&t.core) else {
            continue;
        };
        let level = fastest_level_within(machine, &t.work, t.core, cache.budgets[k], t_dtm);
        actions.push(Action::SetLevel {
            core: t.core,
            level,
        });
    }
    actions
}

/// Computes the TSP budget for the currently *executing* cores and emits
/// one [`Action::SetLevel`] per core: active cores run at the fastest
/// level whose power fits the budget, idle/free cores at the top level
/// (they are clock-gated and draw only leakage).
///
/// Returns an empty vector when nothing is running.
pub fn assign_levels_for_budget(
    view: &SimView<'_>,
    model: &RcThermalModel,
    t_dtm: f64,
    idle_power: f64,
) -> Vec<Action> {
    let machine = view.machine;
    let ladder = &machine.config().dvfs;
    // Active = cores whose occupant is executing (not barrier-idle).
    let active: Vec<CoreId> = view
        .threads
        .iter()
        .filter(|t| !t.work.is_idle())
        .map(|t| t.core)
        .collect();
    let mut actions = Vec::new();
    if active.is_empty() {
        // Nothing draws dynamic power; release all cores to peak.
        actions.push(Action::SetAllLevels {
            level: ladder.max_level(),
        });
        return actions;
    }
    let Ok(budget) = tsp::budget(model, &active, t_dtm, idle_power) else {
        // Threshold unreachable even at idle: crash everything to minimum.
        actions.push(Action::SetAllLevels {
            level: ladder.min_level(),
        });
        return actions;
    };

    for t in view.threads {
        if t.work.is_idle() {
            actions.push(Action::SetLevel {
                core: t.core,
                level: ladder.max_level(),
            });
            continue;
        }
        let level = fastest_level_within(machine, &t.work, t.core, budget.per_core_watts, t_dtm);
        actions.push(Action::SetLevel {
            core: t.core,
            level,
        });
    }
    actions
}

/// The fastest DVFS level at which `work` on `core` stays within
/// `budget_watts` (assuming worst-case junction temperature `temp_c` for
/// the leakage term). Falls back to the minimum level when even that
/// exceeds the budget.
pub(crate) fn fastest_level_within(
    machine: &Machine,
    work: &WorkPoint,
    core: CoreId,
    budget_watts: f64,
    temp_c: f64,
) -> DvfsLevel {
    let ladder = &machine.config().dvfs;
    let mut best = ladder.min_level();
    for level in ladder.levels() {
        let Ok(stack) = machine.cpi_stack_at_level(work, core, level) else {
            break;
        };
        let p = machine.core_power(&stack, level, temp_c);
        if p <= budget_watts {
            best = level;
        } else {
            break; // power is monotone in level
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_manycore::ArchConfig;

    fn machine() -> Machine {
        Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn generous_budget_allows_peak() {
        let m = machine();
        let level = fastest_level_within(&m, &WorkPoint::compute_bound(), CoreId(5), 100.0, 70.0);
        assert_eq!(level, m.config().dvfs.max_level());
    }

    #[test]
    fn tiny_budget_forces_minimum() {
        let m = machine();
        let level = fastest_level_within(&m, &WorkPoint::compute_bound(), CoreId(5), 0.1, 70.0);
        assert_eq!(level, m.config().dvfs.min_level());
    }

    #[test]
    fn moderate_budget_throttles_partially() {
        let m = machine();
        let level = fastest_level_within(&m, &WorkPoint::compute_bound(), CoreId(5), 3.0, 70.0);
        assert!(level > m.config().dvfs.min_level());
        assert!(level < m.config().dvfs.max_level());
    }

    #[test]
    fn memory_bound_work_tolerates_smaller_budget_at_higher_level() {
        // Memory-bound work draws less power, so the same budget admits a
        // higher frequency.
        let m = machine();
        let b = 3.0;
        let hot = fastest_level_within(&m, &WorkPoint::compute_bound(), CoreId(5), b, 70.0);
        let cool = fastest_level_within(&m, &WorkPoint::memory_bound(), CoreId(5), b, 70.0);
        assert!(cool > hot);
    }
}
