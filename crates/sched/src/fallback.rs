//! Graceful-degradation chain: HotPotato → TSP-uniform throttle.
//!
//! The rotation policy depends on two inputs the fault layer can poison:
//! trustworthy temperature sensors (its power estimates feed Algorithm 1)
//! and a solver that actually evaluates. [`FallbackChain`] watches both
//! and, when either fails, swaps the chip onto the conservative
//! TSP-uniform budget policy — no migrations, worst-case-safe DVFS — until
//! the inputs are trustworthy again. The hardware DTM watchdog in the
//! engine remains the final backstop below this chain.

use hotpotato::{HotPotato, HotPotatoConfig};
use hp_sim::{Action, Scheduler, SchedulerHealth, SimView};
use hp_thermal::RcThermalModel;

use crate::budget::assign_levels_for_budget;
use crate::tsp_uniform::TspUniform;

/// Knobs of the degradation chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallbackConfig {
    /// Minimum acceptable [`SimView::min_sensor_confidence`]; below this
    /// the rotation policy is not trusted with migration decisions.
    pub confidence_floor: f64,
    /// Hooks the chain stays on the fallback policy before attempting
    /// recovery (hold hysteresis — prevents flapping when a fault is
    /// intermittent at exactly the scheduling period).
    pub hold_hooks: u64,
}

impl Default for FallbackConfig {
    fn default() -> Self {
        FallbackConfig {
            confidence_floor: 0.5,
            hold_hooks: 10,
        }
    }
}

/// HotPotato wrapped in a TSP-uniform safety net.
///
/// Nominal operation delegates to [`HotPotato`] unchanged. The chain
/// degrades when either
///
/// * the engine's conditioned sensor confidence drops below
///   [`FallbackConfig::confidence_floor`], or
/// * an Algorithm-1 evaluation fails (the solver's `T_peak = ∞`
///   degenerate reading) during a scheduling hook, or
/// * the solver's runtime numerical-invariant guard trips during a hook
///   (the eigen answer was rejected and recomputed densely — the chain
///   throttles until the retry confirms the dense path is stable).
///
/// Construction-time numerical arming (a model stiff enough that the
/// solver runs on its dense fallback from the start) is *not* a trigger:
/// the dense path is authoritative and the rotation policy stays valid.
///
/// While degraded it runs the TSP-uniform throttle policy (placement on
/// lowest-AMD free cores plus a worst-case-safe per-core DVFS budget)
/// and reports [`SchedulerHealth::Degraded`] so the engine can count
/// fallback intervals. After [`FallbackConfig::hold_hooks`] hooks with
/// confidence restored it resynchronises the rotation bookkeeping from
/// the engine's ground truth ([`HotPotato::resync_from_view`]), releases
/// the throttle with a chip-wide max-level action, and hands control
/// back — unless the retried evaluation fails again, in which case it
/// stays on the fallback.
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
/// use hp_sched::{FallbackChain, FallbackConfig};
/// use hp_thermal::{RcThermalModel, ThermalConfig};
/// use hotpotato::HotPotatoConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = RcThermalModel::new(&GridFloorplan::new(4, 4)?, &ThermalConfig::default())?;
/// let _sched = FallbackChain::new(model, HotPotatoConfig::default(), FallbackConfig::default())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FallbackChain {
    primary: HotPotato,
    fallback: FallbackConfig,
    t_dtm: f64,
    idle_power: f64,
    degraded: bool,
    hooks_on_fallback: u64,
    degradations: u64,
    recoveries: u64,
}

impl FallbackChain {
    /// Creates the chain; `model` must match the simulated machine.
    ///
    /// # Errors
    ///
    /// Propagates HotPotato construction failures.
    pub fn new(
        model: RcThermalModel,
        config: HotPotatoConfig,
        fallback: FallbackConfig,
    ) -> hotpotato::Result<Self> {
        let t_dtm = config.t_dtm;
        let idle_power = config.idle_power;
        let primary = HotPotato::new(model, config)?;
        Ok(Self::around(primary, fallback, t_dtm, idle_power))
    }

    /// Creates the chain around a prebuilt rotation-peak solver (shared
    /// cache handle — see [`HotPotato::with_solver`]).
    ///
    /// # Errors
    ///
    /// Propagates HotPotato configuration failures.
    pub fn with_solver(
        solver: hotpotato::RotationPeakSolver,
        config: HotPotatoConfig,
        fallback: FallbackConfig,
    ) -> hotpotato::Result<Self> {
        let t_dtm = config.t_dtm;
        let idle_power = config.idle_power;
        let primary = HotPotato::with_solver(solver, config)?;
        Ok(Self::around(primary, fallback, t_dtm, idle_power))
    }

    fn around(primary: HotPotato, fallback: FallbackConfig, t_dtm: f64, idle_power: f64) -> Self {
        FallbackChain {
            primary,
            fallback,
            t_dtm,
            idle_power,
            degraded: false,
            hooks_on_fallback: 0,
            degradations: 0,
            recoveries: 0,
        }
    }

    /// Whether the chain is currently running on the fallback policy.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Times the chain left nominal operation for the fallback policy.
    pub fn degradations(&self) -> u64 {
        self.degradations
    }

    /// Times the chain recovered from the fallback back to HotPotato.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Access to the wrapped rotation scheduler.
    pub fn rotation(&self) -> &HotPotato {
        &self.primary
    }

    fn enter_fallback(&mut self) {
        self.degraded = true;
        self.hooks_on_fallback = 0;
        self.degradations += 1;
    }

    /// One hook of the TSP-uniform safety policy: AMD-ordered placement
    /// of pending jobs plus the worst-case-safe uniform DVFS budget.
    fn fallback_actions(&self, view: &SimView<'_>) -> Vec<Action> {
        let mut none = None;
        let mut actions = TspUniform::place_pending(view, &mut none);
        actions.extend(assign_levels_for_budget(
            view,
            self.primary.solver().model(),
            self.t_dtm,
            self.idle_power,
        ));
        actions
    }

    /// Runs the primary, reporting whether Algorithm 1 failed during the
    /// hook (detected by differencing the monotone failure counter) or
    /// the solver's runtime invariant guard tripped (a typed
    /// `NumericalError` recovered internally by the dense fallback —
    /// treated the same as a failure so the chain throttles while the
    /// numerics settle).
    fn try_primary(&mut self, view: &SimView<'_>) -> (Vec<Action>, bool) {
        let failures_before = self.primary.solver_failures();
        let guard_trips_before = self.primary.solver().numerics().guard_trips;
        let actions = self.primary.schedule(view);
        let failed = self.primary.solver_failures() > failures_before
            || self.primary.solver().numerics().guard_trips > guard_trips_before;
        (actions, failed)
    }
}

impl Scheduler for FallbackChain {
    fn name(&self) -> &str {
        "hotpotato-fallback-chain"
    }

    fn schedule(&mut self, view: &SimView<'_>) -> Vec<Action> {
        let confidence_ok = view.min_sensor_confidence() >= self.fallback.confidence_floor;

        if self.degraded {
            self.hooks_on_fallback += 1;
            if confidence_ok && self.hooks_on_fallback >= self.fallback.hold_hooks {
                // Recovery attempt: re-seat the rotation bookkeeping on
                // reality (fallback placements / failed migrations have
                // invalidated it), then let Algorithm 1 try again.
                self.primary.resync_from_view(view);
                let (mut actions, failed) = self.try_primary(view);
                if !failed {
                    self.degraded = false;
                    self.recoveries += 1;
                    // Release the fallback throttle; HotPotato manages
                    // temperature through placement, at peak frequency.
                    let ladder = &view.machine.config().dvfs;
                    actions.push(Action::SetAllLevels {
                        level: ladder.max_level(),
                    });
                    return actions;
                }
                // Solver still failing: discard its actions, stay safe.
            }
            return self.fallback_actions(view);
        }

        if !confidence_ok {
            self.enter_fallback();
            return self.fallback_actions(view);
        }

        let (actions, failed) = self.try_primary(view);
        if failed {
            // Discard the poisoned plan; throttle conservatively instead.
            self.enter_fallback();
            return self.fallback_actions(view);
        }
        actions
    }

    fn health(&self) -> SchedulerHealth {
        if self.degraded {
            SchedulerHealth::Degraded
        } else {
            SchedulerHealth::Nominal
        }
    }

    fn observability(&self) -> Option<hp_obs::RunReport> {
        // Forward the wrapped rotation scheduler's report and stack the
        // chain's own degradation accounting on top.
        let mut report = self.primary.observability().unwrap_or_default();
        report.push_counter("fallback.degradations", self.degradations);
        report.push_counter("fallback.recoveries", self.recoveries);
        report.push_counter("fallback.active", u64::from(self.degraded));
        Some(report)
    }

    // The chain's own state is four scalars; the wrapped rotation
    // scheduler's snapshot rides along as an escaped string. (The
    // FallbackConfig knobs are construction parameters, re-supplied by
    // whoever builds the chain for the resumed run and pinned by the
    // engine's spec hash.)
    fn snapshot(&self) -> Option<String> {
        let primary = self.primary.snapshot()?;
        Some(format!(
            "{{\"degraded\":{},\"hooks_on_fallback\":{},\"degradations\":{},\"recoveries\":{},\"primary\":\"{}\"}}",
            self.degraded,
            self.hooks_on_fallback,
            self.degradations,
            self.recoveries,
            hp_obs::json::escape(&primary)
        ))
    }

    fn restore(&mut self, state: &str) -> std::result::Result<(), String> {
        use hp_obs::json::Json;
        let doc =
            hp_obs::json::parse(state).map_err(|e| format!("fallback-chain snapshot: {e}"))?;
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| format!("fallback-chain snapshot: missing `{name}`"))
        };
        self.degraded = match field("degraded")? {
            Json::Bool(b) => *b,
            _ => return Err("fallback-chain snapshot: bad `degraded`".into()),
        };
        self.hooks_on_fallback = field("hooks_on_fallback")?
            .as_u64()
            .ok_or("fallback-chain snapshot: bad `hooks_on_fallback`")?;
        self.degradations = field("degradations")?
            .as_u64()
            .ok_or("fallback-chain snapshot: bad `degradations`")?;
        self.recoveries = field("recoveries")?
            .as_u64()
            .ok_or("fallback-chain snapshot: bad `recoveries`")?;
        let primary = field("primary")?
            .as_str()
            .ok_or("fallback-chain snapshot: missing `primary`")?;
        self.primary.restore(primary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_manycore::{ArchConfig, Machine};
    use hp_sim::{SimConfig, Simulation};
    use hp_thermal::ThermalConfig;
    use hp_workload::{closed_batch, Benchmark};

    fn setup(sim_config: SimConfig) -> (Simulation, RcThermalModel) {
        let machine = Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .expect("valid config");
        let model = RcThermalModel::new(
            &GridFloorplan::new(4, 4).expect("grid"),
            &ThermalConfig::default(),
        )
        .expect("valid thermal config");
        let sim =
            Simulation::new(machine, ThermalConfig::default(), sim_config).expect("valid sim");
        (sim, model)
    }

    #[test]
    fn chain_is_transparent_without_faults() {
        // With clean sensors and a healthy solver the chain must behave
        // exactly like pure HotPotato.
        let jobs = closed_batch(Benchmark::Canneal, 8, 2);

        let (mut sim, model) = setup(SimConfig::default());
        let mut chain =
            FallbackChain::new(model, HotPotatoConfig::default(), FallbackConfig::default())
                .expect("valid");
        let chain_m = sim.run(jobs.clone(), &mut chain).expect("completes");
        assert_eq!(chain.degradations(), 0, "no degradation without faults");
        assert!(!chain.is_degraded());

        let (mut sim, model) = setup(SimConfig::default());
        let mut pure = HotPotato::new(model, HotPotatoConfig::default()).expect("valid");
        let pure_m = sim.run(jobs, &mut pure).expect("completes");

        assert_eq!(chain_m.makespan, pure_m.makespan, "bit-identical schedule");
        assert_eq!(chain_m.peak_temperature, pure_m.peak_temperature);
        assert_eq!(chain_m.migrations, pure_m.migrations);
        assert_eq!(chain_m.robustness.fallback_activations, 0);
    }

    #[test]
    fn chain_survives_heavy_sensor_faults() {
        // Under aggressive dropout + stuck sensors the chain must finish
        // the workload, spend time on the fallback, and keep the chip
        // within one degree of the DTM threshold.
        let faults = hp_faults::FaultPlan {
            seed: 42,
            sensor_dropout_rate: 0.4,
            sensor_stuck_rate: 0.05,
            sensor_stuck_intervals: 200,
            ..hp_faults::FaultPlan::default()
        };
        let config = SimConfig {
            horizon: 120.0,
            faults,
            ..SimConfig::default()
        };
        let t_dtm = config.t_dtm;
        let (mut sim, model) = setup(config);
        let mut chain =
            FallbackChain::new(model, HotPotatoConfig::default(), FallbackConfig::default())
                .expect("valid");
        let jobs = closed_batch(Benchmark::Swaptions, 8, 2);
        let m = sim.run(jobs, &mut chain).expect("completes despite faults");
        assert_eq!(m.completed_jobs(), m.jobs.len());
        assert!(
            m.robustness.fallback_activations > 0,
            "faults this heavy must trip the fallback at least once"
        );
        assert!(
            m.robustness.fallback_intervals >= m.robustness.fallback_activations,
            "each activation costs at least one hook"
        );
        assert!(
            m.peak_temperature <= t_dtm + 1.0,
            "degradation chain keeps the chip safe (peak {:.2})",
            m.peak_temperature
        );
    }

    #[test]
    fn chain_stays_nominal_on_armed_dense_fallback() {
        // A stiff model arms the solver's dense fallback at construction.
        // That is a numerical degradation, not a solver failure: the
        // dense answers are authoritative, so the chain must keep the
        // rotation policy in charge and complete the workload without
        // ever entering the TSP-uniform throttle.
        let machine = Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .expect("valid config");
        let thermal = ThermalConfig::ill_conditioned();
        let model = RcThermalModel::new(&GridFloorplan::new(4, 4).expect("grid"), &thermal)
            .expect("valid thermal config");
        let mut sim = Simulation::new(machine, thermal, SimConfig::default()).expect("valid sim");
        let mut chain =
            FallbackChain::new(model, HotPotatoConfig::default(), FallbackConfig::default())
                .expect("valid");
        let m = sim
            .run(closed_batch(Benchmark::Canneal, 8, 2), &mut chain)
            .expect("completes on the dense numerical fallback");
        assert_eq!(m.completed_jobs(), m.jobs.len());
        assert!(chain.rotation().solver().degraded(), "stiff model arms");
        assert_eq!(
            chain.degradations(),
            0,
            "armed dense fallback is not a chain trigger"
        );
        assert!(!chain.is_degraded());
        assert!(
            chain.rotation().solver().numerics().fallback_activations >= 1,
            "dense fallback must have actually been exercised"
        );
    }

    #[test]
    fn chain_recovers_after_transient_degradation() {
        // Moderate dropout: confidence dips below the floor sometimes but
        // recovers; the chain must hand control back to HotPotato.
        let faults = hp_faults::FaultPlan {
            seed: 7,
            sensor_dropout_rate: 0.25,
            ..hp_faults::FaultPlan::default()
        };
        let config = SimConfig {
            horizon: 120.0,
            faults,
            ..SimConfig::default()
        };
        let (mut sim, model) = setup(config);
        let mut chain = FallbackChain::new(
            model,
            HotPotatoConfig::default(),
            FallbackConfig {
                confidence_floor: 0.9,
                hold_hooks: 3,
            },
        )
        .expect("valid");
        let jobs = closed_batch(Benchmark::Canneal, 8, 2);
        let m = sim.run(jobs, &mut chain).expect("completes");
        assert_eq!(m.completed_jobs(), m.jobs.len());
        assert!(chain.degradations() > 0, "floor at 0.9 must trip");
        assert!(
            chain.recoveries() > 0,
            "transient faults must allow recovery ({} degradations)",
            chain.degradations()
        );
    }
}
