use hp_floorplan::{CoreId, GridFloorplan};
use hp_linalg::convert::usize_to_f64;
use hp_linalg::{CholeskyDecomposition, LuDecomposition, Matrix, NumericalError, Vector};

use crate::{Result, ThermalConfig, ThermalError};

/// Conditioning estimate above which solvers stop trusting the eigen
/// fast path and arm the dense backward-Euler fallback
/// ([`crate::DenseStepper`]). Compared against the system stiffness
/// `cond₁(B) · max(A)/min(A)` (an upper-bound proxy for the eigenvalue
/// spread of `A⁻¹B`) by [`RcThermalModel::validate`], and against the
/// eigenvalue spread itself by the solvers. The default model sits
/// around 5e5; the chaos profile ([`ThermalConfig::ill_conditioned`])
/// around 5e15.
pub const CONDITION_FALLBACK_THRESHOLD: f64 = 1e12;

/// Construction-time health report of an RC model
/// ([`RcThermalModel::validate`]): the conditioning facts a run report
/// records so a degraded-numerics verdict can be traced back to its
/// cause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelHealth {
    /// 1-norm condition estimate of `B` (Hager, from the cached LU).
    pub condition_estimate: f64,
    /// Capacitance spread `max(A)/min(A)`.
    pub capacitance_ratio: f64,
    /// `condition_estimate × capacitance_ratio` — the stiffness proxy
    /// compared against [`CONDITION_FALLBACK_THRESHOLD`].
    pub stiffness: f64,
    /// Fastest per-node time constant `min(A_ii / B_ii)`, seconds.
    pub min_time_constant: f64,
    /// Slowest per-node time constant `max(A_ii / B_ii)`, seconds.
    pub max_time_constant: f64,
    /// Whether the stiffness proxy exceeds the fallback threshold —
    /// solvers on this model will run (or arm) the dense fallback.
    pub ill_conditioned: bool,
}

/// The three layers of the vertical stack above each core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Active silicon — where power dissipates and temperature is constrained.
    Junction,
    /// Heat-spreader patch.
    Spreader,
    /// Heat-sink patch (connects to ambient).
    Sink,
}

/// HotSpot-style compact RC thermal network of a grid many-core
/// (paper Eq. 1: `A·T' + B·T = P + T_amb·G`).
///
/// The first `n` thermal nodes are the core junctions (in [`CoreId`] order),
/// followed by `n` spreader patches and `n` sink patches. `B` is assembled
/// as a weighted graph Laplacian plus the ambient leak diagonal, so it is
/// symmetric positive definite by construction — the property the paper's
/// Eq. (8)–(9) closed forms rely on.
///
/// # Example
///
/// ```
/// use hp_floorplan::{CoreId, GridFloorplan};
/// use hp_thermal::{RcThermalModel, ThermalConfig};
/// use hp_linalg::Vector;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = GridFloorplan::new(4, 4)?;
/// let model = RcThermalModel::new(&fp, &ThermalConfig::default())?;
/// let mut power = Vector::constant(16, 0.3);
/// power[5] = 7.0; // one hot core
/// let t = model.steady_state(&power)?;
/// // The hot core is the hottest junction on the chip.
/// assert_eq!(model.core_temperatures(&t).argmax(), Some(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RcThermalModel {
    cores: usize,
    /// Spreader/sink patches (= floorplan positions; equals `cores` for a
    /// planar chip, `cores / dies` for a stacked one).
    patches: usize,
    nodes: usize,
    config: ThermalConfig,
    a_diag: Vector,
    b: Matrix,
    g: Vector,
    b_lu: LuDecomposition,
    /// Cached ambient response `B⁻¹·G·T_amb` (temperature with zero power).
    ambient_response: Vector,
}

impl RcThermalModel {
    /// Builds the RC network for `floorplan` with the given `config`.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] for non-physical configuration.
    /// * [`ThermalError::Linalg`] if factorization of `B` fails (cannot
    ///   happen for valid parameters).
    pub fn new(floorplan: &GridFloorplan, config: &ThermalConfig) -> Result<Self> {
        config.validate()?;
        let n = floorplan.core_count();
        let nodes = 3 * n;

        let mut a_diag = Vector::zeros(nodes);
        for i in 0..n {
            a_diag[i] = config.c_junction;
            a_diag[n + i] = config.c_spreader;
            a_diag[2 * n + i] = config.c_sink;
        }

        let mut b = Matrix::zeros(nodes, nodes);
        let mut g = Vector::zeros(nodes);

        let mut couple = |i: usize, j: usize, cond: f64| {
            b[(i, j)] -= cond;
            b[(j, i)] -= cond;
            b[(i, i)] += cond;
            b[(j, j)] += cond;
        };

        for core in floorplan.cores() {
            let i = core.index();
            let missing = 4 - floorplan.neighbors(core)?.len();
            // Vertical stack; edge spreader patches also reach peripheral
            // sink area beyond the die outline.
            couple(i, n + i, config.g_junction_spreader);
            couple(
                n + i,
                2 * n + i,
                config.g_spreader_sink + usize_to_f64(missing) * config.g_spreader_edge,
            );
            // Lateral coupling; add each undirected edge once.
            for nb in floorplan.neighbors(core)? {
                let j = nb.index();
                if j > i {
                    couple(i, j, config.g_lateral_junction);
                    couple(n + i, n + j, config.g_lateral_spreader);
                    couple(2 * n + i, 2 * n + j, config.g_lateral_sink);
                }
            }
        }
        // Ambient leak from sink patches (adds to the diagonal of B).
        // Edge and corner patches gain peripheral fin area in proportion to
        // their missing neighbours — this is what makes the die centre
        // thermally constrained (paper Fig. 3).
        for core in floorplan.cores() {
            let i = core.index();
            let node = 2 * n + i;
            let missing = 4 - floorplan.neighbors(core)?.len();
            let leak = config.g_sink_ambient + usize_to_f64(missing) * config.g_sink_edge;
            b[(node, node)] += leak;
            g[node] = leak;
        }

        RcThermalModel::from_parts(n, n, *config, a_diag, b, g)
    }

    /// Assembles a model from raw matrices — the escape hatch used by
    /// non-planar builders such as [`crate::stacked::stacked_model`].
    ///
    /// `cores` power-dissipating junction nodes must come first in the
    /// node ordering, followed by `patches` spreader nodes and `patches`
    /// sink nodes.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] if the matrix dimensions
    ///   disagree with `cores + 2 × patches`.
    /// * Factorization errors for a singular `B`.
    pub fn from_parts(
        cores: usize,
        patches: usize,
        config: ThermalConfig,
        a_diag: Vector,
        b: Matrix,
        g: Vector,
    ) -> Result<Self> {
        let nodes = cores + 2 * patches;
        if a_diag.len() != nodes || b.rows() != nodes || b.cols() != nodes || g.len() != nodes {
            return Err(ThermalError::PowerLengthMismatch {
                expected: nodes,
                got: a_diag.len(),
            });
        }
        let b_lu = b.lu()?;
        let ambient_response = b_lu.solve(&g.scaled(config.ambient))?;
        Ok(RcThermalModel {
            cores,
            patches,
            nodes,
            config,
            a_diag,
            b,
            g,
            b_lu,
            ambient_response,
        })
    }

    /// Number of cores `n`.
    pub fn core_count(&self) -> usize {
        self.cores
    }

    /// Number of thermal nodes `N = 3n`.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Diagonal of the capacitance matrix `A`.
    pub fn a_diag(&self) -> &Vector {
        &self.a_diag
    }

    /// The conductance matrix `B` (symmetric positive definite).
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// The conductance-to-ambient column `G`.
    pub fn g(&self) -> &Vector {
        &self.g
    }

    /// Cached LU factorization of `B`.
    pub fn b_lu(&self) -> &LuDecomposition {
        &self.b_lu
    }

    /// The ambient response `B⁻¹·G·T_amb`: node temperatures with zero power.
    pub fn ambient_response(&self) -> &Vector {
        &self.ambient_response
    }

    /// Thermal node index of `core` in `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Floorplan`] for out-of-range core ids.
    pub fn node(&self, core: CoreId, layer: Layer) -> Result<usize> {
        if core.index() >= self.cores {
            return Err(ThermalError::Floorplan(
                hp_floorplan::FloorplanError::CoreOutOfRange {
                    core: core.index(),
                    cores: self.cores,
                },
            ));
        }
        Ok(match layer {
            Layer::Junction => core.index(),
            Layer::Spreader => self.cores + core.index() % self.patches,
            Layer::Sink => self.cores + self.patches + core.index() % self.patches,
        })
    }

    /// Expands a per-core power vector in W (length `n`, junction
    /// dissipation) into a full node power vector (length `N`, zeros
    /// elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] if `core_power` has the
    /// wrong length.
    pub fn expand_power(&self, core_power: &Vector) -> Result<Vector> {
        if core_power.len() != self.cores {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.cores,
                got: core_power.len(),
            });
        }
        let mut p = Vector::zeros(self.nodes);
        for i in 0..self.cores {
            p[i] = core_power[i];
        }
        Ok(p)
    }

    /// Extracts the junction (core) temperatures, °C, from a full node
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `node_temps.len() != self.node_count()`.
    pub fn core_temperatures(&self, node_temps: &Vector) -> Vector {
        assert_eq!(node_temps.len(), self.nodes, "node state length mismatch");
        Vector::from_fn(self.cores, |i| node_temps[i])
    }

    /// Steady-state node temperatures for a per-core power map
    /// (paper Eq. 3: `T_steady = B⁻¹·P + B⁻¹·T_amb·G`).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] for wrong-length input
    /// or a propagated solver error.
    pub fn steady_state(&self, core_power: &Vector) -> Result<Vector> {
        let p = self.expand_power(core_power)?;
        let power_response = self.b_lu.solve(&p)?;
        Ok(&power_response + &self.ambient_response)
    }

    /// The node state with every node at ambient temperature — the natural
    /// initial condition (paper §IV shifts the origin to exactly this state).
    pub fn ambient_state(&self) -> Vector {
        Vector::constant(self.nodes, self.config.ambient)
    }

    /// The constant node forcing `P_nodes + T_amb·G` of the thermal ODE
    /// `A·T' + B·T = P + T_amb·G` for a per-core power map — the
    /// right-hand side the dense fallback stepper
    /// ([`crate::DenseStepper`]) integrates against.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] for wrong-length
    /// input.
    pub fn forcing(&self, core_power: &Vector) -> Result<Vector> {
        let p = self.expand_power(core_power)?;
        Ok(Vector::from_fn(self.nodes, |i| {
            p[i] + self.config.ambient * self.g[i]
        }))
    }

    /// Construction-time numerical-integrity audit (DESIGN.md §14).
    ///
    /// Checks the facts every downstream solver silently assumes:
    ///
    /// * all entries of `A`, `B`, `G` are finite; `A` strictly positive;
    /// * `B` is symmetric positive definite (Cholesky must succeed);
    /// * every per-node time constant `A_ii/B_ii` is finite and positive;
    /// * the stiffness proxy `cond₁(B) · max(A)/min(A)` is computed and
    ///   compared against [`CONDITION_FALLBACK_THRESHOLD`].
    ///
    /// An ill-conditioned model is *not* an error — solvers degrade to
    /// the dense fallback for it — so the verdict comes back inside
    /// [`ModelHealth`]; only structurally broken models (non-finite
    /// entries, non-SPD `B`) fail.
    ///
    /// # Errors
    ///
    /// * [`NumericalError::NonFinite`] (via [`ThermalError::Linalg`]) for
    ///   non-finite matrix entries.
    /// * [`ThermalError::Linalg`] if `B` fails its SPD (Cholesky) check.
    pub fn validate(&self) -> Result<ModelHealth> {
        if self.a_diag.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            return Err(ThermalError::Linalg(
                NumericalError::NonFinite {
                    what: "capacitance diagonal A",
                }
                .into(),
            ));
        }
        if self.b.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(ThermalError::Linalg(
                NumericalError::NonFinite {
                    what: "conductance matrix B",
                }
                .into(),
            ));
        }
        if self.g.iter().any(|v| !v.is_finite()) {
            return Err(ThermalError::Linalg(
                NumericalError::NonFinite {
                    what: "ambient column G",
                }
                .into(),
            ));
        }
        // SPD check: Cholesky fails on asymmetric or indefinite B.
        CholeskyDecomposition::new(&self.b)?;

        let condition_estimate = self.b_lu.condition_estimate()?;
        let mut a_min = f64::INFINITY;
        let mut a_max = 0.0f64;
        for &a in &self.a_diag {
            a_min = a_min.min(a);
            a_max = a_max.max(a);
        }
        let capacitance_ratio = a_max / a_min;
        let stiffness = condition_estimate * capacitance_ratio;

        let mut min_tau = f64::INFINITY;
        let mut max_tau = 0.0f64;
        for i in 0..self.nodes {
            let tau = self.a_diag[i] / self.b[(i, i)];
            if !(tau.is_finite() && tau > 0.0) {
                return Err(ThermalError::InvalidParameter {
                    name: "node time constant",
                    value: tau,
                });
            }
            min_tau = min_tau.min(tau);
            max_tau = max_tau.max(tau);
        }

        Ok(ModelHealth {
            condition_estimate,
            capacitance_ratio,
            stiffness,
            min_time_constant: min_tau,
            max_time_constant: max_tau,
            ill_conditioned: stiffness >= CONDITION_FALLBACK_THRESHOLD,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_4x4() -> RcThermalModel {
        let fp = GridFloorplan::new(4, 4).unwrap();
        RcThermalModel::new(&fp, &ThermalConfig::default()).unwrap()
    }

    #[test]
    fn b_is_symmetric_positive_definite() {
        let m = model_4x4();
        assert!(m.b().is_symmetric(1e-12));
        // All eigenvalues positive <=> SPD.
        let eig = m.b().symmetric_eigen().unwrap();
        assert!(eig.eigenvalues().iter().all(|&l| l > 0.0));
    }

    #[test]
    fn zero_power_settles_at_ambient() {
        let m = model_4x4();
        let t = m.steady_state(&Vector::zeros(16)).unwrap();
        for &ti in &t {
            assert!((ti - 45.0).abs() < 1e-8, "node at {ti}");
        }
    }

    #[test]
    fn hot_core_is_hottest_and_above_threshold() {
        let m = model_4x4();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let t = m.steady_state(&p).unwrap();
        let cores = m.core_temperatures(&t);
        assert_eq!(cores.argmax(), Some(5));
        // A pinned compute-bound thread must overshoot the 70 C threshold
        // (Fig. 2(a) shows ~80 C).
        assert!(cores.max() > 72.0, "hot core at {:.1}", cores.max());
        assert!(cores.max() < 95.0, "hot core too hot: {:.1}", cores.max());
    }

    #[test]
    fn fig2a_two_center_cores_reach_about_80c() {
        let m = model_4x4();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        p[10] = 7.0;
        let t = m.steady_state(&p).unwrap();
        let peak = m.core_temperatures(&t).max();
        assert!(peak > 74.0 && peak < 90.0, "peak {peak:.1}");
    }

    #[test]
    fn rotation_average_power_is_thermally_safe() {
        // Averaging 2x7 W over the 4 centre cores (plus idle power) must
        // land below the 70 C threshold — the premise of Fig. 2(c).
        let m = model_4x4();
        let mut p = Vector::constant(16, 0.3);
        let avg = (2.0 * 7.0 + 2.0 * 0.3) / 4.0;
        for c in [5usize, 6, 9, 10] {
            p[c] = avg;
        }
        let t = m.steady_state(&p).unwrap();
        let peak = m.core_temperatures(&t).max();
        assert!(peak < 70.0, "averaged peak {peak:.1}");
        assert!(peak > 55.0, "averaged peak implausibly cool: {peak:.1}");
    }

    #[test]
    fn temperature_monotone_in_power() {
        let m = model_4x4();
        let p1 = Vector::constant(16, 1.0);
        let p2 = Vector::constant(16, 2.0);
        let t1 = m.steady_state(&p1).unwrap();
        let t2 = m.steady_state(&p2).unwrap();
        for i in 0..m.node_count() {
            assert!(t2[i] > t1[i]);
        }
    }

    #[test]
    fn superposition_holds() {
        // The model is affine in P: T(P1 + P2) - T(0) == (T(P1)-T(0)) + (T(P2)-T(0)).
        let m = model_4x4();
        let mut p1 = Vector::zeros(16);
        p1[3] = 4.0;
        let mut p2 = Vector::zeros(16);
        p2[12] = 2.5;
        let t0 = m.steady_state(&Vector::zeros(16)).unwrap();
        let t1 = m.steady_state(&p1).unwrap();
        let t2 = m.steady_state(&p2).unwrap();
        let t12 = m.steady_state(&(&p1 + &p2)).unwrap();
        let lhs = &t12 - &t0;
        let rhs = &(&t1 - &t0) + &(&t2 - &t0);
        assert!((&lhs - &rhs).norm_inf() < 1e-9);
    }

    #[test]
    fn node_indexing() {
        let m = model_4x4();
        assert_eq!(m.node(CoreId(5), Layer::Junction).unwrap(), 5);
        assert_eq!(m.node(CoreId(5), Layer::Spreader).unwrap(), 21);
        assert_eq!(m.node(CoreId(5), Layer::Sink).unwrap(), 37);
        assert!(m.node(CoreId(16), Layer::Junction).is_err());
    }

    #[test]
    fn expand_power_rejects_wrong_length() {
        let m = model_4x4();
        assert!(matches!(
            m.expand_power(&Vector::zeros(8)),
            Err(ThermalError::PowerLengthMismatch { .. })
        ));
    }

    #[test]
    fn forcing_combines_power_and_ambient_leak() {
        let m = model_4x4();
        let mut p = Vector::zeros(16);
        p[3] = 4.0;
        let f = m.forcing(&p).unwrap();
        // Junction node 3 carries its power; sink nodes carry the leak.
        assert_eq!(f[3], 4.0);
        assert_eq!(f[4], 0.0);
        for i in 0..16 {
            let sink = 32 + i;
            assert!((f[sink] - 45.0 * m.g()[sink]).abs() < 1e-12);
        }
        assert!(m.forcing(&Vector::zeros(7)).is_err());
    }

    #[test]
    fn validate_healthy_model() {
        let m = model_4x4();
        let health = m.validate().unwrap();
        assert!(!health.ill_conditioned, "stiffness {:e}", health.stiffness);
        assert!(health.condition_estimate > 1.0);
        assert!(health.capacitance_ratio > 100.0 && health.capacitance_ratio < 1e4);
        assert!(health.min_time_constant > 0.0);
        assert!(health.max_time_constant > health.min_time_constant);
    }

    #[test]
    fn validate_flags_ill_conditioned_profile() {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let m = RcThermalModel::new(&fp, &ThermalConfig::ill_conditioned()).unwrap();
        let health = m.validate().unwrap();
        assert!(health.ill_conditioned, "stiffness {:e}", health.stiffness);
        assert!(health.stiffness >= CONDITION_FALLBACK_THRESHOLD);
    }

    #[test]
    fn validate_rejects_nonfinite_matrix() {
        let m = model_4x4();
        // A NaN in B fails factorization inside from_parts already; go
        // through a broken G instead, which only validate() inspects.
        let mut g = m.g().clone();
        g[0] = f64::INFINITY;
        let broken =
            RcThermalModel::from_parts(16, 16, *m.config(), m.a_diag().clone(), m.b().clone(), g)
                .unwrap();
        assert!(matches!(
            broken.validate(),
            Err(ThermalError::Linalg(hp_linalg::LinalgError::Numerical(_)))
        ));
    }

    #[test]
    fn junction_hotter_than_spreader_hotter_than_sink() {
        let m = model_4x4();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 6.0;
        let t = m.steady_state(&p).unwrap();
        let j = t[m.node(CoreId(5), Layer::Junction).unwrap()];
        let s = t[m.node(CoreId(5), Layer::Spreader).unwrap()];
        let k = t[m.node(CoreId(5), Layer::Sink).unwrap()];
        assert!(j > s && s > k && k > 45.0);
    }
}
