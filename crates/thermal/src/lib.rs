//! HotSpot-style compact RC thermal model for grid many-cores, the
//! MatEx-style transient solver, and TSP power budgeting.
//!
//! The model follows the paper's §III-B formulation
//!
//! ```text
//! A·T' + B·T = P + T_amb·G        (paper Eq. 1)
//! ```
//!
//! with `A` the diagonal matrix of thermal capacitances, `B` the symmetric
//! positive-definite conductance matrix (ambient leaks included on the
//! diagonal), `P` the power map and `G` the conductance-to-ambient column.
//! Each core contributes a three-node vertical stack — junction (silicon),
//! heat-spreader patch and heat-sink patch — with lateral coupling between
//! neighbouring patches in every layer, so a `w × h` chip yields
//! `N = 3·w·h` thermal nodes.
//!
//! Three solvers operate on the model:
//!
//! * [`RcThermalModel::steady_state`] — `T_steady = B⁻¹(P + T_amb·G)`
//!   (paper Eq. 3), using a cached LU factorization of `B`.
//! * [`TransientSolver`] — `T(t) = T_steady + e^{C·t}(T_init − T_steady)`
//!   (paper Eq. 4) through the eigendecomposition of `C = −A⁻¹B`, the same
//!   route as the MatEx solver the paper builds on.
//! * [`tsp`] — Thermal Safe Power budgets (paper ref. \[14\]): the largest
//!   uniform per-core power for a given active-core mapping such that no
//!   steady-state junction temperature exceeds the DTM threshold.
//!
//! # Example
//!
//! ```
//! use hp_floorplan::GridFloorplan;
//! use hp_thermal::{RcThermalModel, ThermalConfig};
//! use hp_linalg::Vector;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fp = GridFloorplan::new(4, 4)?;
//! let model = RcThermalModel::new(&fp, &ThermalConfig::default())?;
//! // All cores idle: the chip settles barely above ambient.
//! let idle = Vector::constant(16, 0.3);
//! let t = model.steady_state(&idle)?;
//! let hottest = model.core_temperatures(&t).max();
//! assert!(hottest > 45.0 && hottest < 55.0);
//! # Ok(())
//! # }
//! ```

mod config;
mod error;
mod fallback;
mod model;
mod transient;

pub mod stacked;
pub mod tsp;

pub use config::ThermalConfig;
pub use error::ThermalError;
pub use fallback::{DenseStepper, DENSE_SUBSTEPS};
pub use model::{Layer, ModelHealth, RcThermalModel, CONDITION_FALLBACK_THRESHOLD};
pub use transient::{NumericsStats, TransientSolver, TransientStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ThermalError>;
