use serde::{Deserialize, Serialize};

use crate::{Result, ThermalError};

/// Package and material parameters of the compact RC thermal model.
///
/// All conductances are in W/K *per core patch*, capacitances in J/K per
/// patch. The defaults model the paper's Table-I processor: 0.81 mm² cores
/// at 14 nm under a copper spreader and a forced-air heat sink, calibrated
/// so that
///
/// * a fully loaded compute-bound core at 4 GHz (~7 W) exceeds the 70 °C
///   threshold by ~10 °C (Fig. 2(a)),
/// * rotating two such threads over the four centre cores keeps the peak
///   near but below the threshold (Fig. 2(c)),
/// * the junction time constant sits in the low-millisecond range, so
///   0.5 ms rotations average temperatures effectively.
///
/// # Example
///
/// ```
/// use hp_thermal::ThermalConfig;
///
/// let cfg = ThermalConfig {
///     ambient: 50.0,
///     ..ThermalConfig::default()
/// };
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Ambient temperature in °C (paper: 45 °C).
    pub ambient: f64,
    /// Junction (silicon) heat capacity per core, J/K.
    pub c_junction: f64,
    /// Heat-spreader patch capacity per core, J/K.
    pub c_spreader: f64,
    /// Heat-sink patch capacity per core, J/K.
    pub c_sink: f64,
    /// Vertical conductance junction → spreader (through die + TIM), W/K.
    pub g_junction_spreader: f64,
    /// Vertical conductance spreader → sink, W/K.
    pub g_spreader_sink: f64,
    /// Convection conductance sink → ambient per core patch, W/K.
    pub g_sink_ambient: f64,
    /// Lateral conductance between adjacent junction patches, W/K.
    pub g_lateral_junction: f64,
    /// Lateral conductance between adjacent spreader patches, W/K.
    pub g_lateral_spreader: f64,
    /// Lateral conductance between adjacent sink patches, W/K.
    pub g_lateral_sink: f64,
    /// Extra sink→ambient conductance per missing grid neighbour, W/K.
    ///
    /// Edge and corner patches of a real heat sink border peripheral fin
    /// area, so they cool better than interior patches. This term is what
    /// makes the die centre thermally constrained and the outer AMD rings
    /// thermally relaxed (paper Fig. 3): a corner patch (2 missing
    /// neighbours) gains `2 × g_sink_edge` of additional ambient coupling.
    pub g_sink_edge: f64,
    /// Extra spreader→sink conductance per missing grid neighbour, W/K.
    ///
    /// Models heat spreading from edge spreader patches into the
    /// peripheral spreader/sink area beyond the die outline.
    pub g_spreader_edge: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            ambient: 45.0,
            // Silicon: 1.75e6 J/(m^3 K) x 0.81 mm^2 x 0.5 mm die.
            c_junction: 7.1e-4,
            // Copper spreader: 3.45e6 J/(m^3 K) x ~1.6 mm^2 x 1 mm.
            c_spreader: 5.6e-3,
            // Aluminium sink mass apportioned per core patch.
            c_sink: 0.35,
            // Die + TIM vertical path: ~4.5 K/W for a 0.81 mm^2 core.
            g_junction_spreader: 0.215,
            // Spreader to sink base.
            g_spreader_sink: 0.90,
            // Forced-air convection share per core patch (~8 K/W per patch,
            // i.e. 0.125 K/W for the whole 64-core package).
            g_sink_ambient: 0.18,
            // Silicon lateral: thinned (~0.1 mm) 14 nm die, 0.9 mm pitch
            // - lateral conduction in the die is marginal.
            g_lateral_junction: 0.005,
            // Copper lateral: k=400 W/(m K), 1 mm thick.
            g_lateral_spreader: 0.40,
            // Sink base lateral: thick aluminium.
            g_lateral_sink: 1.2,
            // Vertical die + TIM path calibrated against Fig. 2.
            // (see examples/calibrate.rs)
            g_sink_edge: 0.60,
            g_spreader_edge: 0.60,
        }
    }
}

impl ThermalConfig {
    /// Checks that all parameters are physical (finite and positive).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] naming the first offender.
    pub fn validate(&self) -> Result<()> {
        let named = [
            ("c_junction", self.c_junction),
            ("c_spreader", self.c_spreader),
            ("c_sink", self.c_sink),
            ("g_junction_spreader", self.g_junction_spreader),
            ("g_spreader_sink", self.g_spreader_sink),
            ("g_sink_ambient", self.g_sink_ambient),
            ("g_lateral_junction", self.g_lateral_junction),
            ("g_lateral_spreader", self.g_lateral_spreader),
            ("g_lateral_sink", self.g_lateral_sink),
        ];
        for (name, value) in [
            ("g_sink_edge", self.g_sink_edge),
            ("g_spreader_edge", self.g_spreader_edge),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        for (name, value) in named {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        if !self.ambient.is_finite() {
            return Err(ThermalError::InvalidParameter {
                name: "ambient",
                value: self.ambient,
            });
        }
        Ok(())
    }

    /// An intentionally ill-conditioned configuration for numerics-chaos
    /// testing: the junction capacitance is shrunk by nine orders of
    /// magnitude, pushing the capacitance ratio `max(A)/min(A)` to ~5e12
    /// and the system's eigenvalue spread past
    /// [`CONDITION_FALLBACK_THRESHOLD`], so every solver built on this
    /// profile arms its dense fallback at construction. All parameters
    /// stay positive and finite — the model *builds*; it is the eigen
    /// fast path that cannot be trusted on it.
    ///
    /// [`CONDITION_FALLBACK_THRESHOLD`]: crate::CONDITION_FALLBACK_THRESHOLD
    pub fn ill_conditioned() -> Self {
        ThermalConfig {
            // Ten orders below the physical value: the junction reacts
            // ~1e10× faster than the sink, a stiffness the eigen route
            // cannot resolve in f64.
            c_junction: 7.1e-14,
            ..ThermalConfig::default()
        }
    }

    /// Junction thermal time constant `C/G` of an isolated core, seconds.
    ///
    /// Rotations faster than this constant average heat effectively; the
    /// default configuration yields ~2.8 ms, comfortably above the paper's
    /// 0.5 ms rotation epoch.
    pub fn junction_time_constant(&self) -> f64 {
        self.c_junction / self.g_junction_spreader
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ThermalConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_nonpositive() {
        let cfg = ThermalConfig {
            c_junction: 0.0,
            ..ThermalConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ThermalError::InvalidParameter {
                name: "c_junction",
                ..
            })
        ));
    }

    #[test]
    fn rejects_nan_ambient() {
        let cfg = ThermalConfig {
            ambient: f64::NAN,
            ..ThermalConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn ill_conditioned_profile_is_valid_but_stiff() {
        let cfg = ThermalConfig::ill_conditioned();
        assert!(cfg.validate().is_ok());
        let ratio = cfg.c_sink / cfg.c_junction;
        assert!(ratio > 1e12, "capacitance ratio {ratio:e}");
    }

    #[test]
    fn junction_time_constant_in_millisecond_range() {
        let tau = ThermalConfig::default().junction_time_constant();
        assert!(tau > 1e-3 && tau < 10e-3, "tau = {tau}");
    }
}
