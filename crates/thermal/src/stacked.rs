//! **Extension (paper §VII future work):** 3D-stacked S-NUCA many-cores.
//!
//! The paper plans to explore synchronous task rotation on 3D S-NUCA
//! chips with the CoMeT simulator. The thermal situation that makes 3D
//! interesting is captured by a stacked RC network: several active
//! silicon dies share one heat-removal path, so the die *buried* farthest
//! from the sink runs structurally hotter than the top die — vertical
//! thermal heterogeneity on top of the planar centre/edge heterogeneity.
//!
//! [`stacked_model`] builds exactly that network, and because it returns
//! an ordinary [`RcThermalModel`], every solver in the workspace — the
//! steady-state/transient solvers, TSP budgeting, and crucially the
//! rotation peak analytics of the `hotpotato` crate — works on it
//! unchanged. Rotating threads *between dies* becomes just another
//! rotation sequence.

use hp_floorplan::GridFloorplan;
use hp_linalg::convert::usize_to_f64;
use hp_linalg::{Matrix, Vector};

use crate::{RcThermalModel, Result, ThermalConfig, ThermalError};

/// Builds a 3D-stacked RC thermal model: `dies` active silicon layers
/// above each floorplan position, the top one attached to the usual
/// spreader/sink stack.
///
/// Core numbering: die 0 (the buried die, farthest from the sink) holds
/// cores `0..n`, die 1 holds `n..2n`, and so on; `model.core_count()`
/// returns `dies × n`. Node layout is all junctions first (matching
/// [`RcThermalModel::core_temperatures`]), then one spreader and one sink
/// patch per floorplan position.
///
/// `g_interdie` is the vertical conductance between stacked junctions
/// (through the die bond / TSV field), W/K per core.
///
/// # Errors
///
/// * [`ThermalError::InvalidParameter`] for `dies == 0` or a non-physical
///   `g_interdie`, or invalid base configuration.
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
/// use hp_linalg::Vector;
/// use hp_thermal::{stacked::stacked_model, ThermalConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = GridFloorplan::new(4, 4)?;
/// let model = stacked_model(&fp, &ThermalConfig::default(), 2, 0.8)?;
/// assert_eq!(model.core_count(), 32);
/// // The same 5 W thread runs hotter on the buried die (core 5) than on
/// // the top die directly above it (core 16 + 5).
/// let mut buried = Vector::constant(32, 0.3);
/// buried[5] = 5.0;
/// let mut top = Vector::constant(32, 0.3);
/// top[21] = 5.0;
/// let t_buried = model.core_temperatures(&model.steady_state(&buried)?)[5];
/// let t_top = model.core_temperatures(&model.steady_state(&top)?)[21];
/// assert!(t_buried > t_top);
/// # Ok(())
/// # }
/// ```
pub fn stacked_model(
    floorplan: &GridFloorplan,
    config: &ThermalConfig,
    dies: usize,
    g_interdie: f64,
) -> Result<RcThermalModel> {
    config.validate()?;
    if dies == 0 {
        return Err(ThermalError::InvalidParameter {
            name: "dies",
            value: 0.0,
        });
    }
    if !(g_interdie.is_finite() && g_interdie > 0.0) {
        return Err(ThermalError::InvalidParameter {
            name: "g_interdie",
            value: g_interdie,
        });
    }
    let n = floorplan.core_count();
    let cores = dies * n;
    let nodes = cores + 2 * n; // junction layers + spreader + sink

    let mut a_diag = Vector::zeros(nodes);
    for d in 0..dies {
        for i in 0..n {
            a_diag[d * n + i] = config.c_junction;
        }
    }
    for i in 0..n {
        a_diag[cores + i] = config.c_spreader;
        a_diag[cores + n + i] = config.c_sink;
    }

    let mut b = Matrix::zeros(nodes, nodes);
    let mut g = Vector::zeros(nodes);
    let couple = |b: &mut Matrix, i: usize, j: usize, cond: f64| {
        b[(i, j)] -= cond;
        b[(j, i)] -= cond;
        b[(i, i)] += cond;
        b[(j, j)] += cond;
    };

    for core in floorplan.cores() {
        let i = core.index();
        let missing = 4 - floorplan.neighbors(core)?.len();
        // Vertical chain: die 0 -> die 1 -> ... -> top die -> spreader.
        for d in 0..dies.saturating_sub(1) {
            couple(&mut b, d * n + i, (d + 1) * n + i, g_interdie);
        }
        couple(
            &mut b,
            (dies - 1) * n + i,
            cores + i,
            config.g_junction_spreader,
        );
        couple(
            &mut b,
            cores + i,
            cores + n + i,
            config.g_spreader_sink + usize_to_f64(missing) * config.g_spreader_edge,
        );
        // Lateral coupling inside every junction die + spreader + sink.
        for nb in floorplan.neighbors(core)? {
            let j = nb.index();
            if j > i {
                for d in 0..dies {
                    couple(&mut b, d * n + i, d * n + j, config.g_lateral_junction);
                }
                couple(&mut b, cores + i, cores + j, config.g_lateral_spreader);
                couple(&mut b, cores + n + i, cores + n + j, config.g_lateral_sink);
            }
        }
        // Ambient leak with peripheral bonus.
        let node = cores + n + i;
        let leak = config.g_sink_ambient + usize_to_f64(missing) * config.g_sink_edge;
        b[(node, node)] += leak;
        g[node] = leak;
    }

    RcThermalModel::from_parts(cores, n, *config, a_diag, b, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> GridFloorplan {
        GridFloorplan::new(4, 4).expect("grid")
    }

    fn model(dies: usize) -> RcThermalModel {
        stacked_model(&fp(), &ThermalConfig::default(), dies, 0.8).expect("builds")
    }

    #[test]
    fn shapes_are_consistent() {
        let m = model(2);
        assert_eq!(m.core_count(), 32);
        assert_eq!(m.node_count(), 32 + 16 + 16);
        assert!(m.b().is_symmetric(1e-12));
        let eig = m.b().symmetric_eigen().expect("decomposes");
        assert!(eig.eigenvalues().iter().all(|&l| l > 0.0), "B is SPD");
    }

    #[test]
    fn single_die_matches_planar_model() {
        let stacked = model(1);
        let planar = RcThermalModel::new(&fp(), &ThermalConfig::default()).expect("builds");
        let mut p = Vector::constant(16, 0.3);
        p[5] = 6.0;
        let t_s = stacked.steady_state(&p).expect("solves");
        let t_p = planar.steady_state(&p).expect("solves");
        assert!(
            (&t_s - &t_p).norm_inf() < 1e-9,
            "1-die stack == planar chip"
        );
    }

    #[test]
    fn buried_die_is_hotter() {
        let m = model(2);
        let mut buried = Vector::constant(32, 0.3);
        buried[5] = 6.0;
        let mut top = Vector::constant(32, 0.3);
        top[16 + 5] = 6.0;
        let t_b = m.core_temperatures(&m.steady_state(&buried).expect("solves"))[5];
        let t_t = m.core_temperatures(&m.steady_state(&top).expect("solves"))[21];
        assert!(
            t_b > t_t + 1.0,
            "buried {t_b:.1} should clearly exceed top {t_t:.1}"
        );
    }

    #[test]
    fn more_dies_run_hotter_per_watt() {
        // Same total power, deeper stack: the buried die gets worse.
        let two = model(2);
        let three = model(3);
        let mut p2 = Vector::constant(32, 0.3);
        p2[5] = 6.0;
        let mut p3 = Vector::constant(48, 0.3);
        p3[5] = 6.0;
        let t2 = two.core_temperatures(&two.steady_state(&p2).expect("solves"))[5];
        let t3 = three.core_temperatures(&three.steady_state(&p3).expect("solves"))[5];
        assert!(t3 > t2);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(stacked_model(&fp(), &ThermalConfig::default(), 0, 0.8).is_err());
        assert!(stacked_model(&fp(), &ThermalConfig::default(), 2, 0.0).is_err());
        assert!(stacked_model(&fp(), &ThermalConfig::default(), 2, f64::NAN).is_err());
    }

    #[test]
    fn zero_power_settles_at_ambient() {
        let m = model(3);
        let t = m.steady_state(&Vector::zeros(48)).expect("solves");
        for &ti in &t {
            assert!((ti - 45.0).abs() < 1e-8);
        }
    }
}
