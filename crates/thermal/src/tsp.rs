//! Thermal Safe Power (TSP) budgeting — paper reference \[14\].
//!
//! TSP answers: *given a set of active cores, what uniform per-core power
//! keeps every steady-state junction temperature at or below the DTM
//! threshold?* DVFS-based schedulers (PCGov/PCMig, the paper's baseline)
//! throttle each active core to its TSP budget; HotPotato instead keeps
//! cores at peak power but rotates threads so the *time-averaged* power per
//! core stays within what TSP would allow.

use hp_floorplan::CoreId;
use hp_linalg::convert::usize_to_f64;
use hp_linalg::Vector;

use crate::{RcThermalModel, Result, ThermalError};

/// The TSP budget for a specific mapping of active cores.
#[derive(Debug, Clone, PartialEq)]
pub struct TspBudget {
    /// Uniform per-core power budget (W) for the active cores.
    pub per_core_watts: f64,
    /// The junction that binds the budget (first to reach the threshold).
    pub critical_core: CoreId,
    /// Steady-state junction temperatures at exactly the budgeted power.
    pub temperatures: Vector,
}

/// Computes the TSP budget for the mapping `active`, with all remaining
/// cores drawing `idle_power` watts.
///
/// The model is affine in power, so the junction temperature of node `i`
/// at uniform active power `p` is
///
/// ```text
/// T_i(p) = amb_i + idle_i + p · S_i,   S_i = Σ_{j ∈ active} (B⁻¹)_{i,j}
/// ```
///
/// and the budget is `min_i (T_dtm − amb_i − idle_i) / S_i` over junctions
/// with `S_i > 0`.
///
/// # Errors
///
/// * [`ThermalError::EmptyActiveSet`] if `active` is empty.
/// * [`ThermalError::Floorplan`] for out-of-range core ids.
/// * [`ThermalError::InvalidParameter`] if the idle load alone already
///   violates the threshold (reported on `t_dtm`).
///
/// # Example
///
/// ```
/// use hp_floorplan::{CoreId, GridFloorplan};
/// use hp_thermal::{tsp, RcThermalModel, ThermalConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = GridFloorplan::new(4, 4)?;
/// let model = RcThermalModel::new(&fp, &ThermalConfig::default())?;
/// let budget = tsp::budget(&model, &[CoreId(5), CoreId(10)], 70.0, 0.3)?;
/// // Two active cores may burn a few watts each, but not peak power.
/// assert!(budget.per_core_watts > 1.0 && budget.per_core_watts < 7.0);
/// # Ok(())
/// # }
/// ```
pub fn budget(
    model: &RcThermalModel,
    active: &[CoreId],
    t_dtm: f64,
    idle_power: f64,
) -> Result<TspBudget> {
    if active.is_empty() {
        return Err(ThermalError::EmptyActiveSet);
    }
    let n = model.core_count();
    for &c in active {
        if c.index() >= n {
            return Err(ThermalError::Floorplan(
                hp_floorplan::FloorplanError::CoreOutOfRange {
                    core: c.index(),
                    cores: n,
                },
            ));
        }
    }

    // Baseline: ambient + idle power on the inactive cores (active cores
    // contribute 0 W in the baseline; their power is the unknown).
    let mut idle_map = Vector::constant(n, idle_power);
    for &c in active {
        idle_map[c.index()] = 0.0;
    }
    let baseline = model.steady_state(&idle_map)?;

    // Sensitivity S = B^{-1} · 1_active restricted to junction rows.
    let indicator = {
        let mut p = Vector::zeros(n);
        for &c in active {
            p[c.index()] = 1.0;
        }
        model.expand_power(&p)?
    };
    let sensitivity = model.b_lu().solve(&indicator)?;

    let mut best = f64::INFINITY;
    let mut critical = active[0];
    for i in 0..n {
        let s = sensitivity[i];
        if s <= 0.0 {
            continue;
        }
        let headroom = t_dtm - baseline[i];
        if headroom <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "t_dtm",
                value: t_dtm,
            });
        }
        let p = headroom / s;
        if p < best {
            best = p;
            critical = CoreId(i);
        }
    }

    // Temperatures at exactly the budget.
    let mut power = idle_map;
    for &c in active {
        power[c.index()] = best;
    }
    let temps = model.core_temperatures(&model.steady_state(&power)?);

    Ok(TspBudget {
        per_core_watts: best,
        critical_core: critical,
        temperatures: temps,
    })
}

/// Non-uniform per-core budgets for the mapping `active`: the
/// water-filling extension of TSP.
///
/// The uniform budget of [`budget`] is limited by the single most
/// constrained junction; cooler (peripheral) cores still have headroom.
/// This routine raises every active core's budget until *its own*
/// junction sits at the threshold, by fixed-point iteration on the affine
/// model:
///
/// ```text
/// p_i ← p_i + (T_dtm − T_i) / (B⁻¹)_{ii}
/// ```
///
/// The result allocates strictly more total power than the uniform
/// budget whenever the mapping is thermally heterogeneous — the
/// headroom a Pareto-optimal DVFS controller (PCGov) exploits.
///
/// Returns one budget per entry of `active` (same order).
///
/// # Errors
///
/// Same as [`budget`]; additionally [`ThermalError::InvalidParameter`]
/// (on `iterations`) if the fixed point fails to converge.
pub fn per_core_budgets(
    model: &RcThermalModel,
    active: &[CoreId],
    t_dtm: f64,
    idle_power: f64,
) -> Result<Vec<f64>> {
    // Start from the safe uniform budget.
    let uniform = budget(model, active, t_dtm, idle_power)?;
    let n = model.core_count();
    let mut p = Vector::constant(n, idle_power);
    for &c in active {
        p[c.index()] = uniform.per_core_watts;
    }
    // Diagonal sensitivities (B^{-1})_{ii} for the active junctions.
    let mut diag = vec![0.0; active.len()];
    for (k, &c) in active.iter().enumerate() {
        let mut unit = Vector::zeros(n);
        unit[c.index()] = 1.0;
        let expanded = model.expand_power(&unit)?;
        let col = model.b_lu().solve(&expanded)?;
        diag[k] = col[c.index()];
    }

    const MAX_ITERS: usize = 200;
    for _ in 0..MAX_ITERS {
        let t = model.steady_state(&p)?;
        let mut worst = 0.0f64;
        for (k, &c) in active.iter().enumerate() {
            let headroom = t_dtm - t[c.index()];
            worst = worst.max(headroom.abs());
            // Under-relaxed update keeps the coupled system stable.
            let next = (p[c.index()] + 0.8 * headroom / diag[k]).max(0.0);
            p[c.index()] = next;
        }
        if worst < 1e-6 {
            return Ok(active.iter().map(|c| p[c.index()]).collect());
        }
    }
    Err(ThermalError::InvalidParameter {
        name: "iterations",
        value: usize_to_f64(MAX_ITERS),
    })
}

/// TSP for the *worst-case* mapping of `k` active cores: the densest
/// packing around the die centre, which produces the tightest budget.
///
/// The original TSP paper computes the exact worst case by search; for a
/// symmetric grid the centre-packed mapping is the worst case, so we use it
/// directly (documented substitution — the schedulers only ever use
/// mapping-specific budgets, this is for reporting).
///
/// # Errors
///
/// Same as [`budget`]; additionally [`ThermalError::EmptyActiveSet`] if
/// `k == 0` and [`ThermalError::InvalidParameter`] if `k` exceeds the core
/// count.
pub fn worst_case_budget(
    model: &RcThermalModel,
    k: usize,
    t_dtm: f64,
    idle_power: f64,
) -> Result<TspBudget> {
    let n = model.core_count();
    if k == 0 {
        return Err(ThermalError::EmptyActiveSet);
    }
    if k > n {
        return Err(ThermalError::InvalidParameter {
            name: "k",
            value: usize_to_f64(k),
        });
    }
    // Pick the k cores with the highest steady-state self-coupling to the
    // centre: approximate by distance from the geometric centre index.
    // The model does not retain the floorplan, so use thermal sensitivity:
    // solve B^{-1} 1_all and take the k hottest junctions, which are the
    // centre cores by symmetry.
    let all = Vector::constant(n, 1.0);
    let expanded = model.expand_power(&all)?;
    let sens = model.b_lu().solve(&expanded)?;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| sens[b].total_cmp(&sens[a]));
    let active: Vec<CoreId> = order[..k].iter().map(|&i| CoreId(i)).collect();
    budget(model, &active, t_dtm, idle_power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThermalConfig;
    use hp_floorplan::GridFloorplan;

    fn model_4x4() -> RcThermalModel {
        let fp = GridFloorplan::new(4, 4).unwrap();
        RcThermalModel::new(&fp, &ThermalConfig::default()).unwrap()
    }

    #[test]
    fn budget_is_safe_and_tight() {
        let model = model_4x4();
        let b = budget(&model, &[CoreId(5), CoreId(10)], 70.0, 0.3).unwrap();
        // Safe: no junction exceeds the threshold at the budget...
        assert!(b.temperatures.max() <= 70.0 + 1e-6);
        // ...and tight: the critical junction sits exactly at it.
        assert!((b.temperatures.max() - 70.0).abs() < 1e-6);
    }

    #[test]
    fn more_active_cores_means_smaller_budget() {
        let model = model_4x4();
        let b2 = budget(&model, &[CoreId(5), CoreId(10)], 70.0, 0.3).unwrap();
        let b4 = budget(
            &model,
            &[CoreId(5), CoreId(6), CoreId(9), CoreId(10)],
            70.0,
            0.3,
        )
        .unwrap();
        assert!(b4.per_core_watts < b2.per_core_watts);
    }

    #[test]
    fn peripheral_mapping_gets_bigger_budget_than_center_packed() {
        // Under load (the regime the schedulers operate in), the die centre
        // is thermally constrained: a centre-packed mapping receives a
        // smaller budget than a peripheral one (paper Fig. 3).
        let model = model_4x4();
        let center8: Vec<CoreId> = [1usize, 2, 5, 6, 9, 10, 13, 14].map(CoreId).to_vec();
        let outer8: Vec<CoreId> = [0usize, 3, 4, 7, 8, 11, 12, 15].map(CoreId).to_vec();
        let bc = budget(&model, &center8, 70.0, 0.3).unwrap();
        let bo = budget(&model, &outer8, 70.0, 0.3).unwrap();
        assert!(bo.per_core_watts > bc.per_core_watts);
    }

    #[test]
    fn budget_grows_with_threshold() {
        let model = model_4x4();
        let lo = budget(&model, &[CoreId(5)], 65.0, 0.3).unwrap();
        let hi = budget(&model, &[CoreId(5)], 75.0, 0.3).unwrap();
        assert!(hi.per_core_watts > lo.per_core_watts);
    }

    #[test]
    fn empty_active_set_rejected() {
        let model = model_4x4();
        assert!(matches!(
            budget(&model, &[], 70.0, 0.3),
            Err(ThermalError::EmptyActiveSet)
        ));
    }

    #[test]
    fn out_of_range_core_rejected() {
        let model = model_4x4();
        assert!(budget(&model, &[CoreId(99)], 70.0, 0.3).is_err());
    }

    #[test]
    fn impossible_threshold_rejected() {
        let model = model_4x4();
        // Threshold below ambient can never be met.
        assert!(budget(&model, &[CoreId(5)], 40.0, 0.3).is_err());
    }

    #[test]
    fn worst_case_no_larger_than_peripheral() {
        let model = model_4x4();
        let wc = worst_case_budget(&model, 8, 70.0, 0.3).unwrap();
        let outer8: Vec<CoreId> = [0usize, 3, 4, 7, 8, 11, 12, 15].map(CoreId).to_vec();
        let outer = budget(&model, &outer8, 70.0, 0.3).unwrap();
        assert!(wc.per_core_watts <= outer.per_core_watts + 1e-9);
    }

    #[test]
    fn worst_case_full_chip_matches_all_active() {
        let model = model_4x4();
        let all: Vec<CoreId> = (0..16).map(CoreId).collect();
        let wc = worst_case_budget(&model, 16, 70.0, 0.3).unwrap();
        let direct = budget(&model, &all, 70.0, 0.3).unwrap();
        assert!((wc.per_core_watts - direct.per_core_watts).abs() < 1e-9);
    }

    #[test]
    fn per_core_budgets_saturate_every_junction() {
        let model = model_4x4();
        let active: Vec<CoreId> = [0usize, 5, 6, 15].map(CoreId).to_vec();
        let budgets = per_core_budgets(&model, &active, 70.0, 0.3).unwrap();
        // Applying the budgets puts every active junction at the threshold.
        let mut p = hp_linalg::Vector::constant(16, 0.3);
        for (k, &c) in active.iter().enumerate() {
            p[c.index()] = budgets[k];
        }
        let t = model.steady_state(&p).unwrap();
        for &c in &active {
            assert!(
                (t[c.index()] - 70.0).abs() < 1e-4,
                "core {c}: {}",
                t[c.index()]
            );
        }
        // And nothing else exceeds it.
        assert!(model.core_temperatures(&t).max() <= 70.0 + 1e-4);
    }

    #[test]
    fn per_core_budgets_beat_uniform_total() {
        let model = model_4x4();
        let active: Vec<CoreId> = [0usize, 5, 6, 15].map(CoreId).to_vec();
        let uniform = budget(&model, &active, 70.0, 0.3).unwrap();
        let budgets = per_core_budgets(&model, &active, 70.0, 0.3).unwrap();
        let total: f64 = budgets.iter().sum();
        assert!(total > uniform.per_core_watts * active.len() as f64);
        // Note: individual budgets need not all exceed the uniform one —
        // saturating the cool junctions heats the critical one, whose own
        // budget can dip slightly below uniform. The *total* gain is the
        // point.
    }

    #[test]
    fn per_core_budgets_favor_the_periphery() {
        let model = model_4x4();
        let active: Vec<CoreId> = [0usize, 5].map(CoreId).to_vec();
        let budgets = per_core_budgets(&model, &active, 70.0, 0.3).unwrap();
        // Corner core 0 cools better than centre core 5 under load-free
        // surroundings? With the edge bonuses it does at saturation.
        assert!(
            budgets[0] != budgets[1],
            "heterogeneous mapping must yield heterogeneous budgets"
        );
    }

    #[test]
    fn worst_case_bounds() {
        let model = model_4x4();
        assert!(matches!(
            worst_case_budget(&model, 0, 70.0, 0.3),
            Err(ThermalError::EmptyActiveSet)
        ));
        assert!(worst_case_budget(&model, 17, 70.0, 0.3).is_err());
    }
}
