use std::error::Error;
use std::fmt;

use hp_floorplan::FloorplanError;
use hp_linalg::LinalgError;

/// Errors produced by the thermal model and its solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A configuration parameter was non-physical (non-positive or NaN).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Its value.
        value: f64,
    },
    /// A power vector did not match the number of cores or nodes.
    PowerLengthMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// TSP was asked for a budget over an empty active set.
    EmptyActiveSet,
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// An underlying floorplan query failed.
    Floorplan(FloorplanError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidParameter { name, value } => {
                write!(f, "thermal parameter {name} has non-physical value {value}")
            }
            ThermalError::PowerLengthMismatch { expected, got } => {
                write!(
                    f,
                    "power vector length {got} does not match expected {expected}"
                )
            }
            ThermalError::EmptyActiveSet => {
                write!(f, "tsp budget requires a non-empty active core set")
            }
            ThermalError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            ThermalError::Floorplan(e) => write!(f, "floorplan failure: {e}"),
        }
    }
}

impl Error for ThermalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ThermalError::Linalg(e) => Some(e),
            ThermalError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ThermalError {
    fn from(e: LinalgError) -> Self {
        ThermalError::Linalg(e)
    }
}

impl From<FloorplanError> for ThermalError {
    fn from(e: FloorplanError) -> Self {
        ThermalError::Floorplan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ThermalError::Linalg(LinalgError::Singular { pivot: 0 });
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        assert!(ThermalError::EmptyActiveSet.source().is_none());
    }
}
