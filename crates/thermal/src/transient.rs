use hp_linalg::eigen::SystemEigen;
use hp_linalg::Vector;

use crate::{RcThermalModel, Result, ThermalError};

/// MatEx-style transient temperature solver.
///
/// Holds the eigendecomposition of `C = −A⁻¹B` once per model and evaluates
/// the exact solution of the linear ODE for piecewise-constant power
/// (paper Eq. 4):
///
/// ```text
/// T(t₀ + Δt) = T_steady(P) + e^{C·Δt} · (T(t₀) − T_steady(P))
/// ```
///
/// Because the power is constant inside a simulation interval, a single
/// [`step`](TransientSolver::step) is *exact* for that interval — no
/// time-discretization error — which is what lets the interval simulator
/// take millisecond steps safely.
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
/// use hp_thermal::{RcThermalModel, ThermalConfig, TransientSolver};
/// use hp_linalg::Vector;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = GridFloorplan::new(4, 4)?;
/// let model = RcThermalModel::new(&fp, &ThermalConfig::default())?;
/// let solver = TransientSolver::new(&model)?;
/// let mut power = Vector::constant(16, 0.3);
/// power[5] = 7.0;
/// // Starting at ambient, temperature climbs towards the steady state.
/// let t0 = model.ambient_state();
/// let t1 = solver.step(&model, &t0, &power, 0.001)?;
/// assert!(model.core_temperatures(&t1)[5] > 45.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSolver {
    eigen: SystemEigen,
}

impl TransientSolver {
    /// Builds the solver (one eigendecomposition of the model's `C`).
    ///
    /// # Errors
    ///
    /// Propagates eigendecomposition failures as [`ThermalError::Linalg`].
    pub fn new(model: &RcThermalModel) -> Result<Self> {
        let eigen = SystemEigen::new(model.a_diag(), model.b())?;
        Ok(TransientSolver { eigen })
    }

    /// The underlying eigendecomposition of `C = −A⁻¹B`.
    pub fn eigen(&self) -> &SystemEigen {
        &self.eigen
    }

    /// Advances the node state by `dt` seconds under a constant per-core
    /// power map.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] for wrong-length power.
    /// * [`ThermalError::InvalidParameter`] for a negative or non-finite `dt`.
    pub fn step(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        dt: f64,
    ) -> Result<Vector> {
        if !(dt.is_finite() && dt >= 0.0) {
            return Err(ThermalError::InvalidParameter {
                name: "dt",
                value: dt,
            });
        }
        let t_steady = model.steady_state(core_power)?;
        let deviation = node_temps - &t_steady;
        let decayed = self.eigen.exp_apply(dt, &deviation);
        Ok(&t_steady + &decayed)
    }

    /// Peak junction temperature (and the time it occurs) within
    /// `[0, horizon]` under constant power — the *peak detection* half of
    /// the MatEx solver the paper builds on.
    ///
    /// Each junction's trajectory is a sum of decaying exponentials
    /// `T_i(t) = T_ss,i + Σ_k V_ik·e^{λ_k t}·w_k`, which is smooth with few
    /// extrema; the maximum is located by coarse sampling followed by
    /// golden-section refinement of the best bracket, then compared with
    /// both endpoints.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] for a negative or non-finite
    ///   `horizon`.
    /// * Propagated solver errors.
    pub fn peak_within(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        horizon: f64,
    ) -> Result<(f64, f64)> {
        if !(horizon.is_finite() && horizon >= 0.0) {
            return Err(ThermalError::InvalidParameter {
                name: "horizon",
                value: horizon,
            });
        }
        let t_steady = model.steady_state(core_power)?;
        let deviation = node_temps - &t_steady;
        let w = self.eigen.v_inv().mul_vector(&deviation);
        let v = self.eigen.v();
        let lambda = self.eigen.eigenvalues();
        let cores = model.core_count();
        let nodes = model.node_count();

        // Hottest junction at time t.
        let peak_at = |t: f64| -> f64 {
            let mut best = f64::NEG_INFINITY;
            for c in 0..cores {
                let mut temp = t_steady[c];
                for k in 0..nodes {
                    temp += v[(c, k)] * (lambda[k] * t).exp() * w[k];
                }
                best = best.max(temp);
            }
            best
        };

        if horizon == 0.0 {
            return Ok((peak_at(0.0), 0.0));
        }

        // Coarse scan, then golden-section refinement of the best bracket.
        const SAMPLES: usize = 48;
        let mut best_t = 0.0;
        let mut best_v = f64::NEG_INFINITY;
        for s in 0..=SAMPLES {
            let t = horizon * s as f64 / SAMPLES as f64;
            let val = peak_at(t);
            if val > best_v {
                best_v = val;
                best_t = t;
            }
        }
        let step = horizon / SAMPLES as f64;
        let (mut lo, mut hi) = ((best_t - step).max(0.0), (best_t + step).min(horizon));
        const PHI: f64 = 0.618_033_988_749_894_8;
        for _ in 0..40 {
            let a = hi - PHI * (hi - lo);
            let b = lo + PHI * (hi - lo);
            if peak_at(a) < peak_at(b) {
                lo = a;
            } else {
                hi = b;
            }
        }
        let t_ref = 0.5 * (lo + hi);
        let v_ref = peak_at(t_ref);
        if v_ref > best_v {
            Ok((v_ref, t_ref))
        } else {
            Ok((best_v, best_t))
        }
    }

    /// Evaluates the full trajectory at `samples` evenly spaced instants in
    /// `(0, dt]` under constant power (useful for dense thermal traces).
    ///
    /// # Errors
    ///
    /// Same as [`step`](TransientSolver::step).
    pub fn trajectory(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        dt: f64,
        samples: usize,
    ) -> Result<Vec<Vector>> {
        if !(dt.is_finite() && dt >= 0.0) {
            return Err(ThermalError::InvalidParameter {
                name: "dt",
                value: dt,
            });
        }
        let t_steady = model.steady_state(core_power)?;
        let deviation = node_temps - &t_steady;
        let mut out = Vec::with_capacity(samples);
        for k in 1..=samples {
            let t = dt * k as f64 / samples as f64;
            let decayed = self.eigen.exp_apply(t, &deviation);
            out.push(&t_steady + &decayed);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThermalConfig;
    use hp_floorplan::GridFloorplan;

    fn setup() -> (RcThermalModel, TransientSolver) {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let model = RcThermalModel::new(&fp, &ThermalConfig::default()).unwrap();
        let solver = TransientSolver::new(&model).unwrap();
        (model, solver)
    }

    #[test]
    fn zero_dt_is_identity() {
        let (model, solver) = setup();
        let t0 = model.ambient_state();
        let p = Vector::constant(16, 2.0);
        let t1 = solver.step(&model, &t0, &p, 0.0).unwrap();
        assert!((&t1 - &t0).norm_inf() < 1e-9);
    }

    #[test]
    fn long_step_reaches_steady_state() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let t_inf = solver
            .step(&model, &model.ambient_state(), &p, 1e4)
            .unwrap();
        let t_ss = model.steady_state(&p).unwrap();
        assert!((&t_inf - &t_ss).norm_inf() < 1e-6);
    }

    #[test]
    fn two_half_steps_equal_one_full_step() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[0] = 5.0;
        let t0 = model.ambient_state();
        let full = solver.step(&model, &t0, &p, 0.002).unwrap();
        let half = solver.step(&model, &t0, &p, 0.001).unwrap();
        let two = solver.step(&model, &half, &p, 0.001).unwrap();
        assert!((&full - &two).norm_inf() < 1e-9);
    }

    #[test]
    fn heating_is_monotone_from_ambient() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let mut t = model.ambient_state();
        let mut last_peak = model.core_temperatures(&t).max();
        for _ in 0..20 {
            t = solver.step(&model, &t, &p, 0.001).unwrap();
            let peak = model.core_temperatures(&t).max();
            assert!(peak >= last_peak - 1e-12);
            last_peak = peak;
        }
        assert!(last_peak > 46.0);
    }

    #[test]
    fn cooling_after_power_off() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let hot = solver
            .step(&model, &model.ambient_state(), &p, 10.0)
            .unwrap();
        let cooled = solver.step(&model, &hot, &Vector::zeros(16), 10.0).unwrap();
        assert!(model.core_temperatures(&cooled).max() < model.core_temperatures(&hot).max());
    }

    #[test]
    fn negative_dt_rejected() {
        let (model, solver) = setup();
        assert!(solver
            .step(&model, &model.ambient_state(), &Vector::zeros(16), -1.0)
            .is_err());
    }

    #[test]
    fn trajectory_endpoint_matches_step() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[10] = 6.0;
        let t0 = model.ambient_state();
        let traj = solver.trajectory(&model, &t0, &p, 0.004, 4).unwrap();
        let end = solver.step(&model, &t0, &p, 0.004).unwrap();
        assert_eq!(traj.len(), 4);
        assert!((traj.last().unwrap() - &end).norm_inf() < 1e-9);
    }

    #[test]
    fn peak_within_matches_dense_sampling() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        // Start HOT on a different core so the trajectory has an interior
        // structure (core 10 cools while core 5 heats).
        let mut hot = Vector::constant(16, 0.3);
        hot[10] = 7.0;
        let t0 = solver
            .step(&model, &model.ambient_state(), &hot, 10.0)
            .unwrap();
        let horizon = 20e-3;
        let (peak, at) = solver.peak_within(&model, &t0, &p, horizon).unwrap();
        // Dense reference.
        let mut reference = f64::NEG_INFINITY;
        for s in 0..=2000 {
            let t = horizon * s as f64 / 2000.0;
            let state = solver.step(&model, &t0, &p, t).unwrap();
            reference = reference.max(model.core_temperatures(&state).max());
        }
        assert!(
            (peak - reference).abs() < 0.02,
            "peak {peak:.3} vs dense reference {reference:.3}"
        );
        assert!((0.0..=horizon).contains(&at));
    }

    #[test]
    fn peak_within_heating_run_is_at_horizon() {
        // Pure heating from ambient: the maximum sits at the end.
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let horizon = 5e-3;
        let (peak, at) = solver
            .peak_within(&model, &model.ambient_state(), &p, horizon)
            .unwrap();
        let end = solver
            .step(&model, &model.ambient_state(), &p, horizon)
            .unwrap();
        assert!((peak - model.core_temperatures(&end).max()).abs() < 1e-6);
        assert!((at - horizon).abs() < horizon * 0.05);
    }

    #[test]
    fn peak_within_cooling_run_is_at_start() {
        // Cooling after power-off: the maximum sits at t = 0.
        let (model, solver) = setup();
        let mut hot_p = Vector::constant(16, 0.3);
        hot_p[5] = 7.0;
        let hot = solver
            .step(&model, &model.ambient_state(), &hot_p, 10.0)
            .unwrap();
        let (peak, at) = solver
            .peak_within(&model, &hot, &Vector::zeros(16), 10e-3)
            .unwrap();
        assert!((peak - model.core_temperatures(&hot).max()).abs() < 1e-6);
        assert!(at < 1e-3);
    }

    #[test]
    fn peak_within_rejects_bad_horizon() {
        let (model, solver) = setup();
        assert!(solver
            .peak_within(&model, &model.ambient_state(), &Vector::zeros(16), -1.0)
            .is_err());
    }

    #[test]
    fn junction_time_constant_observed() {
        // After one junction time constant the deviation towards steady
        // state should have decayed noticeably (but not fully).
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let tau = model.config().junction_time_constant();
        let t = solver
            .step(&model, &model.ambient_state(), &p, tau)
            .unwrap();
        let t_ss = model.steady_state(&p).unwrap();
        let progress = (t[5] - 45.0) / (t_ss[5] - 45.0);
        assert!(progress > 0.3 && progress < 0.95, "progress {progress:.2}");
    }
}
