use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hp_linalg::convert::usize_to_f64;
use hp_linalg::eigen::SystemEigen;
use hp_linalg::{Matrix, NumericalError, Vector};

use crate::{DenseStepper, RcThermalModel, Result, ThermalError, CONDITION_FALLBACK_THRESHOLD};

/// Distinct `dt` values cached per solver; an interval simulator steps at
/// one fixed `dt` (plus the occasional trace sub-step), so the cap only
/// guards against pathological churn.
const DECAY_CACHE_CAP: usize = 64;

/// Solver outputs may undershoot ambient by round-off but never by a
/// degree; anything below trips the runtime invariant guard.
const GUARD_SLACK_CELSIUS: f64 = 1.0;

/// Physical ceiling above ambient: no silicon the model describes
/// survives a kilokelvin rise, so an eigen-path output beyond it is
/// numerical garbage, not physics.
const GUARD_CEILING_RISE_CELSIUS: f64 = 1000.0;

/// Basis residual `‖V·V⁻¹ − I‖∞` beyond which the eigendecomposition is
/// not trusted even if the eigenvalue spread looks acceptable.
const BASIS_RESIDUAL_THRESHOLD: f64 = 1e-6;

/// Snapshot of a solver's internal activity tallies, taken with
/// [`TransientSolver::stats`]. All values count events since
/// construction (or the last [`TransientSolver::reset_stats`]) and are
/// seed-deterministic: they depend only on the sequence of solver calls,
/// never on wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransientStats {
    /// Batched kernel invocations ([`TransientSolver::step_many`],
    /// including the batch-of-one [`TransientSolver::step`] path).
    pub batch_calls: u64,
    /// Total `(state, power)` pairs pushed through the batched kernel.
    pub batched_states: u64,
    /// Decay-factor lookups served from the per-`dt` cache.
    pub decay_cache_hits: u64,
    /// Decay-factor lookups that had to compute `N` fresh exponentials.
    pub decay_cache_misses: u64,
}

/// Interior-mutable counter cells behind [`TransientStats`].
#[derive(Debug, Default)]
struct StatsCells {
    batch_calls: AtomicU64,
    batched_states: AtomicU64,
    decay_cache_hits: AtomicU64,
    decay_cache_misses: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> TransientStats {
        TransientStats {
            // xtask: allow(relaxed) — monotonic tallies; snapshots are
            // taken between batches, so ordering carries no information.
            batch_calls: self.batch_calls.load(Ordering::Relaxed),
            batched_states: self.batched_states.load(Ordering::Relaxed),
            decay_cache_hits: self.decay_cache_hits.load(Ordering::Relaxed),
            decay_cache_misses: self.decay_cache_misses.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        let cells = [
            &self.batch_calls,
            &self.batched_states,
            &self.decay_cache_hits,
            &self.decay_cache_misses,
        ];
        for cell in cells {
            // xtask: allow(relaxed) — counters are zeroed between measured
            // runs, while no solver calls are in flight.
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn restore(&self, stats: TransientStats) {
        let cells = [
            (&self.batch_calls, stats.batch_calls),
            (&self.batched_states, stats.batched_states),
            (&self.decay_cache_hits, stats.decay_cache_hits),
            (&self.decay_cache_misses, stats.decay_cache_misses),
        ];
        for (cell, value) in cells {
            // xtask: allow(relaxed) — counters are overwritten between
            // measured runs (checkpoint resume), while no solver calls
            // are in flight.
            cell.store(value, Ordering::Relaxed);
        }
    }
}

/// Numerical-integrity tallies of a solver, taken with
/// [`TransientSolver::numerics`]. Like [`TransientStats`] these are
/// seed-deterministic: they depend only on the model and the call
/// sequence, never on timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NumericsStats {
    /// Episodes of dense-fallback engagement: incremented when the first
    /// fallback step after construction (or a stats reset/restore) runs.
    /// `≥ 1` in a run report means the run's temperatures came (at least
    /// partly) from the backward-Euler path.
    pub fallback_activations: u64,
    /// `(state, power)` pairs advanced by the dense fallback stepper.
    pub fallback_steps: u64,
    /// Runtime invariant-guard trips: eigen-path outputs that were
    /// non-finite or outside the physical envelope and triggered a dense
    /// recomputation.
    pub guard_trips: u64,
}

/// Interior-mutable counter cells behind [`NumericsStats`].
#[derive(Debug, Default)]
struct NumericsCells {
    fallback_activations: AtomicU64,
    fallback_steps: AtomicU64,
    guard_trips: AtomicU64,
}

impl NumericsCells {
    fn snapshot(&self) -> NumericsStats {
        NumericsStats {
            // xtask: allow(relaxed) — monotonic tallies; snapshots are
            // taken between batches, so ordering carries no information.
            fallback_activations: self.fallback_activations.load(Ordering::Relaxed),
            fallback_steps: self.fallback_steps.load(Ordering::Relaxed),
            guard_trips: self.guard_trips.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for cell in [
            &self.fallback_activations,
            &self.fallback_steps,
            &self.guard_trips,
        ] {
            // xtask: allow(relaxed) — counters are zeroed between measured
            // runs, while no solver calls are in flight.
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn restore(&self, stats: NumericsStats) {
        let cells = [
            (&self.fallback_activations, stats.fallback_activations),
            (&self.fallback_steps, stats.fallback_steps),
            (&self.guard_trips, stats.guard_trips),
        ];
        for (cell, value) in cells {
            // xtask: allow(relaxed) — counters are overwritten between
            // measured runs (checkpoint resume), while no solver calls
            // are in flight.
            cell.store(value, Ordering::Relaxed);
        }
    }
}

/// MatEx-style transient temperature solver.
///
/// Holds the eigendecomposition of `C = −A⁻¹B` once per model and evaluates
/// the exact solution of the linear ODE for piecewise-constant power
/// (paper Eq. 4):
///
/// ```text
/// T(t₀ + Δt) = T_steady(P) + e^{C·Δt} · (T(t₀) − T_steady(P))
/// ```
///
/// Because the power is constant inside a simulation interval, a single
/// [`step`](TransientSolver::step) is *exact* for that interval — no
/// time-discretization error — which is what lets the interval simulator
/// take millisecond steps safely.
///
/// # Batch evaluation
///
/// Every entry point funnels through the same row-stacked batched kernel
/// (the layout of `hotpotato`'s `peak_celsius_many`): states are packed as
/// contiguous rows, mapped to eigen space with one GEMM against `V⁻¹ᵀ`,
/// scaled by the cached decay factors `e^{λΔt}`, and mapped back with one
/// GEMM against `Vᵀ`. Because the register-tiled GEMM accumulates each
/// output element in ascending inner-index order — the same order as the
/// scalar dot products — the batched results are bit-identical to the
/// serial mat-vec forms (kept as [`step_reference`] /
/// [`trajectory_reference`] for differential testing). Decay vectors are
/// cached per distinct `dt`, so an interval simulator computes the `N`
/// exponentials once instead of every interval.
///
/// [`step_reference`]: TransientSolver::step_reference
/// [`trajectory_reference`]: TransientSolver::trajectory_reference
///
/// # Example
///
/// ```
/// use hp_floorplan::GridFloorplan;
/// use hp_thermal::{RcThermalModel, ThermalConfig, TransientSolver};
/// use hp_linalg::Vector;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = GridFloorplan::new(4, 4)?;
/// let model = RcThermalModel::new(&fp, &ThermalConfig::default())?;
/// let solver = TransientSolver::new(&model)?;
/// let mut power = Vector::constant(16, 0.3);
/// power[5] = 7.0;
/// // Starting at ambient, temperature climbs towards the steady state.
/// let t0 = model.ambient_state();
/// let t1 = solver.step(&model, &t0, &power, 0.001)?;
/// assert!(model.core_temperatures(&t1)[5] > 45.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TransientSolver {
    eigen: SystemEigen,
    /// `Vᵀ`: right-hand side of the eigen-to-node GEMM over row-stacked
    /// batch states.
    v_t: Matrix,
    /// `V⁻¹ᵀ`: right-hand side of the node-to-eigen GEMM.
    v_inv_t: Matrix,
    /// `dt.to_bits() → e^{λ·dt}`, cached because an interval simulator
    /// steps at one fixed `dt`.
    decay_cache: Mutex<BTreeMap<u64, Arc<Vector>>>,
    /// Activity tallies for run reports ([`TransientSolver::stats`]).
    stats: StatsCells,
    /// Construction-time verdict: the eigendecomposition's spread or
    /// basis residual exceeded its trust threshold, so every step routes
    /// through the dense fallback from the start. Immutable — it is a
    /// property of the model, not of the run.
    armed: bool,
    /// Runtime verdict: an invariant guard tripped on an eigen-path
    /// output. Sticky by design — once the fast path has produced
    /// garbage on this model there is no evidence later steps would not.
    tripped: AtomicBool,
    /// `dt.to_bits() → DenseStepper`, lazily factorized per step length
    /// for the fallback path.
    dense_cache: Mutex<BTreeMap<u64, Arc<DenseStepper>>>,
    /// Numerical-integrity tallies ([`TransientSolver::numerics`]).
    numerics: NumericsCells,
}

impl Clone for TransientSolver {
    fn clone(&self) -> Self {
        let cache = self
            .decay_cache
            .lock()
            .map(|c| c.clone())
            .unwrap_or_default();
        TransientSolver {
            eigen: self.eigen.clone(),
            v_t: self.v_t.clone(),
            v_inv_t: self.v_inv_t.clone(),
            decay_cache: Mutex::new(cache),
            // A clone starts its own tally: stats describe what *this*
            // handle performed, not its ancestry.
            stats: StatsCells::default(),
            armed: self.armed,
            // The degradation verdict is inherited: it describes the
            // model, and a clone steps the same model.
            // xtask: allow(relaxed) — single flag, no ordering payload.
            tripped: AtomicBool::new(self.tripped.load(Ordering::Relaxed)),
            dense_cache: Mutex::new(BTreeMap::new()),
            numerics: NumericsCells::default(),
        }
    }
}

impl TransientSolver {
    /// Builds the solver (one eigendecomposition of the model's `C`).
    ///
    /// # Errors
    ///
    /// Propagates eigendecomposition failures as [`ThermalError::Linalg`].
    pub fn new(model: &RcThermalModel) -> Result<Self> {
        let eigen = SystemEigen::new(model.a_diag(), model.b())?;
        Ok(Self::with_eigen(eigen))
    }

    /// Builds the solver from a prebuilt eigendecomposition of the
    /// model's `C = −A⁻¹B`, skipping the factorization entirely.
    ///
    /// This is the cache-handle constructor: a sweep runner that
    /// factorizes each chip configuration once can hand every job a
    /// solver derived from the shared [`SystemEigen`] instead of paying
    /// the decomposition per job. The eigendecomposition must belong to
    /// the model the solver is later stepped with — a mismatch produces
    /// meaningless temperatures (not unsoundness).
    pub fn with_eigen(eigen: SystemEigen) -> Self {
        let v_t = eigen.v().transpose();
        let v_inv_t = eigen.v_inv().transpose();
        // Construction-time trust verdict on the fast path: an eigenvalue
        // spread beyond the condition threshold or a basis that fails to
        // invert cleanly means eigen-path outputs cannot be trusted, so
        // the solver routes through the dense fallback from step one.
        let armed = eigen.eigenvalue_spread() >= CONDITION_FALLBACK_THRESHOLD
            || eigen.basis_residual() > BASIS_RESIDUAL_THRESHOLD;
        TransientSolver {
            eigen,
            v_t,
            v_inv_t,
            decay_cache: Mutex::new(BTreeMap::new()),
            stats: StatsCells::default(),
            armed,
            tripped: AtomicBool::new(false),
            dense_cache: Mutex::new(BTreeMap::new()),
            numerics: NumericsCells::default(),
        }
    }

    /// Whether solver calls currently route through the dense
    /// backward-Euler fallback instead of the eigen fast path — either
    /// because the eigendecomposition failed its construction-time trust
    /// checks (`armed`) or because a runtime invariant guard tripped on an
    /// eigen-path output (`tripped`, sticky for the solver's lifetime).
    pub fn degraded(&self) -> bool {
        // xtask: allow(relaxed) — single sticky flag, no ordering payload.
        self.armed || self.tripped.load(Ordering::Relaxed)
    }

    /// Snapshot of the numerical-integrity tallies (fallback activations
    /// and steps, guard trips) since construction or the last
    /// [`reset_stats`](TransientSolver::reset_stats).
    pub fn numerics(&self) -> NumericsStats {
        self.numerics.snapshot()
    }

    /// Overwrites the numerical-integrity tallies with a previously
    /// captured [`NumericsStats`] — the checkpoint-resume path, mirroring
    /// [`restore_stats`](TransientSolver::restore_stats).
    pub fn restore_numerics(&self, stats: NumericsStats) {
        self.numerics.restore(stats);
    }

    /// The underlying eigendecomposition of `C = −A⁻¹B`.
    pub fn eigen(&self) -> &SystemEigen {
        &self.eigen
    }

    /// Snapshot of the solver's activity tallies (batch counts,
    /// decay-cache hits/misses) since construction or the last
    /// [`reset_stats`](TransientSolver::reset_stats).
    pub fn stats(&self) -> TransientStats {
        self.stats.snapshot()
    }

    /// Zeroes the activity and numerical-integrity tallies (start of a
    /// new measured run). The sticky degradation flag is *not* cleared:
    /// a guard trip indicts the model's eigendecomposition, not the run.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.numerics.reset();
    }

    /// Overwrites the activity tallies with a previously captured
    /// [`TransientStats`] — the checkpoint-resume path, where the
    /// resumed run must report the same cumulative counters as an
    /// uninterrupted one. Call after any cache warming so the restored
    /// values are not perturbed by warm-up lookups.
    pub fn restore_stats(&self, stats: TransientStats) {
        self.stats.restore(stats);
    }

    /// Precomputes (and caches) the decay factors for one step length,
    /// counting the usual hit/miss. A resuming run warms the cache for
    /// its fixed `dt` *before* restoring stats so the resumed counter
    /// stream matches an uninterrupted run's.
    pub fn warm_decay_cache(&self, dt: f64) {
        let _ = self.decay_for(dt);
    }

    /// Cached decay factors `e^{λᵢ·dt}` for one step length.
    fn decay_for(&self, dt: f64) -> Arc<Vector> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the cache holds immutable Arcs, so its contents stay valid.
        let mut cache = self
            .decay_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(m) = cache.get(&dt.to_bits()) {
            // xtask: allow(relaxed) — cache tally, read only via snapshot().
            self.stats.decay_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(m);
        }
        // xtask: allow(relaxed) — cache tally, read only via snapshot().
        self.stats
            .decay_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        if cache.len() >= DECAY_CACHE_CAP {
            cache.clear();
        }
        let lambda = self.eigen.eigenvalues();
        let m = Arc::new(Vector::from_fn(lambda.len(), |i| (lambda[i] * dt).exp()));
        cache.insert(dt.to_bits(), Arc::clone(&m));
        m
    }

    fn check_dt(dt: f64, name: &'static str) -> Result<()> {
        if !(dt.is_finite() && dt >= 0.0) {
            return Err(ThermalError::InvalidParameter { name, value: dt });
        }
        Ok(())
    }

    /// Rejects non-finite state or power input at the API boundary: a NaN
    /// fed into the exponential kernel propagates silently through every
    /// GEMM, so it is cheaper and clearer to name the offender up front.
    fn check_finite(vector: &Vector, what: &'static str) -> Result<()> {
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(ThermalError::Linalg(
                NumericalError::NonFinite { what }.into(),
            ));
        }
        Ok(())
    }

    fn check_pairs_finite(pairs: &[(&Vector, &Vector)]) -> Result<()> {
        for (temps, power) in pairs {
            Self::check_finite(temps, "input node temperatures")?;
            Self::check_finite(power, "input core power")?;
        }
        Ok(())
    }

    /// Whether an eigen-path output violates the physical envelope: every
    /// node temperature must be finite and within
    /// `[ambient − GUARD_SLACK, ambient + GUARD_CEILING_RISE]`.
    fn violates_envelope(model: &RcThermalModel, temps: &Vector) -> bool {
        let lo = model.config().ambient - GUARD_SLACK_CELSIUS;
        let hi = model.config().ambient + GUARD_CEILING_RISE_CELSIUS;
        temps.iter().any(|&v| !v.is_finite() || v < lo || v > hi)
    }

    /// Cached dense fallback stepper for one step length.
    fn dense_for(&self, model: &RcThermalModel, dt: f64) -> Result<Arc<DenseStepper>> {
        // Poisoned-lock policy matches decay_for: contents stay valid.
        let mut cache = self
            .dense_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(s) = cache.get(&dt.to_bits()) {
            return Ok(Arc::clone(s));
        }
        if cache.len() >= DECAY_CACHE_CAP {
            cache.clear();
        }
        let stepper = Arc::new(DenseStepper::new(model, dt)?);
        cache.insert(dt.to_bits(), Arc::clone(&stepper));
        Ok(stepper)
    }

    /// Dense-fallback form of [`step_many`](TransientSolver::step_many):
    /// backward-Euler stepping through the cached [`DenseStepper`],
    /// counting fallback steps and (on the first step after construction
    /// or a stats reset) one activation episode.
    fn step_many_dense(
        &self,
        model: &RcThermalModel,
        pairs: &[(&Vector, &Vector)],
        dt: f64,
    ) -> Result<Vec<Vector>> {
        if dt == 0.0 {
            // The exact solution is the identity at dt = 0; the dense
            // stepper cannot be factorized for it, and needn't be.
            return Ok(pairs.iter().map(|(t, _)| (*t).clone()).collect());
        }
        // xtask: allow(relaxed) — monotonic tallies, read via snapshot().
        if self.numerics.fallback_steps.load(Ordering::Relaxed) == 0 {
            // First dense step of this measured run: one activation
            // episode. Counting episodes (not steps) keeps the counter
            // deterministic across batch-size choices.
            // xtask: allow(relaxed) — monotonic tally.
            self.numerics
                .fallback_activations
                .fetch_add(1, Ordering::Relaxed);
        }
        let stepper = self.dense_for(model, dt)?;
        let mut out = Vec::with_capacity(pairs.len());
        for (temps, power) in pairs {
            let forcing = model.forcing(power)?;
            let next = stepper.step(temps, &forcing)?;
            Self::check_finite(&next, "dense fallback output")?;
            out.push(next);
        }
        // xtask: allow(cast) — usize→u64 is lossless on every supported
        // target.
        // xtask: allow(relaxed) — monotonic tally, read via snapshot().
        self.numerics
            .fallback_steps
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Advances the node state by `dt` seconds under a constant per-core
    /// power map.
    ///
    /// This is the batched kernel applied to a batch of one — see
    /// [`step_many`](TransientSolver::step_many) for the layout — so the
    /// interval simulator's per-step cost is two thin GEMM rows plus one
    /// cached-decay lookup instead of `N` exponentials per interval.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] for wrong-length power.
    /// * [`ThermalError::InvalidParameter`] for a negative or non-finite `dt`.
    pub fn step(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        dt: f64,
    ) -> Result<Vector> {
        let mut out = self.step_many(model, &[(node_temps, core_power)], dt)?;
        // xtask: allow(panic) — step_many returns exactly one state per
        // input pair, so a batch of one always pops.
        Ok(out.pop().expect("batch of one"))
    }

    /// Advances many independent `(state, power)` pairs by the same `dt`
    /// in one batched evaluation, agreeing with per-pair
    /// [`step`](TransientSolver::step) calls bit for bit.
    ///
    /// The deviations `T − T_steady(P)` are row-stacked into a `B × N`
    /// matrix, one GEMM against `V⁻¹ᵀ` maps the whole batch to eigen
    /// space, the rows are scaled by the cached decay `e^{λ·dt}`, and one
    /// GEMM against `Vᵀ` maps back. Transposing both GEMM operands leaves
    /// every dot product's terms and their ascending-`k` order unchanged,
    /// which is why the batch is bit-identical to the serial
    /// [`step_reference`](TransientSolver::step_reference) form.
    ///
    /// # Degradation
    ///
    /// On a [`degraded`](TransientSolver::degraded) solver the batch is
    /// advanced by the dense backward-Euler fallback instead (counted in
    /// [`numerics`](TransientSolver::numerics)). On a healthy solver the
    /// eigen outputs are checked against the physical envelope
    /// (finite, within `[ambient − 1 °C, ambient + 1000 °C]`); a
    /// violation trips the sticky degradation flag and the batch is
    /// recomputed densely.
    ///
    /// # Errors
    ///
    /// Same as [`step`](TransientSolver::step), applied to every pair;
    /// additionally [`ThermalError::Linalg`] wrapping
    /// [`NumericalError::NonFinite`] for non-finite input temperatures or
    /// power.
    pub fn step_many(
        &self,
        model: &RcThermalModel,
        pairs: &[(&Vector, &Vector)],
        dt: f64,
    ) -> Result<Vec<Vector>> {
        Self::check_dt(dt, "dt")?;
        Self::check_pairs_finite(pairs)?;
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        // xtask: allow(relaxed) — activity tally, read only via snapshot().
        self.stats.batch_calls.fetch_add(1, Ordering::Relaxed);
        // xtask: allow(cast) — usize→u64 is lossless on every supported
        // target.
        // xtask: allow(relaxed) — activity tally, read only via snapshot().
        self.stats
            .batched_states
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        if self.degraded() {
            return self.step_many_dense(model, pairs, dt);
        }
        let n = self.eigen.dim();
        let m = self.decay_for(dt);

        let mut steadies = Vec::with_capacity(pairs.len());
        let mut dev = Matrix::zeros(pairs.len(), n);
        for (r, (temps, power)) in pairs.iter().enumerate() {
            let t_steady = model.steady_state(power)?;
            let row = dev.row_mut(r);
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = temps[i] - t_steady[i];
            }
            steadies.push(t_steady);
        }

        let mut y = dev.mul_matrix(&self.v_inv_t)?; // B × N, eigen space
        for r in 0..pairs.len() {
            for (v, &mi) in y.row_mut(r).iter_mut().zip(m.iter()) {
                *v *= mi;
            }
        }
        let decayed = y.mul_matrix(&self.v_t)?; // B × N, node space

        let out: Vec<Vector> = steadies
            .into_iter()
            .enumerate()
            .map(|(r, t_steady)| Vector::from_fn(n, |i| t_steady[i] + decayed[(r, i)]))
            .collect();

        // Runtime invariant guard: an eigen output outside the physical
        // envelope is numerical garbage. Trip the sticky flag and redo
        // the whole batch densely — the dense result is authoritative.
        if out.iter().any(|t| Self::violates_envelope(model, t)) {
            // xtask: allow(relaxed) — monotonic tally, read via snapshot().
            self.numerics.guard_trips.fetch_add(1, Ordering::Relaxed);
            // xtask: allow(relaxed) — single sticky flag.
            self.tripped.store(true, Ordering::Relaxed);
            return self.step_many_dense(model, pairs, dt);
        }
        Ok(out)
    }

    /// Serial mat-vec form of [`step`](TransientSolver::step) — the
    /// textbook evaluation `T_steady + V·e^{Λdt}·V⁻¹·(T − T_steady)` with
    /// per-call exponentials and no batching. Kept as the differential-
    /// testing reference the batched kernel must match bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`step`](TransientSolver::step).
    #[doc(hidden)]
    pub fn step_reference(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        dt: f64,
    ) -> Result<Vector> {
        Self::check_dt(dt, "dt")?;
        Self::check_finite(node_temps, "input node temperatures")?;
        Self::check_finite(core_power, "input core power")?;
        let t_steady = model.steady_state(core_power)?;
        let deviation = node_temps - &t_steady;
        let decayed = self.eigen.exp_apply(dt, &deviation);
        Ok(&t_steady + &decayed)
    }

    /// Peak junction temperature (and the time it occurs) within
    /// `[0, horizon]` under constant power — the *peak detection* half of
    /// the MatEx solver the paper builds on.
    ///
    /// Each junction's trajectory is a sum of decaying exponentials
    /// `T_i(t) = T_ss,i + Σ_k V_ik·e^{λ_k t}·w_k`, which is smooth with few
    /// extrema; the maximum is located by a coarse scan (all sample
    /// instants row-stacked through one GEMM) followed by golden-section
    /// refinement of the best bracket, then compared with both endpoints.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] for a negative or non-finite
    ///   `horizon`.
    /// * Propagated solver errors.
    pub fn peak_within(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        horizon: f64,
    ) -> Result<(f64, f64)> {
        Self::check_dt(horizon, "horizon")?;
        Self::check_finite(node_temps, "input node temperatures")?;
        Self::check_finite(core_power, "input core power")?;
        if self.degraded() {
            return self.peak_within_dense(model, node_temps, core_power, horizon);
        }
        let t_steady = model.steady_state(core_power)?;
        let deviation = node_temps - &t_steady;
        let w = self.eigen.v_inv().mul_vector(&deviation);
        let v = self.eigen.v();
        let lambda = self.eigen.eigenvalues();
        let cores = model.core_count();
        let nodes = model.node_count();

        // Hottest junction at time t. The modal terms are grouped as
        // v·(e^{λt}·w) — the same grouping and ascending-k accumulation as
        // the batched coarse scan below, so the two agree bit for bit.
        let peak_at = |t: f64| -> f64 {
            let mut best = f64::NEG_INFINITY;
            for c in 0..cores {
                let mut acc = 0.0;
                for k in 0..nodes {
                    acc += v[(c, k)] * ((lambda[k] * t).exp() * w[k]);
                }
                best = best.max(t_steady[c] + acc);
            }
            best
        };

        if horizon == 0.0 {
            return Ok((peak_at(0.0), 0.0));
        }

        // Coarse scan: row-stack the decayed eigen states of every sample
        // instant and reconstruct all junction trajectories with one GEMM.
        const SAMPLES: usize = 48;
        let mut e = Matrix::zeros(SAMPLES + 1, nodes);
        for s in 0..=SAMPLES {
            let t = horizon * usize_to_f64(s) / usize_to_f64(SAMPLES);
            let row = e.row_mut(s);
            for (k, slot) in row.iter_mut().enumerate() {
                *slot = (lambda[k] * t).exp() * w[k];
            }
        }
        let traj = e.mul_matrix(&self.v_t)?; // (SAMPLES+1) × nodes
        let mut best_t = 0.0;
        let mut best_v = f64::NEG_INFINITY;
        for s in 0..=SAMPLES {
            let row = traj.row(s);
            let mut val = f64::NEG_INFINITY;
            for c in 0..cores {
                val = val.max(t_steady[c] + row[c]);
            }
            if val > best_v {
                best_v = val;
                best_t = horizon * usize_to_f64(s) / usize_to_f64(SAMPLES);
            }
        }

        // Golden-section refinement of the winning bracket.
        let step = horizon / usize_to_f64(SAMPLES);
        let (mut lo, mut hi) = ((best_t - step).max(0.0), (best_t + step).min(horizon));
        const PHI: f64 = 0.618_033_988_749_894_8;
        for _ in 0..40 {
            let a = hi - PHI * (hi - lo);
            let b = lo + PHI * (hi - lo);
            if peak_at(a) < peak_at(b) {
                lo = a;
            } else {
                hi = b;
            }
        }
        let t_ref = 0.5 * (lo + hi);
        let v_ref = peak_at(t_ref);
        let (peak, at) = if v_ref > best_v {
            (v_ref, t_ref)
        } else {
            (best_v, best_t)
        };
        // Both candidate times come from rounded arithmetic — the scan
        // instants `horizon·s/S` and the bracket midpoint `(lo+hi)/2` can
        // each land one ULP past `horizon`; clamp so the reported peak
        // time honours the `[0, horizon]` contract exactly.
        let at = at.clamp(0.0, horizon);
        // Runtime invariant guard on the scalar result (the trajectories
        // above are eigen reconstructions too).
        let lo_ok = model.config().ambient - GUARD_SLACK_CELSIUS;
        let hi_ok = model.config().ambient + GUARD_CEILING_RISE_CELSIUS;
        if !peak.is_finite() || peak < lo_ok || peak > hi_ok {
            // xtask: allow(relaxed) — monotonic tally, read via snapshot().
            self.numerics.guard_trips.fetch_add(1, Ordering::Relaxed);
            // xtask: allow(relaxed) — single sticky flag.
            self.tripped.store(true, Ordering::Relaxed);
            return self.peak_within_dense(model, node_temps, core_power, horizon);
        }
        Ok((peak, at))
    }

    /// Dense-fallback form of [`peak_within`](TransientSolver::peak_within):
    /// a backward-Euler sampling scan over the horizon. No golden-section
    /// refinement — the dense path trades the last digit of peak-time
    /// precision for unconditional stability.
    fn peak_within_dense(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        horizon: f64,
    ) -> Result<(f64, f64)> {
        let mut best_v = model.core_temperatures(node_temps).max();
        let mut best_t = 0.0;
        if horizon == 0.0 {
            return Ok((best_v, best_t));
        }
        const SAMPLES: usize = 48;
        let sub = horizon / usize_to_f64(SAMPLES);
        let mut state = node_temps.clone();
        for s in 1..=SAMPLES {
            let mut out = self.step_many_dense(model, &[(&state, core_power)], sub)?;
            // xtask: allow(panic) — step_many_dense returns one state per
            // input pair, so a batch of one always pops.
            state = out.pop().expect("batch of one");
            let val = model.core_temperatures(&state).max();
            if val > best_v {
                best_v = val;
                // `sub·S` can round one ULP past `horizon`; clamp to keep
                // the reported time inside the queried window.
                best_t = (sub * usize_to_f64(s)).min(horizon);
            }
        }
        Ok((best_v, best_t))
    }

    /// Evaluates the full trajectory at `samples` evenly spaced instants in
    /// `(0, dt]` under constant power (useful for dense thermal traces).
    ///
    /// The eigen-space deviation is computed once, every sample instant's
    /// decayed state is row-stacked, and one GEMM reconstructs all node
    /// states — bit-identical to per-sample
    /// [`step`](TransientSolver::step) calls at the same instants.
    ///
    /// # Errors
    ///
    /// Same as [`step`](TransientSolver::step).
    pub fn trajectory(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        dt: f64,
        samples: usize,
    ) -> Result<Vec<Vector>> {
        Self::check_dt(dt, "dt")?;
        Self::check_finite(node_temps, "input node temperatures")?;
        Self::check_finite(core_power, "input core power")?;
        if self.degraded() {
            return self.trajectory_dense(model, node_temps, core_power, dt, samples);
        }
        let t_steady = model.steady_state(core_power)?;
        let deviation = node_temps - &t_steady;
        let y = self.eigen.v_inv().mul_vector(&deviation);
        let n = self.eigen.dim();
        let lambda = self.eigen.eigenvalues();

        let mut e = Matrix::zeros(samples, n);
        for k in 1..=samples {
            let t = dt * usize_to_f64(k) / usize_to_f64(samples);
            let row = e.row_mut(k - 1);
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = (lambda[i] * t).exp() * y[i];
            }
        }
        let decayed = e.mul_matrix(&self.v_t)?; // samples × N
        let out: Vec<Vector> = (0..samples)
            .map(|k| Vector::from_fn(n, |i| t_steady[i] + decayed[(k, i)]))
            .collect();
        if out.iter().any(|t| Self::violates_envelope(model, t)) {
            // xtask: allow(relaxed) — monotonic tally, read via snapshot().
            self.numerics.guard_trips.fetch_add(1, Ordering::Relaxed);
            // xtask: allow(relaxed) — single sticky flag.
            self.tripped.store(true, Ordering::Relaxed);
            return self.trajectory_dense(model, node_temps, core_power, dt, samples);
        }
        Ok(out)
    }

    /// Dense-fallback form of [`trajectory`](TransientSolver::trajectory):
    /// the sample instants are reached by chained backward-Euler substeps
    /// of `dt / samples`.
    fn trajectory_dense(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        dt: f64,
        samples: usize,
    ) -> Result<Vec<Vector>> {
        let sub = dt / usize_to_f64(samples);
        let mut state = node_temps.clone();
        let mut out = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut step = self.step_many_dense(model, &[(&state, core_power)], sub)?;
            // xtask: allow(panic) — step_many_dense returns one state per
            // input pair, so a batch of one always pops.
            state = step.pop().expect("batch of one");
            out.push(state.clone());
        }
        Ok(out)
    }

    /// Serial form of [`trajectory`](TransientSolver::trajectory): one
    /// full `exp_apply` mat-vec pair per sample instant. Differential-
    /// testing reference for the batched trajectory.
    ///
    /// # Errors
    ///
    /// Same as [`step`](TransientSolver::step).
    #[doc(hidden)]
    pub fn trajectory_reference(
        &self,
        model: &RcThermalModel,
        node_temps: &Vector,
        core_power: &Vector,
        dt: f64,
        samples: usize,
    ) -> Result<Vec<Vector>> {
        Self::check_dt(dt, "dt")?;
        Self::check_finite(node_temps, "input node temperatures")?;
        Self::check_finite(core_power, "input core power")?;
        let t_steady = model.steady_state(core_power)?;
        let deviation = node_temps - &t_steady;
        let mut out = Vec::with_capacity(samples);
        for k in 1..=samples {
            let t = dt * usize_to_f64(k) / usize_to_f64(samples);
            let decayed = self.eigen.exp_apply(t, &deviation);
            out.push(&t_steady + &decayed);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThermalConfig;
    use hp_floorplan::GridFloorplan;

    fn setup() -> (RcThermalModel, TransientSolver) {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let model = RcThermalModel::new(&fp, &ThermalConfig::default()).unwrap();
        let solver = TransientSolver::new(&model).unwrap();
        (model, solver)
    }

    #[test]
    fn zero_dt_is_identity() {
        let (model, solver) = setup();
        let t0 = model.ambient_state();
        let p = Vector::constant(16, 2.0);
        let t1 = solver.step(&model, &t0, &p, 0.0).unwrap();
        assert!((&t1 - &t0).norm_inf() < 1e-9);
    }

    #[test]
    fn long_step_reaches_steady_state() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let t_inf = solver
            .step(&model, &model.ambient_state(), &p, 1e4)
            .unwrap();
        let t_ss = model.steady_state(&p).unwrap();
        assert!((&t_inf - &t_ss).norm_inf() < 1e-6);
    }

    #[test]
    fn two_half_steps_equal_one_full_step() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[0] = 5.0;
        let t0 = model.ambient_state();
        let full = solver.step(&model, &t0, &p, 0.002).unwrap();
        let half = solver.step(&model, &t0, &p, 0.001).unwrap();
        let two = solver.step(&model, &half, &p, 0.001).unwrap();
        assert!((&full - &two).norm_inf() < 1e-9);
    }

    #[test]
    fn step_matches_serial_reference_bit_for_bit() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let mut t = model.ambient_state();
        let mut t_ref = model.ambient_state();
        for k in 0..10 {
            let dt = 1e-4 * f64::from(1 + k % 3);
            t = solver.step(&model, &t, &p, dt).unwrap();
            t_ref = solver.step_reference(&model, &t_ref, &p, dt).unwrap();
            for i in 0..model.node_count() {
                assert_eq!(
                    t[i].to_bits(),
                    t_ref[i].to_bits(),
                    "step {k} node {i}: {} vs {}",
                    t[i],
                    t_ref[i]
                );
            }
        }
    }

    #[test]
    fn step_many_matches_per_pair_steps() {
        let (model, solver) = setup();
        let states: Vec<Vector> = (0..4)
            .map(|k| {
                let mut p = Vector::constant(16, 0.3);
                p[k * 3] = 5.0;
                solver
                    .step(&model, &model.ambient_state(), &p, 0.01 * (k + 1) as f64)
                    .unwrap()
            })
            .collect();
        let powers: Vec<Vector> = (0..4)
            .map(|k| Vector::from_fn(16, |c| ((c + k) % 5) as f64 * 1.1 + 0.3))
            .collect();
        let pairs: Vec<(&Vector, &Vector)> = states.iter().zip(powers.iter()).collect();
        let batch = solver.step_many(&model, &pairs, 7e-4).unwrap();
        assert_eq!(batch.len(), 4);
        for (k, (state, power)) in pairs.iter().enumerate() {
            let single = solver.step(&model, state, power, 7e-4).unwrap();
            for i in 0..model.node_count() {
                assert_eq!(batch[k][i].to_bits(), single[i].to_bits(), "pair {k}");
            }
        }
    }

    #[test]
    fn step_many_empty_batch_is_empty() {
        let (model, solver) = setup();
        assert!(solver.step_many(&model, &[], 1e-3).unwrap().is_empty());
    }

    #[test]
    fn decay_cache_stable_across_repeats() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[9] = 6.0;
        let t0 = model.ambient_state();
        let a = solver.step(&model, &t0, &p, 1e-4).unwrap();
        let b = solver.step(&model, &t0, &p, 1e-4).unwrap();
        for i in 0..model.node_count() {
            assert_eq!(a[i].to_bits(), b[i].to_bits());
        }
    }

    #[test]
    fn cloned_solver_agrees() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[3] = 6.0;
        let t0 = model.ambient_state();
        let a = solver.step(&model, &t0, &p, 5e-4).unwrap();
        let b = solver.step(&model, &t0, &p, 5e-4).unwrap();
        for i in 0..model.node_count() {
            assert_eq!(a[i].to_bits(), b[i].to_bits());
        }
    }

    #[test]
    fn heating_is_monotone_from_ambient() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let mut t = model.ambient_state();
        let mut last_peak = model.core_temperatures(&t).max();
        for _ in 0..20 {
            t = solver.step(&model, &t, &p, 0.001).unwrap();
            let peak = model.core_temperatures(&t).max();
            assert!(peak >= last_peak - 1e-12);
            last_peak = peak;
        }
        assert!(last_peak > 46.0);
    }

    #[test]
    fn cooling_after_power_off() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let hot = solver
            .step(&model, &model.ambient_state(), &p, 10.0)
            .unwrap();
        let cooled = solver.step(&model, &hot, &Vector::zeros(16), 10.0).unwrap();
        assert!(model.core_temperatures(&cooled).max() < model.core_temperatures(&hot).max());
    }

    #[test]
    fn negative_dt_rejected() {
        let (model, solver) = setup();
        assert!(solver
            .step(&model, &model.ambient_state(), &Vector::zeros(16), -1.0)
            .is_err());
    }

    #[test]
    fn trajectory_endpoint_matches_step() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[10] = 6.0;
        let t0 = model.ambient_state();
        let traj = solver.trajectory(&model, &t0, &p, 0.004, 4).unwrap();
        let end = solver.step(&model, &t0, &p, 0.004).unwrap();
        assert_eq!(traj.len(), 4);
        assert!((traj.last().unwrap() - &end).norm_inf() < 1e-9);
    }

    #[test]
    fn trajectory_matches_serial_reference_bit_for_bit() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[10] = 6.0;
        let mut hot = Vector::constant(16, 0.3);
        hot[2] = 7.0;
        let t0 = solver
            .step(&model, &model.ambient_state(), &hot, 5.0)
            .unwrap();
        let batched = solver.trajectory(&model, &t0, &p, 0.004, 7).unwrap();
        let serial = solver
            .trajectory_reference(&model, &t0, &p, 0.004, 7)
            .unwrap();
        assert_eq!(batched.len(), serial.len());
        for (k, (a, b)) in batched.iter().zip(&serial).enumerate() {
            for i in 0..model.node_count() {
                assert_eq!(a[i].to_bits(), b[i].to_bits(), "sample {k} node {i}");
            }
        }
    }

    #[test]
    fn peak_within_matches_dense_sampling() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        // Start HOT on a different core so the trajectory has an interior
        // structure (core 10 cools while core 5 heats).
        let mut hot = Vector::constant(16, 0.3);
        hot[10] = 7.0;
        let t0 = solver
            .step(&model, &model.ambient_state(), &hot, 10.0)
            .unwrap();
        let horizon = 20e-3;
        let (peak, at) = solver.peak_within(&model, &t0, &p, horizon).unwrap();
        // Dense reference.
        let mut reference = f64::NEG_INFINITY;
        for s in 0..=2000 {
            let t = horizon * f64::from(s) / 2000.0;
            let state = solver.step(&model, &t0, &p, t).unwrap();
            reference = reference.max(model.core_temperatures(&state).max());
        }
        assert!(
            (peak - reference).abs() < 0.02,
            "peak {peak:.3} vs dense reference {reference:.3}"
        );
        assert!((0.0..=horizon).contains(&at));
    }

    #[test]
    fn peak_within_heating_run_is_at_horizon() {
        // Pure heating from ambient: the maximum sits at the end.
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let horizon = 5e-3;
        let (peak, at) = solver
            .peak_within(&model, &model.ambient_state(), &p, horizon)
            .unwrap();
        let end = solver
            .step(&model, &model.ambient_state(), &p, horizon)
            .unwrap();
        assert!((peak - model.core_temperatures(&end).max()).abs() < 1e-6);
        assert!((at - horizon).abs() < horizon * 0.05);
    }

    #[test]
    fn peak_within_cooling_run_is_at_start() {
        // Cooling after power-off: the maximum sits at t = 0.
        let (model, solver) = setup();
        let mut hot_p = Vector::constant(16, 0.3);
        hot_p[5] = 7.0;
        let hot = solver
            .step(&model, &model.ambient_state(), &hot_p, 10.0)
            .unwrap();
        let (peak, at) = solver
            .peak_within(&model, &hot, &Vector::zeros(16), 10e-3)
            .unwrap();
        assert!((peak - model.core_temperatures(&hot).max()).abs() < 1e-6);
        assert!(at < 1e-3);
    }

    #[test]
    fn peak_within_rejects_bad_horizon() {
        let (model, solver) = setup();
        assert!(solver
            .peak_within(&model, &model.ambient_state(), &Vector::zeros(16), -1.0)
            .is_err());
    }

    #[test]
    fn stats_count_batches_and_cache_traffic() {
        let (model, solver) = setup();
        let t0 = model.ambient_state();
        let p = Vector::constant(16, 0.5);
        assert_eq!(solver.stats(), TransientStats::default());
        solver.step(&model, &t0, &p, 1e-3).unwrap();
        solver.step(&model, &t0, &p, 1e-3).unwrap();
        let pairs = [(&t0, &p), (&t0, &p), (&t0, &p)];
        solver.step_many(&model, &pairs, 2e-3).unwrap();
        let s = solver.stats();
        assert_eq!(s.batch_calls, 3);
        assert_eq!(s.batched_states, 5);
        // Two distinct dt values → two misses; the repeated step hits.
        assert_eq!(s.decay_cache_misses, 2);
        assert_eq!(s.decay_cache_hits, 1);
        // A clone starts from zero; reset clears the original.
        let fresh = solver.clone();
        assert_eq!(fresh.stats(), TransientStats::default());
        solver.reset_stats();
        assert_eq!(solver.stats(), TransientStats::default());
    }

    fn setup_stiff() -> (RcThermalModel, TransientSolver) {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let model = RcThermalModel::new(&fp, &ThermalConfig::ill_conditioned()).unwrap();
        let solver = TransientSolver::new(&model).unwrap();
        (model, solver)
    }

    #[test]
    fn stiff_model_arms_dense_fallback_at_construction() {
        let (model, solver) = setup_stiff();
        assert!(solver.degraded());
        assert_eq!(solver.numerics(), NumericsStats::default());
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let mut t = model.ambient_state();
        for _ in 0..5 {
            t = solver.step(&model, &t, &p, 5e-4).unwrap();
            assert!(t.iter().all(|v| v.is_finite()));
            assert!(t.min() > model.config().ambient - 1.0);
        }
        let n = solver.numerics();
        // One activation episode regardless of how many steps ran.
        assert_eq!(n.fallback_activations, 1);
        assert_eq!(n.fallback_steps, 5);
        assert_eq!(n.guard_trips, 0);
    }

    #[test]
    fn degraded_zero_dt_is_identity() {
        let (model, solver) = setup_stiff();
        let t0 = model.ambient_state();
        let p = Vector::constant(16, 2.0);
        let t1 = solver.step(&model, &t0, &p, 0.0).unwrap();
        assert!((&t1 - &t0).norm_inf() < 1e-12);
        // dt = 0 never engages the dense stepper.
        assert_eq!(solver.numerics().fallback_steps, 0);
    }

    #[test]
    fn degraded_trajectory_and_peak_are_finite() {
        let (model, solver) = setup_stiff();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let t0 = model.ambient_state();
        let traj = solver.trajectory(&model, &t0, &p, 2e-3, 4).unwrap();
        assert_eq!(traj.len(), 4);
        for state in &traj {
            assert!(state.iter().all(|v| v.is_finite()));
        }
        let (peak, at) = solver.peak_within(&model, &t0, &p, 2e-3).unwrap();
        assert!(peak.is_finite() && peak >= model.config().ambient - 1.0);
        assert!((0.0..=2e-3).contains(&at));
        assert_eq!(solver.numerics().fallback_activations, 1);
    }

    #[test]
    fn healthy_solver_is_not_degraded() {
        let (_, solver) = setup();
        assert!(!solver.degraded());
        assert_eq!(solver.numerics(), NumericsStats::default());
    }

    #[test]
    fn nonfinite_inputs_rejected() {
        let (model, solver) = setup();
        let t0 = model.ambient_state();
        let mut bad_p = Vector::constant(16, 0.3);
        bad_p[3] = f64::NAN;
        assert!(matches!(
            solver.step(&model, &t0, &bad_p, 1e-3),
            Err(ThermalError::Linalg(_))
        ));
        let mut bad_t = model.ambient_state();
        bad_t[7] = f64::INFINITY;
        let p = Vector::constant(16, 0.3);
        assert!(solver.step(&model, &bad_t, &p, 1e-3).is_err());
        assert!(solver.step_reference(&model, &bad_t, &p, 1e-3).is_err());
        assert!(solver.trajectory(&model, &t0, &bad_p, 1e-3, 4).is_err());
        assert!(solver.peak_within(&model, &bad_t, &p, 1e-3).is_err());
        // Rejected inputs never degrade the solver.
        assert!(!solver.degraded());
    }

    #[test]
    fn reset_clears_numerics_but_degradation_is_sticky() {
        let (model, solver) = setup_stiff();
        let p = Vector::constant(16, 0.5);
        solver
            .step(&model, &model.ambient_state(), &p, 1e-3)
            .unwrap();
        assert_eq!(solver.numerics().fallback_activations, 1);
        solver.reset_stats();
        assert_eq!(solver.numerics(), NumericsStats::default());
        assert!(solver.degraded());
        // The next dense step opens a fresh activation episode.
        solver
            .step(&model, &model.ambient_state(), &p, 1e-3)
            .unwrap();
        assert_eq!(solver.numerics().fallback_activations, 1);
    }

    #[test]
    fn clone_inherits_degradation_with_fresh_tallies() {
        let (model, solver) = setup_stiff();
        let p = Vector::constant(16, 0.5);
        solver
            .step(&model, &model.ambient_state(), &p, 1e-3)
            .unwrap();
        let fresh = solver.clone();
        assert!(fresh.degraded());
        assert_eq!(fresh.numerics(), NumericsStats::default());
        // The original keeps its tallies — cloning is not a reset.
        assert_eq!(solver.numerics().fallback_activations, 1);
    }

    #[test]
    fn restore_numerics_round_trips() {
        let (_, solver) = setup();
        let stats = NumericsStats {
            fallback_activations: 1,
            fallback_steps: 42,
            guard_trips: 3,
        };
        solver.restore_numerics(stats);
        assert_eq!(solver.numerics(), stats);
    }

    #[test]
    fn dense_fallback_tracks_eigen_on_healthy_model() {
        // Force the dense path on a *healthy* model via a clone whose
        // guard we trip artificially through restore + envelope violation
        // is not possible from outside; instead compare step_many_dense
        // through the public API of a stiff-armed solver sharing the
        // healthy model's eigen basis. Simplest honest check: the
        // fallback stepper itself is pinned against the eigen path in
        // fallback.rs; here we pin the routed outputs' agreement.
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let t0 = model.ambient_state();
        let eigen_out = solver.step(&model, &t0, &p, 1e-4).unwrap();
        let dense_out = {
            let mut out = solver.step_many_dense(&model, &[(&t0, &p)], 1e-4).unwrap();
            out.pop().unwrap()
        };
        assert!((&eigen_out - &dense_out).norm_inf() < 1e-6);
    }

    #[test]
    fn junction_time_constant_observed() {
        // After one junction time constant the deviation towards steady
        // state should have decayed noticeably (but not fully).
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let tau = model.config().junction_time_constant();
        let t = solver
            .step(&model, &model.ambient_state(), &p, tau)
            .unwrap();
        let t_ss = model.steady_state(&p).unwrap();
        let progress = (t[5] - 45.0) / (t_ss[5] - 45.0);
        assert!(progress > 0.3 && progress < 0.95, "progress {progress:.2}");
    }
}
