//! Dense implicit-Euler fallback stepper — the slow, unconditionally
//! stable path the transient and peak solvers degrade to when the eigen
//! fast path reports numerical trouble (see DESIGN.md §14).
//!
//! One step of length `h` solves the backward-Euler system
//!
//! ```text
//! (A/h + B) · T_{k+1} = (A/h) · T_k + P + T_amb·G
//! ```
//!
//! through the LU factors of `A/h + B`. Backward Euler is A-stable: no
//! eigenvalue spread, capacitance ratio, or stiffness can make it blow
//! up, which is exactly the property the eigen route loses on
//! ill-conditioned models. Plain backward Euler is only first-order
//! accurate, so each [`DenseStepper::step`] runs the substep ladder twice
//! — `m` substeps at `h` and `2m` at `h/2` — and Richardson-extrapolates
//! (`2·x_{h/2} − x_h`), giving second-order accuracy while keeping the
//! unconditional stability (the two ladders share the eigenbasis of
//! `A⁻¹B`, so every extrapolated mode factor stays inside the unit
//! circle).
//!
//! [`DenseStepper::epoch_map`] exposes the same step as an affine map
//! `T ↦ M·T + S·f`, which is what the rotation peak solver composes into
//! a cycle map and solves to a fixed point instead of time-stepping
//! through thousands of periods.

use hp_linalg::{LuDecomposition, Matrix, Vector};

use crate::{RcThermalModel, Result};

/// Substeps `m` per [`DenseStepper::step`]; the extrapolated pair runs
/// `m` and `2m`. Chosen so the fallback agrees with the eigen path to
/// ≲1e-6 °C at millisecond steps on healthy models (the differential
/// suite pins this).
pub const DENSE_SUBSTEPS: usize = 48;

/// Backward-Euler dense stepper for one fixed step length `dt`.
///
/// Construction factorizes `A/h + B` for the two substep ladders
/// (`O(N³)` once); each [`step`](DenseStepper::step) is then `3m` dense
/// triangular solves (`O(m·N²)`) — orders of magnitude slower than the
/// eigen fast path's two thin GEMMs, but immune to the conditioning of
/// the eigenbasis.
#[derive(Debug)]
pub struct DenseStepper {
    nodes: usize,
    dt: f64,
    /// `A/h` diagonal for the coarse ladder (`h = dt/m`).
    a_over_h: Vector,
    /// `A/(h/2)` diagonal for the fine ladder.
    a_over_h2: Vector,
    lu_h: LuDecomposition,
    lu_h2: LuDecomposition,
}

impl DenseStepper {
    /// Factorizes the backward-Euler systems for step length `dt`.
    ///
    /// # Errors
    ///
    /// * [`crate::ThermalError::InvalidParameter`] for a non-positive or
    ///   non-finite `dt`.
    /// * Propagated factorization errors (cannot occur for a valid RC
    ///   model: `A/h + B` is SPD whenever `B` is).
    pub fn new(model: &RcThermalModel, dt: f64) -> Result<Self> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(crate::ThermalError::InvalidParameter {
                name: "dense dt",
                value: dt,
            });
        }
        let nodes = model.node_count();
        let m = hp_linalg::convert::usize_to_f64(DENSE_SUBSTEPS);
        let h = dt / m;
        let a = model.a_diag();
        let b = model.b();
        let a_over_h = Vector::from_fn(nodes, |i| a[i] / h);
        let a_over_h2 = Vector::from_fn(nodes, |i| a[i] / (h / 2.0));
        let sys_h = Matrix::from_fn(nodes, nodes, |i, j| {
            b[(i, j)] + if i == j { a_over_h[i] } else { 0.0 }
        });
        let sys_h2 = Matrix::from_fn(nodes, nodes, |i, j| {
            b[(i, j)] + if i == j { a_over_h2[i] } else { 0.0 }
        });
        Ok(DenseStepper {
            nodes,
            dt,
            a_over_h,
            a_over_h2,
            lu_h: sys_h.lu()?,
            lu_h2: sys_h2.lu()?,
        })
    }

    /// The step length this stepper was factorized for.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Runs one substep ladder: `steps` backward-Euler substeps of the
    /// given system under constant node forcing `f = P + T_amb·G`.
    fn ladder(
        &self,
        lu: &LuDecomposition,
        a_over_h: &Vector,
        temps: &Vector,
        forcing: &Vector,
        steps: usize,
    ) -> Result<Vector> {
        let mut t = temps.clone();
        for _ in 0..steps {
            let rhs = Vector::from_fn(self.nodes, |i| a_over_h[i] * t[i] + forcing[i]);
            t = lu.solve(&rhs)?;
        }
        Ok(t)
    }

    /// Advances the node state by the full `dt` under constant node
    /// forcing `forcing = P_nodes + T_amb·G` (see
    /// [`RcThermalModel::forcing`]), Richardson-extrapolated across the
    /// two substep ladders.
    ///
    /// # Errors
    ///
    /// Propagated solve errors (cannot occur after successful
    /// construction with matching dimensions).
    pub fn step(&self, temps: &Vector, forcing: &Vector) -> Result<Vector> {
        let coarse = self.ladder(&self.lu_h, &self.a_over_h, temps, forcing, DENSE_SUBSTEPS)?;
        let fine = self.ladder(
            &self.lu_h2,
            &self.a_over_h2,
            temps,
            forcing,
            2 * DENSE_SUBSTEPS,
        )?;
        Ok(Vector::from_fn(self.nodes, |i| 2.0 * fine[i] - coarse[i]))
    }

    /// The extrapolated step as an affine map: returns `(M, S)` such that
    /// [`step`](DenseStepper::step) equals `T ↦ M·T + S·f` for any state
    /// `T` and forcing `f` (the step is affine in both).
    ///
    /// The rotation peak solver composes these maps over a rotation cycle
    /// and solves the fixed point `(I − M_cycle)·T* = c` instead of
    /// stepping through the thousands of periods a sink time constant
    /// would need.
    ///
    /// # Errors
    ///
    /// Propagated solve errors (cannot occur after successful
    /// construction).
    pub fn epoch_map(&self) -> Result<(Matrix, Matrix)> {
        // Per substep: T ↦ K·T + R·f with K = R·(A/h), R = (A/h + B)⁻¹.
        // A ladder of `s` substeps is T ↦ K^s·T + (Σ_{j<s} K^j)·R·f,
        // accumulated by Horner: S ← K·S + R.
        let build = |lu: &LuDecomposition, a_over_h: &Vector, steps: usize| -> Result<_> {
            let r = lu.solve_matrix(&Matrix::identity(self.nodes))?;
            let k = Matrix::from_fn(self.nodes, self.nodes, |i, j| r[(i, j)] * a_over_h[j]);
            let mut m = Matrix::identity(self.nodes);
            let mut s = Matrix::zeros(self.nodes, self.nodes);
            for _ in 0..steps {
                m = k.mul_matrix(&m)?;
                s = &k.mul_matrix(&s)? + &r;
            }
            Ok((m, s))
        };
        let (m1, s1) = build(&self.lu_h, &self.a_over_h, DENSE_SUBSTEPS)?;
        let (m2, s2) = build(&self.lu_h2, &self.a_over_h2, 2 * DENSE_SUBSTEPS)?;
        let m = Matrix::from_fn(self.nodes, self.nodes, |i, j| 2.0 * m2[(i, j)] - m1[(i, j)]);
        let s = Matrix::from_fn(self.nodes, self.nodes, |i, j| 2.0 * s2[(i, j)] - s1[(i, j)]);
        Ok((m, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThermalConfig, TransientSolver};
    use hp_floorplan::GridFloorplan;

    fn setup() -> (RcThermalModel, TransientSolver) {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let model = RcThermalModel::new(&fp, &ThermalConfig::default()).unwrap();
        let solver = TransientSolver::new(&model).unwrap();
        (model, solver)
    }

    #[test]
    fn dense_step_matches_eigen_on_healthy_model() {
        let (model, solver) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let forcing = model.forcing(&p).unwrap();
        let dt = 1e-4;
        let dense = DenseStepper::new(&model, dt).unwrap();
        let mut t_eigen = model.ambient_state();
        let mut t_dense = model.ambient_state();
        for step in 0..20 {
            t_eigen = solver.step_reference(&model, &t_eigen, &p, dt).unwrap();
            t_dense = dense.step(&t_dense, &forcing).unwrap();
            let err = (&t_eigen - &t_dense).norm_inf();
            assert!(err < 1e-6, "step {step}: divergence {err:e}");
        }
    }

    #[test]
    fn dense_step_reaches_steady_state() {
        let (model, _) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let forcing = model.forcing(&p).unwrap();
        let dense = DenseStepper::new(&model, 1.0).unwrap();
        let mut t = model.ambient_state();
        for _ in 0..40 {
            t = dense.step(&t, &forcing).unwrap();
        }
        let t_ss = model.steady_state(&p).unwrap();
        assert!((&t - &t_ss).norm_inf() < 1e-6);
    }

    #[test]
    fn dense_step_stable_on_stiff_model() {
        // A capacitance ratio around 5e12 — far beyond what the eigen
        // route tolerates — must still produce finite, physical output.
        let fp = GridFloorplan::new(4, 4).unwrap();
        let cfg = ThermalConfig::ill_conditioned();
        let model = RcThermalModel::new(&fp, &cfg).unwrap();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let forcing = model.forcing(&p).unwrap();
        let dense = DenseStepper::new(&model, 5e-4).unwrap();
        let mut t = model.ambient_state();
        for _ in 0..50 {
            t = dense.step(&t, &forcing).unwrap();
            assert!(t.iter().all(|v| v.is_finite()));
            assert!(t.min() > cfg.ambient - 1.0);
        }
        assert!(t.max() > cfg.ambient);
    }

    #[test]
    fn epoch_map_reproduces_step() {
        let (model, _) = setup();
        let mut p = Vector::constant(16, 0.3);
        p[9] = 5.0;
        let forcing = model.forcing(&p).unwrap();
        let dense = DenseStepper::new(&model, 5e-4).unwrap();
        let (m, s) = dense.epoch_map().unwrap();
        let t0 = {
            let mut hot = model.ambient_state();
            hot[5] = 60.0;
            hot
        };
        let direct = dense.step(&t0, &forcing).unwrap();
        let mapped = &m.mul_vector(&t0) + &s.mul_vector(&forcing);
        assert!((&direct - &mapped).norm_inf() < 1e-9);
    }

    #[test]
    fn rejects_bad_dt() {
        let (model, _) = setup();
        assert!(DenseStepper::new(&model, 0.0).is_err());
        assert!(DenseStepper::new(&model, f64::NAN).is_err());
        assert!(DenseStepper::new(&model, -1.0).is_err());
    }
}
