use hp_floorplan::{CoreId, GridFloorplan};
use hp_linalg::Vector;
use hp_thermal::{tsp, RcThermalModel, ThermalConfig};

fn peak(model: &RcThermalModel, p: &Vector) -> f64 {
    model
        .core_temperatures(&model.steady_state(p).unwrap())
        .max()
}

fn main() {
    let fp = GridFloorplan::new(4, 4).unwrap();
    for gse in [0.3, 0.6, 1.0] {
        for gpe in [0.3, 0.6, 1.0] {
            let cfg = ThermalConfig {
                g_sink_edge: gse,
                g_spreader_edge: gpe,
                ..ThermalConfig::default()
            };
            let model = RcThermalModel::new(&fp, &cfg).unwrap();
            let mut p1 = Vector::constant(16, 0.3);
            p1[5] = 7.0;
            let mut p1c = Vector::constant(16, 0.3);
            p1c[0] = 7.0;
            let mut p2 = Vector::constant(16, 0.3);
            p2[5] = 7.0;
            p2[10] = 7.0;
            let mut pr = Vector::constant(16, 0.3);
            for c in [5usize, 6, 9, 10] {
                pr[c] = (2.0 * 7.0 + 2.0 * 0.3) / 4.0;
            }
            let ctr = tsp::budget(&model, &[CoreId(5), CoreId(6)], 70.0, 0.3)
                .unwrap()
                .per_core_watts;
            let cor = tsp::budget(&model, &[CoreId(0), CoreId(15)], 70.0, 0.3)
                .unwrap()
                .per_core_watts;
            println!("gse={gse:.1} gpe={gpe:.1}: one_ctr={:.1} one_cor={:.1} two={:.1} rot={:.1} tsp_ctr={ctr:.2} tsp_cor={cor:.2}", peak(&model,&p1), peak(&model,&p1c), peak(&model,&p2), peak(&model,&pr));
        }
    }
}
