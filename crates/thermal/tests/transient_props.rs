//! Property tests for the batched transient solver over *random* RC
//! models — the composability guarantees the interval simulator relies
//! on, promoted from the fixed-model unit tests in `src/transient.rs`
//! into proptest form.

use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_thermal::{RcThermalModel, ThermalConfig, TransientSolver};
use proptest::prelude::*;

/// A random-but-physical RC model: random grid dimensions and random
/// scale factors on the capacitances/conductances that shape the
/// eigenspectrum (sink mass, vertical path, ambient convection).
fn models() -> impl Strategy<Value = RcThermalModel> {
    (
        2usize..=4,
        2usize..=4,
        0.02..6.0f64,  // sink capacitance scale (slowest eigenmode)
        0.5..2.0f64,   // vertical conductance scale
        0.25..3.0f64,  // sink-to-ambient convection scale
        30.0..60.0f64, // ambient, °C
    )
        .prop_map(|(w, h, sink, vertical, conv, ambient)| {
            let d = ThermalConfig::default();
            let cfg = ThermalConfig {
                ambient,
                c_sink: d.c_sink * sink,
                g_junction_spreader: d.g_junction_spreader * vertical,
                g_spreader_sink: d.g_spreader_sink * vertical,
                g_sink_ambient: d.g_sink_ambient * conv,
                ..d
            };
            RcThermalModel::new(&GridFloorplan::new(w, h).expect("grid"), &cfg).expect("model")
        })
}

/// A power pool large enough for the biggest generated chip; each test
/// slices the first `core_count` entries.
fn power_pool() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..8.0f64, 16)
}

fn power_for(model: &RcThermalModel, pool: &[f64]) -> Vector {
    Vector::from_fn(model.core_count(), |c| pool[c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zero_dt_is_identity(model in models(), pool in power_pool()) {
        let solver = TransientSolver::new(&model).unwrap();
        let p = power_for(&model, &pool);
        let t0 = model.steady_state(&p).unwrap();
        let t1 = solver.step(&model, &t0, &Vector::zeros(model.core_count()), 0.0).unwrap();
        prop_assert!((&t1 - &t0).norm_inf() < 1e-9);
    }

    #[test]
    fn two_half_steps_equal_one_full_step(
        model in models(),
        pool in power_pool(),
        dt in 1e-5..5e-3f64,
    ) {
        let solver = TransientSolver::new(&model).unwrap();
        let p = power_for(&model, &pool);
        let t0 = model.ambient_state();
        let full = solver.step(&model, &t0, &p, dt).unwrap();
        let half = solver.step(&model, &t0, &p, dt / 2.0).unwrap();
        let two = solver.step(&model, &half, &p, dt / 2.0).unwrap();
        prop_assert!(
            (&full - &two).norm_inf() < 1e-9,
            "composability violated by {}",
            (&full - &two).norm_inf()
        );
    }

    #[test]
    fn step_composes_across_unequal_splits(
        model in models(),
        pool in power_pool(),
        dt in 1e-5..5e-3f64,
        frac in 0.05..0.95f64,
    ) {
        // Not just halves: any split point must compose exactly.
        let solver = TransientSolver::new(&model).unwrap();
        let p = power_for(&model, &pool);
        let t0 = model.ambient_state();
        let full = solver.step(&model, &t0, &p, dt).unwrap();
        let first = solver.step(&model, &t0, &p, dt * frac).unwrap();
        let second = solver.step(&model, &first, &p, dt - dt * frac).unwrap();
        prop_assert!((&full - &second).norm_inf() < 1e-8);
    }

    #[test]
    fn long_step_reaches_steady_state(model in models(), pool in power_pool()) {
        // The steady-state limit: after many slowest-time-constant
        // multiples the state is T_steady regardless of where it started.
        let solver = TransientSolver::new(&model).unwrap();
        let p = power_for(&model, &pool);
        let slowest = solver
            .eigen()
            .eigenvalues()
            .iter()
            .fold(f64::NEG_INFINITY, |m, &l| m.max(l)); // closest to zero
        let horizon = 40.0 / slowest.abs();
        let t_inf = solver.step(&model, &model.ambient_state(), &p, horizon).unwrap();
        let t_ss = model.steady_state(&p).unwrap();
        prop_assert!(
            (&t_inf - &t_ss).norm_inf() < 1e-6,
            "residual {}",
            (&t_inf - &t_ss).norm_inf()
        );
    }

    #[test]
    fn batched_step_bit_identical_to_serial_reference(
        model in models(),
        pool in power_pool(),
        dt in 1e-5..5e-3f64,
    ) {
        // The differential contract on random models: the batched GEMM
        // step must reproduce the serial mat-vec form bit for bit.
        let solver = TransientSolver::new(&model).unwrap();
        let p = power_for(&model, &pool);
        let mut hot = Vector::zeros(model.core_count());
        if model.core_count() > 0 { hot[0] = 7.0; }
        let t0 = solver.step(&model, &model.ambient_state(), &hot, 1.0).unwrap();
        let fast = solver.step(&model, &t0, &p, dt).unwrap();
        let reference = solver.step_reference(&model, &t0, &p, dt).unwrap();
        for i in 0..model.node_count() {
            prop_assert_eq!(
                fast[i].to_bits(),
                reference[i].to_bits(),
                "node {}: {} vs {}",
                i,
                fast[i],
                reference[i]
            );
        }
    }

    #[test]
    fn trajectory_composes_with_stepping(
        model in models(),
        pool in power_pool(),
        dt in 1e-4..4e-3f64,
    ) {
        // The batched trajectory must land exactly where repeated
        // stepping through the same sample instants lands.
        let solver = TransientSolver::new(&model).unwrap();
        let p = power_for(&model, &pool);
        let t0 = model.ambient_state();
        let samples = 5usize;
        let traj = solver.trajectory(&model, &t0, &p, dt, samples).unwrap();
        let mut t = t0;
        for (k, sample) in traj.iter().enumerate() {
            t = solver.step(&model, &t, &p, dt / samples as f64).unwrap();
            prop_assert!(
                (sample - &t).norm_inf() < 1e-9,
                "sample {} diverged by {}",
                k,
                (sample - &t).norm_inf()
            );
        }
    }
}
