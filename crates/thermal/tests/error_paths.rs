//! Negative tests: the transient solver and the RC model must reject
//! malformed inputs with typed errors instead of panicking. Pins the
//! behavioural half of the `cargo xtask check` no-panic contract for
//! hp-thermal.

use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_thermal::{RcThermalModel, ThermalConfig, ThermalError, TransientSolver};

fn model_4x4() -> RcThermalModel {
    let fp = GridFloorplan::new(4, 4).expect("non-empty grid");
    RcThermalModel::new(&fp, &ThermalConfig::default()).expect("valid config")
}

#[test]
fn step_rejects_non_finite_or_negative_dt() {
    let model = model_4x4();
    let solver = TransientSolver::new(&model).expect("decomposes");
    let t0 = model.ambient_state();
    let p = Vector::constant(16, 1.0);
    for dt in [-1e-4, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = solver
            .step(&model, &t0, &p, dt)
            .expect_err("bad dt must not step");
        assert!(
            matches!(err, ThermalError::InvalidParameter { name: "dt", .. }),
            "dt {dt}: {err}"
        );
    }
}

#[test]
fn step_rejects_power_dimension_mismatch() {
    let model = model_4x4();
    let solver = TransientSolver::new(&model).expect("decomposes");
    let t0 = model.ambient_state();
    // 9 cores of power against the 16-core model.
    let err = solver
        .step(&model, &t0, &Vector::constant(9, 1.0), 1e-4)
        .expect_err("wrong power length");
    assert!(
        matches!(err, ThermalError::PowerLengthMismatch { .. }),
        "{err}"
    );
}

#[test]
fn step_many_rejects_one_bad_pair_among_good() {
    let model = model_4x4();
    let solver = TransientSolver::new(&model).expect("decomposes");
    let t0 = model.ambient_state();
    let good = Vector::constant(16, 1.0);
    let bad = Vector::constant(3, 1.0);
    let pairs = [(&t0, &good), (&t0, &bad)];
    assert!(solver.step_many(&model, &pairs, 1e-4).is_err());
    // The empty batch, by contrast, is a valid no-op.
    assert_eq!(solver.step_many(&model, &[], 1e-4).expect("ok").len(), 0);
}

#[test]
fn trajectory_rejects_bad_inputs_like_step() {
    let model = model_4x4();
    let solver = TransientSolver::new(&model).expect("decomposes");
    let t0 = model.ambient_state();
    let p = Vector::constant(16, 1.0);
    assert!(solver.trajectory(&model, &t0, &p, f64::NAN, 4).is_err());
    assert!(solver
        .trajectory(&model, &t0, &Vector::constant(2, 1.0), 1e-4, 4)
        .is_err());
}

#[test]
fn steady_state_rejects_dimension_mismatch() {
    let model = model_4x4();
    let err = model
        .steady_state(&Vector::constant(5, 1.0))
        .expect_err("wrong core count");
    assert!(
        matches!(err, ThermalError::PowerLengthMismatch { .. }),
        "{err}"
    );
}

#[test]
fn config_rejects_non_finite_ambient() {
    for ambient in [f64::NAN, f64::INFINITY] {
        let cfg = ThermalConfig {
            ambient,
            ..ThermalConfig::default()
        };
        assert!(
            cfg.validate().is_err(),
            "ambient {ambient} must not validate"
        );
    }
}
