//! Property-based tests for the RC thermal model and its solvers.

use hp_floorplan::{CoreId, GridFloorplan};
use hp_linalg::Vector;
use hp_thermal::{tsp, RcThermalModel, ThermalConfig, TransientSolver};
use proptest::prelude::*;

fn grid_dims() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=5, 2usize..=4)
}

fn power_vec(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(0.0..8.0f64, n).prop_map(Vector::from)
}

fn model_of(w: usize, h: usize) -> RcThermalModel {
    RcThermalModel::new(
        &GridFloorplan::new(w, h).expect("grid"),
        &ThermalConfig::default(),
    )
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn steady_state_above_ambient((w, h) in grid_dims(), seed in 0u64..1000) {
        let model = model_of(w, h);
        let n = w * h;
        let p = Vector::from_fn(n, |i| ((seed as usize + i) % 5) as f64);
        let t = model.steady_state(&p).unwrap();
        for &ti in &t {
            prop_assert!(ti >= 45.0 - 1e-9, "no node below ambient: {ti}");
        }
    }

    #[test]
    fn steady_state_monotone_in_power((w, h) in grid_dims(), extra in 0usize..20) {
        let model = model_of(w, h);
        let n = w * h;
        let base = Vector::constant(n, 1.0);
        let mut more = base.clone();
        more[extra % n] += 2.0;
        let t_base = model.steady_state(&base).unwrap();
        let t_more = model.steady_state(&more).unwrap();
        for i in 0..model.node_count() {
            prop_assert!(t_more[i] >= t_base[i] - 1e-9);
        }
    }

    #[test]
    fn transient_converges_to_steady((w, h) in grid_dims(), p in power_vec(25)) {
        let model = model_of(w, h);
        let n = w * h;
        let p = Vector::from_fn(n, |i| p[i % p.len()]);
        let solver = TransientSolver::new(&model).unwrap();
        let t = solver.step(&model, &model.ambient_state(), &p, 1e5).unwrap();
        let ss = model.steady_state(&p).unwrap();
        prop_assert!((&t - &ss).norm_inf() < 1e-5);
    }

    #[test]
    fn transient_semigroup((w, h) in grid_dims(), p in power_vec(25), dt in 1e-5..5e-3f64) {
        let model = model_of(w, h);
        let n = w * h;
        let p = Vector::from_fn(n, |i| p[i % p.len()]);
        let solver = TransientSolver::new(&model).unwrap();
        let t0 = model.ambient_state();
        let one = solver.step(&model, &t0, &p, 2.0 * dt).unwrap();
        let half = solver.step(&model, &t0, &p, dt).unwrap();
        let two = solver.step(&model, &half, &p, dt).unwrap();
        prop_assert!((&one - &two).norm_inf() < 1e-8);
    }

    #[test]
    fn transient_bounded_by_endpoints((w, h) in grid_dims(), p in power_vec(25)) {
        // Heating from ambient under constant power can never exceed the
        // steady state of that power map.
        let model = model_of(w, h);
        let n = w * h;
        let p = Vector::from_fn(n, |i| p[i % p.len()]);
        let solver = TransientSolver::new(&model).unwrap();
        let ss = model.steady_state(&p).unwrap();
        let mut t = model.ambient_state();
        for _ in 0..20 {
            t = solver.step(&model, &t, &p, 1e-3).unwrap();
            for i in 0..model.node_count() {
                prop_assert!(t[i] <= ss[i] + 1e-6, "node {i}: {} > {}", t[i], ss[i]);
            }
        }
    }

    #[test]
    fn tsp_budget_is_safe_and_tight((w, h) in grid_dims(), mask in 1u32..1000) {
        let model = model_of(w, h);
        let n = w * h;
        let active: Vec<CoreId> = (0..n).filter(|i| (mask >> (i % 10)) & 1 == 1).map(CoreId).collect();
        prop_assume!(!active.is_empty());
        let b = tsp::budget(&model, &active, 70.0, 0.3).unwrap();
        prop_assert!(b.per_core_watts > 0.0);
        // Safe: running at the budget stays at or below the threshold.
        prop_assert!(b.temperatures.max() <= 70.0 + 1e-6);
        // Tight: 5% above the budget violates it.
        let mut p = Vector::constant(n, 0.3);
        for &c in &active {
            p[c.index()] = b.per_core_watts * 1.05;
        }
        let t = model.steady_state(&p).unwrap();
        prop_assert!(model.core_temperatures(&t).max() > 70.0);
    }

    #[test]
    fn tsp_budget_antitone_in_active_set((w, h) in grid_dims()) {
        // Adding cores to the active set can only shrink the budget.
        let model = model_of(w, h);
        let n = w * h;
        for k in 1..n {
            let smaller: Vec<CoreId> = (0..k).map(CoreId).collect();
            let larger: Vec<CoreId> = (0..=k).map(CoreId).collect();
            let b_small = tsp::budget(&model, &smaller, 70.0, 0.3).unwrap();
            let b_large = tsp::budget(&model, &larger, 70.0, 0.3).unwrap();
            prop_assert!(b_large.per_core_watts <= b_small.per_core_watts + 1e-9);
        }
    }
}
