//! Property-based tests for the workload models and generators.

use hp_workload::{closed_batch, open_poisson, Benchmark};
use proptest::prelude::*;

fn benchmarks() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Blackscholes),
        Just(Benchmark::Bodytrack),
        Just(Benchmark::Canneal),
        Just(Benchmark::Dedup),
        Just(Benchmark::Fluidanimate),
        Just(Benchmark::Streamcluster),
        Just(Benchmark::Swaptions),
        Just(Benchmark::X264),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn specs_have_consistent_shape(b in benchmarks(), threads in 1usize..=16) {
        let spec = b.spec(threads);
        prop_assert_eq!(spec.thread_count(), threads);
        prop_assert!(!spec.phases().is_empty());
        prop_assert!(spec.total_instructions() > 0);
        for phase in spec.phases() {
            prop_assert_eq!(phase.thread_count(), threads);
            // Idle entries carry the idle work point; busy ones do not.
            for t in 0..threads {
                let w = phase.thread(t);
                prop_assert_eq!(w.instructions == 0, w.work.is_idle());
                if !w.work.is_idle() {
                    prop_assert!(w.work.cpi_base > 0.0);
                    prop_assert!(w.work.activity_exec > 0.0 && w.work.activity_exec <= 1.0);
                }
            }
        }
    }

    #[test]
    fn total_work_stable_across_thread_counts(b in benchmarks(), t1 in 1usize..=8, t2 in 1usize..=8) {
        // Parallelizing a benchmark re-divides its work; totals stay
        // within the rounding of integer division.
        let a = b.spec(t1).total_instructions() as f64;
        let c = b.spec(t2).total_instructions() as f64;
        prop_assert!((a - c).abs() / a.max(c) < 0.01, "{a} vs {c}");
    }

    #[test]
    fn closed_batch_exact_fill(b in benchmarks(), cores in 1usize..=64, seed in 0u64..100) {
        let jobs = closed_batch(b, cores, seed);
        let total: usize = jobs.iter().map(|j| j.spec.thread_count()).sum();
        prop_assert_eq!(total, cores);
        for j in &jobs {
            prop_assert_eq!(j.benchmark, b);
            prop_assert_eq!(j.arrival, 0.0);
        }
    }

    #[test]
    fn open_poisson_sorted_unique_ids(count in 1usize..=50, rate in 1.0..500.0f64, seed in 0u64..100) {
        let jobs = open_poisson(count, rate, seed);
        prop_assert_eq!(jobs.len(), count);
        for (i, j) in jobs.iter().enumerate() {
            prop_assert_eq!(j.id.0, i);
            prop_assert!(j.arrival.is_finite() && j.arrival > 0.0);
        }
        for w in jobs.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn power_ordering_swaptions_hottest_canneal_coolest(b in benchmarks()) {
        // The paper's characterisation: canneal produces the least heat.
        // Proxy for power: activity-weighted switching at a fixed stack.
        let proxy = |bench: Benchmark| {
            let w = bench.work_point();
            // Execution fraction at a representative CPI stack.
            let llc = w.l1_mpki / 1000.0 * 80.0;
            let mem = w.llc_mpki / 1000.0 * 320.0;
            let exec = w.cpi_base / (w.cpi_base + llc + mem);
            w.activity_exec * exec + w.activity_stall * (1.0 - exec)
        };
        prop_assert!(proxy(Benchmark::Canneal) <= proxy(b) + 1e-12);
        prop_assert!(proxy(b) <= proxy(Benchmark::Swaptions) + 1e-12);
    }

    #[test]
    fn generators_deterministic(b in benchmarks(), seed in 0u64..100) {
        prop_assert_eq!(closed_batch(b, 32, seed), closed_batch(b, 32, seed));
        prop_assert_eq!(open_poisson(10, 50.0, seed), open_poisson(10, 50.0, seed));
    }
}
