use hp_manycore::WorkPoint;
use serde::{Deserialize, Serialize};

use crate::{PhaseWork, TaskPhase, TaskSpec};

/// The eight PARSEC benchmarks the paper evaluates with (`sim-small`
/// inputs), as synthetic phase-structured models.
///
/// Instruction budgets are sized so a benchmark instance completes in tens
/// of milliseconds at 4 GHz — the same scale as the paper's Fig. 2 (a
/// 2-thread *blackscholes* run takes ~68 ms unmanaged). The relative
/// characteristics follow PARSEC's published characterisation:
/// *swaptions*/*blackscholes* compute-bound and hot, *canneal*
/// memory-bound and cool, the rest in between.
///
/// # Example
///
/// ```
/// use hp_workload::Benchmark;
///
/// // canneal is the memory-bound outlier: lowest activity, most misses.
/// let cool = Benchmark::Canneal.work_point();
/// let hot = Benchmark::Swaptions.work_point();
/// assert!(cool.l1_mpki > 10.0 * hot.l1_mpki);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Option pricing; compute-bound with a serial master–slave structure.
    Blackscholes,
    /// Body tracking; alternates compute and data-heavy phases.
    Bodytrack,
    /// Simulated annealing on a netlist; strongly memory-bound and cool.
    Canneal,
    /// Stream compression pipeline; moderate memory intensity.
    Dedup,
    /// Particle fluid simulation; compute-heavy with barrier phases.
    Fluidanimate,
    /// Online clustering of streamed points; memory-streaming.
    Streamcluster,
    /// Monte-Carlo swaption pricing; embarrassingly parallel and hottest.
    Swaptions,
    /// Video encoding; compute-heavy with variable parallelism.
    X264,
}

impl Benchmark {
    /// All benchmarks, in the order of the paper's Fig. 4(a).
    pub fn all() -> [Benchmark; 8] {
        [
            Benchmark::Streamcluster,
            Benchmark::X264,
            Benchmark::Bodytrack,
            Benchmark::Canneal,
            Benchmark::Blackscholes,
            Benchmark::Dedup,
            Benchmark::Fluidanimate,
            Benchmark::Swaptions,
        ]
    }

    /// Lower-case benchmark name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Canneal => "canneal",
            Benchmark::Dedup => "dedup",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
            Benchmark::X264 => "x264",
        }
    }

    /// The benchmark's dominant [`WorkPoint`] (parallel-phase behaviour).
    pub fn work_point(&self) -> WorkPoint {
        match self {
            Benchmark::Blackscholes => WorkPoint {
                cpi_base: 0.55,
                l1_mpki: 1.0,
                llc_mpki: 0.1,
                activity_exec: 1.0,
                activity_stall: 0.15,
            },
            Benchmark::Bodytrack => WorkPoint {
                cpi_base: 0.60,
                l1_mpki: 3.0,
                llc_mpki: 0.5,
                activity_exec: 0.90,
                activity_stall: 0.15,
            },
            Benchmark::Canneal => WorkPoint {
                cpi_base: 0.90,
                l1_mpki: 30.0,
                llc_mpki: 8.0,
                activity_exec: 0.75,
                activity_stall: 0.12,
            },
            Benchmark::Dedup => WorkPoint {
                cpi_base: 0.70,
                l1_mpki: 10.0,
                llc_mpki: 1.5,
                activity_exec: 0.85,
                activity_stall: 0.13,
            },
            Benchmark::Fluidanimate => WorkPoint {
                cpi_base: 0.60,
                l1_mpki: 5.0,
                llc_mpki: 0.8,
                activity_exec: 0.95,
                activity_stall: 0.14,
            },
            Benchmark::Streamcluster => WorkPoint {
                cpi_base: 0.75,
                l1_mpki: 20.0,
                llc_mpki: 3.0,
                activity_exec: 0.80,
                activity_stall: 0.12,
            },
            Benchmark::Swaptions => WorkPoint {
                cpi_base: 0.50,
                l1_mpki: 0.8,
                llc_mpki: 0.05,
                activity_exec: 1.0,
                activity_stall: 0.15,
            },
            Benchmark::X264 => WorkPoint {
                cpi_base: 0.58,
                l1_mpki: 4.0,
                llc_mpki: 0.6,
                activity_exec: 0.95,
                activity_stall: 0.15,
            },
        }
    }

    /// A serial-section work point (used by the master thread in serial
    /// phases): same memory behaviour, slightly lower ILP.
    fn serial_point(&self) -> WorkPoint {
        let mut w = self.work_point();
        w.cpi_base *= 1.15;
        w
    }

    /// Builds the synthetic [`TaskSpec`] for an instance with `threads`
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn spec(&self, threads: usize) -> TaskSpec {
        assert!(threads > 0, "a task needs at least one thread");
        match self {
            Benchmark::Blackscholes => self.master_slave(threads, 60, 220, 45),
            Benchmark::Bodytrack => self.alternating(threads, 4, 180),
            Benchmark::Canneal => self.flat(threads, 240),
            Benchmark::Dedup => self.master_slave(threads, 25, 160, 20),
            Benchmark::Fluidanimate => self.barriered(threads, 5, 160),
            Benchmark::Streamcluster => self.barriered(threads, 3, 220),
            Benchmark::Swaptions => self.flat(threads, 880),
            Benchmark::X264 => self.alternating(threads, 6, 240),
        }
    }

    /// Serial(master) → parallel(all-but-master) → serial(master) — the
    /// Fig. 2 structure. Budgets in mega-instructions.
    fn master_slave(
        &self,
        threads: usize,
        serial1_mi: u64,
        par_mi: u64,
        serial2_mi: u64,
    ) -> TaskSpec {
        let w = self.work_point();
        let sw = self.serial_point();
        let mi = 1_000_000u64;
        if threads == 1 {
            return TaskSpec::new(
                self.name(),
                vec![TaskPhase::new(vec![PhaseWork::busy(
                    (serial1_mi + par_mi + serial2_mi) * mi,
                    sw,
                )])],
            );
        }
        let slaves = (threads - 1) as u64;
        let per_slave = par_mi * mi / slaves;
        let phase1 = TaskPhase::new(
            (0..threads)
                .map(|t| {
                    if t == 0 {
                        PhaseWork::busy(serial1_mi * mi, sw)
                    } else {
                        PhaseWork::idle()
                    }
                })
                .collect(),
        );
        let phase2 = TaskPhase::new(
            (0..threads)
                .map(|t| {
                    if t == 0 {
                        PhaseWork::idle()
                    } else {
                        PhaseWork::busy(per_slave, w)
                    }
                })
                .collect(),
        );
        let phase3 = TaskPhase::new(
            (0..threads)
                .map(|t| {
                    if t == 0 {
                        PhaseWork::busy(serial2_mi * mi, sw)
                    } else {
                        PhaseWork::idle()
                    }
                })
                .collect(),
        );
        TaskSpec::new(self.name(), vec![phase1, phase2, phase3])
    }

    /// One fully parallel phase: `total_mi` mega-instructions divided
    /// evenly across threads (strong scaling — PARSEC's `sim-small`
    /// input is fixed regardless of thread count).
    fn flat(&self, threads: usize, total_mi: u64) -> TaskSpec {
        let w = self.work_point();
        let per_thread = total_mi * 1_000_000 / threads as u64;
        TaskSpec::new(
            self.name(),
            vec![TaskPhase::new(
                (0..threads)
                    .map(|_| PhaseWork::busy(per_thread, w))
                    .collect(),
            )],
        )
    }

    /// `phases` barrier-separated parallel phases dividing `total_mi`
    /// mega-instructions across phases and threads (strong scaling).
    fn barriered(&self, threads: usize, phases: usize, total_mi: u64) -> TaskSpec {
        let w = self.work_point();
        let per_entry = total_mi * 1_000_000 / (phases * threads) as u64;
        TaskSpec::new(
            self.name(),
            (0..phases)
                .map(|_| {
                    TaskPhase::new(
                        (0..threads)
                            .map(|_| PhaseWork::busy(per_entry, w))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Alternating parallel-compute / parallel-memory phases (bodytrack,
    /// x264 style): `pairs` pairs of phases dividing `total_mi`
    /// mega-instructions (strong scaling).
    fn alternating(&self, threads: usize, pairs: usize, total_mi: u64) -> TaskSpec {
        let hot = self.work_point();
        let cool = WorkPoint {
            cpi_base: hot.cpi_base * 1.2,
            l1_mpki: hot.l1_mpki * 4.0 + 5.0,
            llc_mpki: hot.llc_mpki * 3.0 + 1.0,
            activity_exec: hot.activity_exec * 0.9,
            activity_stall: hot.activity_stall,
        };
        let per_phase = total_mi * 1_000_000 / (2 * pairs * threads) as u64;
        let mut phases = Vec::with_capacity(2 * pairs);
        for _ in 0..pairs {
            phases.push(TaskPhase::new(
                (0..threads)
                    .map(|_| PhaseWork::busy(per_phase, hot))
                    .collect(),
            ));
            phases.push(TaskPhase::new(
                (0..threads)
                    .map(|_| PhaseWork::busy(per_phase, cool))
                    .collect(),
            ));
        }
        TaskSpec::new(self.name(), phases)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_at_various_sizes() {
        for b in Benchmark::all() {
            for threads in [1, 2, 3, 4, 8] {
                let spec = b.spec(threads);
                assert_eq!(spec.thread_count(), threads, "{b} x{threads}");
                assert!(spec.total_instructions() > 0);
            }
        }
    }

    #[test]
    fn blackscholes_has_master_slave_structure() {
        let spec = Benchmark::Blackscholes.spec(2);
        assert_eq!(spec.phases().len(), 3);
        // Phase 1: master busy, slave idle.
        assert!(spec.phases()[0].thread(0).instructions > 0);
        assert_eq!(spec.phases()[0].thread(1).instructions, 0);
        // Phase 2: master idle, slave busy.
        assert_eq!(spec.phases()[1].thread(0).instructions, 0);
        assert!(spec.phases()[1].thread(1).instructions > 0);
        // Phase 3: master wraps up.
        assert!(spec.phases()[2].thread(0).instructions > 0);
    }

    #[test]
    fn blackscholes_single_thread_collapses_to_one_phase() {
        let spec = Benchmark::Blackscholes.spec(1);
        assert_eq!(spec.phases().len(), 1);
        assert!(spec.total_instructions() > 0);
    }

    #[test]
    fn slave_work_splits_evenly() {
        let two = Benchmark::Blackscholes.spec(2);
        let five = Benchmark::Blackscholes.spec(5);
        let slave2 = two.phases()[1].thread(1).instructions;
        let slave5 = five.phases()[1].thread(1).instructions;
        assert_eq!(slave2, slave5 * 4);
    }

    #[test]
    fn canneal_is_memory_bound_and_flat() {
        let spec = Benchmark::Canneal.spec(4);
        assert_eq!(spec.phases().len(), 1);
        let w = spec.phases()[0].thread(0).work;
        assert!(w.l1_mpki >= 30.0);
    }

    #[test]
    fn swaptions_is_hot() {
        let w = Benchmark::Swaptions.work_point();
        assert!(w.activity_exec >= 1.0 && w.l1_mpki < 1.0);
    }

    #[test]
    fn alternating_benchmarks_alternate() {
        let spec = Benchmark::Bodytrack.spec(2);
        assert!(spec.phases().len() >= 4);
        let hot = spec.phases()[0].thread(0).work;
        let cool = spec.phases()[1].thread(0).work;
        assert!(cool.l1_mpki > hot.l1_mpki);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        Benchmark::Swaptions.spec(0);
    }
}
