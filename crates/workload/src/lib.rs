//! Synthetic PARSEC-like workload models for the interval simulator.
//!
//! The paper evaluates with eight PARSEC benchmarks (`sim-small` inputs).
//! PARSEC itself cannot run inside an abstract interval simulator, so this
//! crate provides **phase-structured synthetic models** of those
//! benchmarks: each benchmark is a [`TaskSpec`] — a sequence of barrier-
//! separated [`TaskPhase`]s in which every thread executes a given number
//! of instructions at a given [`hp_manycore::WorkPoint`] (base CPI, miss rates,
//! activity). This is exactly the information HotSniper's interval core
//! model exposes to the scheduler, so scheduler behaviour is preserved
//! (see DESIGN.md §2 for the substitution argument).
//!
//! The phase structure encodes the paper's motivational observation: e.g.
//! *blackscholes* has a master–slave structure whose serial phases leave
//! the slave cores idle (Fig. 2 discussion), and *canneal* is memory-bound
//! and produces very little heat (§VI).
//!
//! # Example
//!
//! ```
//! use hp_workload::Benchmark;
//!
//! let spec = Benchmark::Blackscholes.spec(2);
//! assert_eq!(spec.thread_count(), 2);
//! assert_eq!(spec.phases().len(), 3); // master / parallel / master
//! ```

mod benchmarks;
mod generator;
mod spec;

pub use benchmarks::Benchmark;
pub use generator::{closed_batch, open_poisson, Job, JobId};
pub use spec::{PhaseWork, TaskPhase, TaskSpec};
