use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Benchmark, TaskSpec};

/// Identifier of a job (task instance) inside a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub usize);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A task instance submitted to the system at a given time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id within the workload.
    pub id: JobId,
    /// The benchmark this job is an instance of.
    pub benchmark: Benchmark,
    /// The task specification (phases, per-thread work).
    pub spec: TaskSpec,
    /// Arrival time in seconds (0 for closed/batch workloads).
    pub arrival: f64,
}

/// Builds the paper's **homogeneous closed workload**: vari-sized
/// multi-threaded instances of a single benchmark that together fully load
/// `total_cores` cores, all arriving at `t = 0` (Fig. 4(a) setup).
///
/// Instance sizes cycle through a small set of thread counts, seeded for
/// reproducibility, until the core count is exactly filled.
///
/// # Panics
///
/// Panics if `total_cores == 0`.
///
/// # Example
///
/// ```
/// use hp_workload::{closed_batch, Benchmark};
///
/// let jobs = closed_batch(Benchmark::Swaptions, 64, 7);
/// let threads: usize = jobs.iter().map(|j| j.spec.thread_count()).sum();
/// assert_eq!(threads, 64);
/// ```
pub fn closed_batch(benchmark: Benchmark, total_cores: usize, seed: u64) -> Vec<Job> {
    assert!(total_cores > 0, "workload needs at least one core");
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = [2usize, 4, 8, 4, 2, 8];
    let mut jobs = Vec::new();
    let mut used = 0;
    let mut next = 0usize;
    while used < total_cores {
        let remaining = total_cores - used;
        let mut threads = sizes[next % sizes.len()];
        next += 1;
        // Jitter the size a little so instances are "vari-sized".
        if threads > 2 && rng.gen_bool(0.3) {
            threads -= 1;
        }
        if threads > remaining {
            threads = remaining;
        }
        jobs.push(Job {
            id: JobId(jobs.len()),
            benchmark,
            spec: benchmark.spec(threads),
            arrival: 0.0,
        });
        used += threads;
    }
    jobs
}

/// Builds the paper's **heterogeneous open workload**: `count` jobs of
/// random benchmarks and sizes arriving as a Poisson process with
/// `rate_per_s` arrivals per second (Fig. 4(b) setup: "a random
/// 20-benchmark multi-program multi-threaded workload ... tasks arrive at
/// different arrival rates following a Poisson distribution").
///
/// # Panics
///
/// Panics if `rate_per_s` is not positive or `count == 0`.
///
/// # Example
///
/// ```
/// use hp_workload::open_poisson;
///
/// let jobs = open_poisson(20, 50.0, 42);
/// assert_eq!(jobs.len(), 20);
/// // Arrivals are sorted and strictly increasing from zero.
/// assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
pub fn open_poisson(count: usize, rate_per_s: f64, seed: u64) -> Vec<Job> {
    assert!(count > 0, "workload needs at least one job");
    assert!(
        rate_per_s.is_finite() && rate_per_s > 0.0,
        "arrival rate must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let benchmarks = Benchmark::all();
    let sizes = [1usize, 2, 2, 4, 4, 8];
    let mut t = 0.0;
    (0..count)
        .map(|i| {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate_per_s;
            let benchmark = benchmarks[rng.gen_range(0..benchmarks.len())];
            let threads = sizes[rng.gen_range(0..sizes.len())];
            Job {
                id: JobId(i),
                benchmark,
                spec: benchmark.spec(threads),
                arrival: t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_batch_fills_exactly() {
        for cores in [1, 7, 16, 64] {
            let jobs = closed_batch(Benchmark::Canneal, cores, 3);
            let total: usize = jobs.iter().map(|j| j.spec.thread_count()).sum();
            assert_eq!(total, cores);
            assert!(jobs.iter().all(|j| j.arrival == 0.0));
        }
    }

    #[test]
    fn closed_batch_is_deterministic() {
        let a = closed_batch(Benchmark::X264, 64, 9);
        let b = closed_batch(Benchmark::X264, 64, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn closed_batch_ids_sequential() {
        let jobs = closed_batch(Benchmark::Dedup, 32, 1);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i));
        }
    }

    #[test]
    fn poisson_arrivals_increase() {
        let jobs = open_poisson(50, 100.0, 11);
        assert_eq!(jobs.len(), 50);
        for w in jobs.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
        assert!(jobs[0].arrival > 0.0);
    }

    #[test]
    fn poisson_rate_controls_density() {
        let slow = open_poisson(100, 10.0, 5);
        let fast = open_poisson(100, 1000.0, 5);
        assert!(slow.last().unwrap().arrival > fast.last().unwrap().arrival * 10.0);
    }

    #[test]
    fn poisson_mean_interarrival_plausible() {
        let rate = 200.0;
        let jobs = open_poisson(2000, rate, 17);
        let mean = jobs.last().unwrap().arrival / jobs.len() as f64;
        let expected = 1.0 / rate;
        assert!((mean / expected - 1.0).abs() < 0.15, "mean {mean:.5}");
    }

    #[test]
    fn poisson_mixes_benchmarks() {
        let jobs = open_poisson(200, 100.0, 23);
        let mut names: Vec<&str> = jobs.iter().map(|j| j.benchmark.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() >= 6, "only {} distinct benchmarks", names.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        open_poisson(5, 0.0, 1);
    }
}
