use hp_manycore::WorkPoint;
use serde::{Deserialize, Serialize};

/// The work one thread performs during one barrier-separated phase.
///
/// `instructions == 0` means the thread is idle for the entire phase
/// (e.g. a slave thread during a serial master phase).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseWork {
    /// Instructions to retire in this phase (0 = idle).
    pub instructions: u64,
    /// The interval characteristics while executing them.
    pub work: WorkPoint,
}

impl PhaseWork {
    /// An idle phase entry.
    pub fn idle() -> Self {
        PhaseWork {
            instructions: 0,
            work: WorkPoint::idle(),
        }
    }

    /// A busy phase entry.
    pub fn busy(instructions: u64, work: WorkPoint) -> Self {
        PhaseWork { instructions, work }
    }
}

/// One barrier-separated phase of a multi-threaded task.
///
/// The phase ends when *every* thread has retired its instructions;
/// early finishers idle-wait at the barrier (consuming idle power), which
/// is how the master–slave alternation of *blackscholes* manifests
/// thermally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskPhase {
    per_thread: Vec<PhaseWork>,
}

impl TaskPhase {
    /// Creates a phase from per-thread work entries.
    ///
    /// # Panics
    ///
    /// Panics if `per_thread` is empty.
    pub fn new(per_thread: Vec<PhaseWork>) -> Self {
        assert!(!per_thread.is_empty(), "a phase needs at least one thread");
        TaskPhase { per_thread }
    }

    /// Work entry of thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn thread(&self, t: usize) -> &PhaseWork {
        &self.per_thread[t]
    }

    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.per_thread.len()
    }

    /// Total instructions across all threads in this phase.
    pub fn total_instructions(&self) -> u64 {
        self.per_thread.iter().map(|w| w.instructions).sum()
    }
}

/// A complete multi-threaded task: an ordered sequence of barrier-separated
/// phases, all with the same thread count.
///
/// # Example
///
/// ```
/// use hp_manycore::WorkPoint;
/// use hp_workload::{PhaseWork, TaskPhase, TaskSpec};
///
/// let spec = TaskSpec::new(
///     "two-phase",
///     vec![
///         TaskPhase::new(vec![
///             PhaseWork::busy(1_000_000, WorkPoint::compute_bound()),
///             PhaseWork::idle(),
///         ]),
///         TaskPhase::new(vec![
///             PhaseWork::idle(),
///             PhaseWork::busy(2_000_000, WorkPoint::memory_bound()),
///         ]),
///     ],
/// );
/// assert_eq!(spec.thread_count(), 2);
/// assert_eq!(spec.total_instructions(), 3_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    name: String,
    phases: Vec<TaskPhase>,
}

impl TaskSpec {
    /// Creates a task from its phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or thread counts differ across phases.
    pub fn new(name: impl Into<String>, phases: Vec<TaskPhase>) -> Self {
        assert!(!phases.is_empty(), "a task needs at least one phase");
        let threads = phases[0].thread_count();
        assert!(
            phases.iter().all(|p| p.thread_count() == threads),
            "all phases must have the same thread count"
        );
        TaskSpec {
            name: name.into(),
            phases,
        }
    }

    /// The task's (benchmark) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The barrier-separated phases, in execution order.
    pub fn phases(&self) -> &[TaskPhase] {
        &self.phases
    }

    /// Number of threads (uniform across phases).
    pub fn thread_count(&self) -> usize {
        self.phases[0].thread_count()
    }

    /// Total instructions across all threads and phases.
    pub fn total_instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.total_instructions()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> TaskSpec {
        TaskSpec::new(
            "t",
            vec![
                TaskPhase::new(vec![
                    PhaseWork::busy(100, WorkPoint::compute_bound()),
                    PhaseWork::idle(),
                ]),
                TaskPhase::new(vec![
                    PhaseWork::busy(50, WorkPoint::compute_bound()),
                    PhaseWork::busy(200, WorkPoint::memory_bound()),
                ]),
            ],
        )
    }

    #[test]
    fn accounting() {
        let t = two_phase();
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t.total_instructions(), 350);
        assert_eq!(t.phases()[0].total_instructions(), 100);
        assert_eq!(t.phases()[1].thread(1).instructions, 200);
    }

    #[test]
    fn idle_entries_are_idle() {
        let t = two_phase();
        assert!(t.phases()[0].thread(1).work.is_idle());
        assert_eq!(t.phases()[0].thread(1).instructions, 0);
    }

    #[test]
    #[should_panic(expected = "same thread count")]
    fn mismatched_thread_counts_panic() {
        TaskSpec::new(
            "bad",
            vec![
                TaskPhase::new(vec![PhaseWork::idle()]),
                TaskPhase::new(vec![PhaseWork::idle(), PhaseWork::idle()]),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        TaskSpec::new("bad", vec![]);
    }
}
