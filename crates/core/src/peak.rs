//! Analytical peak temperature of a synchronous thread rotation
//! (paper §IV, Eqs. 4–11, and the efficient Algorithm 1).
//!
//! Within one epoch the power map is constant, so the node state follows
//! the exact affine map of Eq. (4):
//!
//! ```text
//! T_{k+1} = T_ss(P_k) + e^{Cτ} (T_k − T_ss(P_k))
//! ```
//!
//! Composing δ epochs and letting the number of periods d → ∞, the
//! epoch-boundary states of the steady cycle become geometric series in
//! the eigenbasis of `C` (Eqs. 8–9, valid because every eigenvalue is
//! negative):
//!
//! ```text
//! z*_0[i] = Σ_e e^{(δ−1−e)λᵢτ} · (1 − e^{λᵢτ}) / (1 − e^{δλᵢτ}) · y_e[i]
//! ```
//!
//! with `y_e = V⁻¹·T_ss(P_e)` — exactly the content of paper Eq. (10).
//! The remaining boundary states follow from the one-epoch recurrence, so
//! the whole cycle costs `O(δ·N²)` after the one-time eigendecomposition
//! — the same design-time/run-time split as the paper's Algorithm 1 (the
//! paper evaluates each boundary independently at `O(δ·N²)` each; the
//! recurrence shaves a factor of δ and [`RotationPeakSolver::peak_reference`]
//! keeps the literal per-boundary form for cross-validation).
//!
//! # Numerical stability
//!
//! Every Eq.-(10) weight is evaluated by the single [`cycle_weight`]
//! helper, directly from `λᵢτ` and via `expm1`. Deriving `λτ` by
//! round-tripping through `ln(e^{λτ})`, or forming `1 − e^{λτ}` by
//! subtraction, loses all significance for slow eigenmodes (`|λτ| ≲ 1e-8`,
//! e.g. a large heat-sink capacitance) — the fast recurrence and the
//! literal reference form once did one each of those and drifted past
//! 1e-7 °C apart; sharing one helper makes such divergence structurally
//! impossible.
//!
//! # Batch evaluation
//!
//! [`RotationPeakSolver::peak_celsius_many`] evaluates many candidate
//! rotations in one call by stacking their epochs into matrices (one
//! contiguous row per epoch): one GEMM maps all powers to eigen space,
//! the per-candidate cycle recurrences fill a boundary-state matrix, and
//! a second GEMM produces every junction temperature at once. Because
//! the register-tiled [`Matrix::mul_matrix`] accumulates each output
//! element in ascending inner-index order — the same order as the scalar
//! dot products — the batch results match
//! [`RotationPeakSolver::peak_celsius`] bit for bit while running
//! severalfold faster (SIMD GEMM inner loops, unit-stride batch
//! matrices, plus a per-τ cache of the `e^{λτ}` decay data).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hp_floorplan::CoreId;
use hp_linalg::eigen::SystemEigen;
use hp_linalg::{Matrix, NumericalError, Vector};
use hp_thermal::{DenseStepper, NumericsStats, RcThermalModel, CONDITION_FALLBACK_THRESHOLD};

use crate::{EpochPowerSequence, HotPotatoError, Result};

/// Distinct τ values cached per solver; the scheduler's τ-acceleration
/// explores a handful, so the cap only guards against pathological churn.
const DECAY_CACHE_CAP: usize = 64;

/// Basis residual `‖V·V⁻¹ − I‖∞` beyond which the eigendecomposition is
/// not trusted even if the eigenvalue spread looks acceptable (the same
/// threshold the transient solver applies).
const BASIS_RESIDUAL_THRESHOLD: f64 = 1e-6;

/// Peak outputs may undershoot ambient by round-off but never by a
/// degree; anything below trips the runtime invariant guard.
const GUARD_SLACK_CELSIUS: f64 = 1.0;

/// Physical ceiling above ambient — an eigen-path peak beyond a
/// kilokelvin rise is numerical garbage, not physics.
const GUARD_CEILING_RISE_CELSIUS: f64 = 1000.0;

/// Interior-mutable counter cells behind the solver's [`NumericsStats`].
#[derive(Debug, Default)]
struct NumericsCells {
    fallback_activations: AtomicU64,
    fallback_steps: AtomicU64,
    guard_trips: AtomicU64,
}

impl NumericsCells {
    fn snapshot(&self) -> NumericsStats {
        NumericsStats {
            // xtask: allow(relaxed) — monotonic tallies; snapshots are
            // taken between batches, so ordering carries no information.
            fallback_activations: self.fallback_activations.load(Ordering::Relaxed),
            fallback_steps: self.fallback_steps.load(Ordering::Relaxed),
            guard_trips: self.guard_trips.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for cell in [
            &self.fallback_activations,
            &self.fallback_steps,
            &self.guard_trips,
        ] {
            // xtask: allow(relaxed) — counters are zeroed between measured
            // runs, while no solver calls are in flight.
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn restore(&self, stats: NumericsStats) {
        let cells = [
            (&self.fallback_activations, stats.fallback_activations),
            (&self.fallback_steps, stats.fallback_steps),
            (&self.guard_trips, stats.guard_trips),
        ];
        for (cell, value) in cells {
            // xtask: allow(relaxed) — counters are overwritten between
            // measured runs (checkpoint resume), while no solver calls
            // are in flight.
            cell.store(value, Ordering::Relaxed);
        }
    }
}

/// Per-τ affine epoch map of the dense fallback: `T ↦ M·T + S·f` over
/// one epoch, extracted once from a [`DenseStepper`].
#[derive(Debug)]
struct DenseEpochMap {
    m: Matrix,
    s: Matrix,
}

/// Snapshot of an Algorithm-1 solver's activity tallies, taken with
/// [`RotationPeakSolver::stats`]. All values count events since
/// construction (or the last [`RotationPeakSolver::reset_stats`]) and
/// depend only on the sequence of solver calls — never on wall-clock
/// time — so they are seed-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Alg1Stats {
    /// Batched GEMM evaluations
    /// ([`peak_celsius_many`](RotationPeakSolver::peak_celsius_many),
    /// including the batch-of-one
    /// [`peak_celsius`](RotationPeakSolver::peak_celsius) path).
    pub batch_calls: u64,
    /// Total candidate rotations pushed through the batched kernel.
    pub batched_candidates: u64,
    /// `e^{λτ}` lookups served from the per-τ decay cache.
    pub decay_cache_hits: u64,
    /// `e^{λτ}` lookups that computed fresh epoch-decay data.
    pub decay_cache_misses: u64,
}

/// Interior-mutable counter cells behind [`Alg1Stats`].
#[derive(Debug, Default)]
struct StatsCells {
    batch_calls: AtomicU64,
    batched_candidates: AtomicU64,
    decay_cache_hits: AtomicU64,
    decay_cache_misses: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> Alg1Stats {
        Alg1Stats {
            // xtask: allow(relaxed) — monotonic tallies; snapshots are
            // taken between batches, so ordering carries no information.
            batch_calls: self.batch_calls.load(Ordering::Relaxed),
            batched_candidates: self.batched_candidates.load(Ordering::Relaxed),
            decay_cache_hits: self.decay_cache_hits.load(Ordering::Relaxed),
            decay_cache_misses: self.decay_cache_misses.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        let cells = [
            &self.batch_calls,
            &self.batched_candidates,
            &self.decay_cache_hits,
            &self.decay_cache_misses,
        ];
        for cell in cells {
            // xtask: allow(relaxed) — counters are zeroed between measured
            // runs, while no solver calls are in flight.
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn restore(&self, stats: Alg1Stats) {
        let cells = [
            (&self.batch_calls, stats.batch_calls),
            (&self.batched_candidates, stats.batched_candidates),
            (&self.decay_cache_hits, stats.decay_cache_hits),
            (&self.decay_cache_misses, stats.decay_cache_misses),
        ];
        for (cell, value) in cells {
            // xtask: allow(relaxed) — counters are overwritten between
            // measured runs (checkpoint resume), while no solver calls
            // are in flight.
            cell.store(value, Ordering::Relaxed);
        }
    }
}

/// One steady-cycle weight of paper Eq. (10):
/// `e^{age·λτ} · (1 − e^{λτ}) / (1 − e^{δλτ})`.
///
/// Both the fast recurrence (via [`cycle_start`]) and the literal
/// reference form ([`RotationPeakSolver::peak_reference`]) obtain their
/// weights here, so the two paths cannot drift apart numerically. `λτ`
/// must be the product `eigenvalue · τ` itself — never recovered from
/// `m.ln()` — and the complements come from `expm1`, never `1 − m`.
fn cycle_weight(lam_tau: f64, delta: usize, age: usize) -> f64 {
    debug_assert!(lam_tau <= 0.0, "stable modes only");
    let den = -f64::exp_m1(delta as f64 * lam_tau);
    if den < f64::MIN_POSITIVE {
        // δλτ underflowed expm1 entirely: every epoch weighs 1/δ.
        return 1.0 / delta as f64;
    }
    (age as f64 * lam_tau).exp() * -f64::exp_m1(lam_tau) / den
}

/// Per-τ decay data shared by every Algorithm-1 evaluation: `λᵢτ`, the
/// decay factors `m = e^{λτ}`, and their stable complements
/// `1 − m = -expm1(λτ)`.
#[derive(Debug)]
struct EpochDecay {
    lam_tau: Vector,
    m: Vector,
    one_minus_m: Vector,
}

impl EpochDecay {
    fn new(eigenvalues: &Vector, tau: f64) -> Self {
        let n = eigenvalues.len();
        let lam_tau = Vector::from_fn(n, |i| eigenvalues[i] * tau);
        EpochDecay {
            m: Vector::from_fn(n, |i| lam_tau[i].exp()),
            one_minus_m: Vector::from_fn(n, |i| -f64::exp_m1(lam_tau[i])),
            lam_tau,
        }
    }
}

/// Steady-cycle start state in eigen coordinates (paper Eq. 10):
/// `z0[i] = Σ_e m_i^{δ−1−e} · (1−m_i)/(1−m_i^δ) · y_e[i]`.
fn cycle_start(delta: usize, nodes: usize, decay: &EpochDecay, ys: &[&[f64]]) -> Vector {
    let mut z = Vector::zeros(nodes);
    for i in 0..nodes {
        let w = cycle_weight(decay.lam_tau[i], delta, 0);
        let mut acc = 0.0;
        let mut pow = 1.0; // m^{delta-1-e} built backwards: e = delta-1 .. 0
        for e in (0..delta).rev() {
            acc += pow * ys[e][i];
            pow *= decay.m[i];
        }
        z[i] = w * acc;
    }
    z
}

/// Borrowed row views of a set of eigen-space epoch states, the form
/// [`cycle_start`] consumes (the batch path hands it rows of a packed
/// matrix, the scalar paths hand it their per-epoch vectors).
fn as_rows(ys: &[Vector]) -> Vec<&[f64]> {
    ys.iter().map(Vector::as_slice).collect()
}

/// The result of a peak-temperature analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakReport {
    /// Hottest junction temperature over the steady cycle, °C.
    pub peak_celsius: f64,
    /// The junction that reaches the peak.
    pub critical_core: CoreId,
    /// The epoch boundary (0-based, end of epoch `e`) where the peak occurs.
    pub critical_epoch: usize,
    /// Junction temperatures at every epoch boundary of the steady cycle.
    pub boundary_temps: Vec<Vector>,
}

/// Computes steady-cycle peak temperatures for rotations on a fixed
/// thermal model.
///
/// Construction performs the *design-time phase* of Algorithm 1 (the
/// eigendecomposition of `C = −A⁻¹B` and the factorization of `B`);
/// each [`peak`](RotationPeakSolver::peak) call is then the *run-time
/// phase* — tens of microseconds for a 64-core chip, matching the paper's
/// 23.76 µs overhead measurement. Batches of candidates go through
/// [`peak_celsius_many`](RotationPeakSolver::peak_celsius_many), which
/// shares its work across candidates via two GEMMs.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug)]
pub struct RotationPeakSolver {
    model: RcThermalModel,
    eigen: SystemEigen,
    /// Precomputed `-diag(1/λ) · V⁻¹ · A⁻¹` restricted to the junction
    /// columns: maps a per-core power vector straight to the eigen-space
    /// steady-state contribution (`y = proj·p + y_amb`), replacing a
    /// linear solve per epoch with one thin mat-vec.
    proj: Matrix,
    /// `V⁻¹ · B⁻¹·G·T_amb` — the ambient term in eigen coordinates.
    y_amb: Vector,
    /// The junction rows of `V` (`cores × nodes`), used by the scalar
    /// paths' per-boundary junction dots.
    v_junction: Matrix,
    /// `projᵀ` (`cores × nodes`): right-hand side of the transposed
    /// stage-1 GEMM in [`peak_celsius_many`](Self::peak_celsius_many),
    /// whose batch matrices keep each epoch contiguous as a row.
    proj_t: Matrix,
    /// `V_junctionᵀ` (`nodes × cores`): right-hand side of the transposed
    /// stage-3 GEMM in [`peak_celsius_many`](Self::peak_celsius_many).
    v_junction_t: Matrix,
    /// `τ.to_bits() → EpochDecay`, cached because the scheduler probes
    /// many candidate rotations at few distinct τ.
    decay_cache: Mutex<BTreeMap<u64, Arc<EpochDecay>>>,
    /// Activity tallies for run reports ([`RotationPeakSolver::stats`]).
    stats: StatsCells,
    /// Construction-time verdict: the eigendecomposition failed its trust
    /// checks, so every peak evaluation routes through the dense cycle
    /// fallback from the start. Immutable — a property of the model.
    armed: bool,
    /// Runtime verdict: an invariant guard tripped on an eigen-path peak.
    /// Sticky for the solver's lifetime.
    tripped: AtomicBool,
    /// `τ.to_bits() → dense epoch map`, lazily built per epoch length for
    /// the fallback path (an `O(N³)` extraction, amortized across every
    /// candidate at that τ).
    dense_cache: Mutex<BTreeMap<u64, Arc<DenseEpochMap>>>,
    /// Numerical-integrity tallies ([`RotationPeakSolver::numerics`]).
    numerics: NumericsCells,
}

impl Clone for RotationPeakSolver {
    fn clone(&self) -> Self {
        let cache = self
            .decay_cache
            .lock()
            .map(|c| c.clone())
            .unwrap_or_default();
        RotationPeakSolver {
            model: self.model.clone(),
            eigen: self.eigen.clone(),
            proj: self.proj.clone(),
            y_amb: self.y_amb.clone(),
            v_junction: self.v_junction.clone(),
            proj_t: self.proj_t.clone(),
            v_junction_t: self.v_junction_t.clone(),
            decay_cache: Mutex::new(cache),
            // A clone starts its own tally: stats describe what *this*
            // handle performed, not its ancestry.
            stats: StatsCells::default(),
            armed: self.armed,
            // The degradation verdict is inherited: it describes the
            // model, and a clone evaluates the same model.
            // xtask: allow(relaxed) — single flag, no ordering payload.
            tripped: AtomicBool::new(self.tripped.load(Ordering::Relaxed)),
            dense_cache: Mutex::new(BTreeMap::new()),
            numerics: NumericsCells::default(),
        }
    }
}

impl RotationPeakSolver {
    /// Builds the solver (design-time phase: one eigendecomposition).
    ///
    /// # Errors
    ///
    /// Propagates eigendecomposition failures.
    pub fn new(model: RcThermalModel) -> Result<Self> {
        let eigen = SystemEigen::new(model.a_diag(), model.b())?;
        Ok(Self::with_eigen(model, eigen))
    }

    /// Builds the solver from a prebuilt eigendecomposition of the
    /// model's `C = −A⁻¹B` (the design-time phase already paid for).
    ///
    /// This is the cache-handle constructor used by sweep runners that
    /// factorize each chip configuration once and share the result
    /// across jobs. The eigendecomposition must belong to `model`; a
    /// mismatch yields meaningless peak estimates (not unsoundness).
    pub fn with_eigen(model: RcThermalModel, eigen: SystemEigen) -> Self {
        let nodes = model.node_count();
        let cores = model.core_count();
        let v_inv = eigen.v_inv();
        let lambda = eigen.eigenvalues();
        let a = model.a_diag();
        let proj = Matrix::from_fn(nodes, cores, |i, j| -v_inv[(i, j)] / (lambda[i] * a[j]));
        let y_amb = v_inv.mul_vector(model.ambient_response());
        let v = eigen.v();
        let v_junction = Matrix::from_fn(cores, nodes, |c, k| v[(c, k)]);
        let proj_t = proj.transpose();
        let v_junction_t = v_junction.transpose();
        // Construction-time trust verdict on the fast path, mirroring the
        // transient solver's arming rule.
        let armed = eigen.eigenvalue_spread() >= CONDITION_FALLBACK_THRESHOLD
            || eigen.basis_residual() > BASIS_RESIDUAL_THRESHOLD;
        RotationPeakSolver {
            model,
            eigen,
            proj,
            y_amb,
            v_junction,
            proj_t,
            v_junction_t,
            decay_cache: Mutex::new(BTreeMap::new()),
            stats: StatsCells::default(),
            armed,
            tripped: AtomicBool::new(false),
            dense_cache: Mutex::new(BTreeMap::new()),
            numerics: NumericsCells::default(),
        }
    }

    /// Whether peak evaluations currently route through the dense cycle
    /// fallback instead of the Algorithm-1 eigen path — either because
    /// the eigendecomposition failed its construction-time trust checks
    /// or because a runtime invariant guard tripped (sticky).
    pub fn degraded(&self) -> bool {
        // xtask: allow(relaxed) — single sticky flag, no ordering payload.
        self.armed || self.tripped.load(Ordering::Relaxed)
    }

    /// Snapshot of the numerical-integrity tallies (fallback activations
    /// and cycle-epoch steps, guard trips) since construction or the last
    /// [`reset_stats`](RotationPeakSolver::reset_stats).
    pub fn numerics(&self) -> NumericsStats {
        self.numerics.snapshot()
    }

    /// Overwrites the numerical-integrity tallies with a previously
    /// captured [`NumericsStats`] — the checkpoint-resume path, mirroring
    /// [`restore_stats`](RotationPeakSolver::restore_stats).
    pub fn restore_numerics(&self, stats: NumericsStats) {
        self.numerics.restore(stats);
    }

    /// The thermal model the solver was built for.
    pub fn model(&self) -> &RcThermalModel {
        &self.model
    }

    /// Snapshot of the solver's activity tallies (batched GEMM counts,
    /// decay-cache hits/misses) since construction or the last
    /// [`reset_stats`](RotationPeakSolver::reset_stats).
    pub fn stats(&self) -> Alg1Stats {
        self.stats.snapshot()
    }

    /// Zeroes the activity and numerical-integrity tallies (start of a
    /// new measured run). The sticky degradation flag is *not* cleared:
    /// a guard trip indicts the model's eigendecomposition, not the run.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.numerics.reset();
    }

    /// Overwrites the activity tallies with a previously captured
    /// [`Alg1Stats`] — the checkpoint-resume path, where the resumed
    /// run must report the same cumulative counters as an uninterrupted
    /// one. Call after any cache warming so the restored values are not
    /// perturbed by warm-up lookups.
    pub fn restore_stats(&self, stats: Alg1Stats) {
        self.stats.restore(stats);
    }

    /// The epoch lengths currently held in the decay cache, for
    /// checkpointing cache warmth.
    pub fn cached_taus(&self) -> Vec<f64> {
        let cache = self
            .decay_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        cache.keys().map(|&bits| f64::from_bits(bits)).collect()
    }

    /// Precomputes (and caches) the decay data for one epoch length,
    /// counting the usual hit/miss. A resuming run warms the cache for
    /// every τ a checkpoint recorded ([`Self::cached_taus`]) *before*
    /// restoring stats so the resumed counter stream matches an
    /// uninterrupted run's.
    pub fn warm_decay_cache(&self, tau: f64) {
        let _ = self.decay_for(tau);
    }

    /// Cached `e^{λτ}` decay data for one epoch length.
    fn decay_for(&self, tau: f64) -> Arc<EpochDecay> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the cache holds immutable Arcs, so its contents stay valid.
        let mut cache = self
            .decay_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(d) = cache.get(&tau.to_bits()) {
            // xtask: allow(relaxed) — cache tally, read only via snapshot().
            self.stats.decay_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(d);
        }
        // xtask: allow(relaxed) — cache tally, read only via snapshot().
        self.stats
            .decay_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        if cache.len() >= DECAY_CACHE_CAP {
            cache.clear();
        }
        let d = Arc::new(EpochDecay::new(self.eigen.eigenvalues(), tau));
        cache.insert(tau.to_bits(), Arc::clone(&d));
        d
    }

    /// Rejects non-finite epoch power at the API boundary: a NaN power
    /// map would propagate silently through both the eigen and the dense
    /// path, so it is named up front instead.
    fn check_seq_finite(seq: &EpochPowerSequence) -> Result<()> {
        for e in 0..seq.delta() {
            if seq.epoch(e).iter().any(|v| !v.is_finite()) {
                return Err(HotPotatoError::Linalg(
                    NumericalError::NonFinite {
                        what: "epoch power map",
                    }
                    .into(),
                ));
            }
        }
        Ok(())
    }

    /// Whether an eigen-path peak violates the physical envelope.
    fn peak_violates_envelope(&self, peak: f64) -> bool {
        let amb = self.model.config().ambient;
        !peak.is_finite()
            || peak < amb - GUARD_SLACK_CELSIUS
            || peak > amb + GUARD_CEILING_RISE_CELSIUS
    }

    /// Cached dense affine epoch map `T ↦ M·T + S·f` for one τ.
    fn dense_map_for(&self, tau: f64) -> Result<Arc<DenseEpochMap>> {
        // Poisoned-lock policy matches decay_for: contents stay valid.
        let mut cache = self
            .dense_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(map) = cache.get(&tau.to_bits()) {
            return Ok(Arc::clone(map));
        }
        if cache.len() >= DECAY_CACHE_CAP {
            cache.clear();
        }
        let stepper = DenseStepper::new(&self.model, tau)?;
        let (m, s) = stepper.epoch_map()?;
        let map = Arc::new(DenseEpochMap { m, s });
        cache.insert(tau.to_bits(), Arc::clone(&map));
        Ok(map)
    }

    /// Dense-fallback form of [`peak`](RotationPeakSolver::peak): the
    /// steady cycle is obtained from the backward-Euler epoch map instead
    /// of the eigenbasis.
    ///
    /// Composing the per-epoch affine maps over one period gives
    /// `T_cycle = M_cyc·T + c_cyc`; the cycle's fixed point solves
    /// `(I − M_cyc)·T* = c_cyc` (unique because every mode of the
    /// A-stable map contracts), via an iteratively refined LU solve.
    /// Replaying one period from `T*` yields every boundary state.
    fn peak_report_dense(&self, seq: &EpochPowerSequence) -> Result<PeakReport> {
        let delta = seq.delta();
        let nodes = self.model.node_count();
        // xtask: allow(relaxed) — monotonic tallies, read via snapshot().
        if self.numerics.fallback_steps.load(Ordering::Relaxed) == 0 {
            // First dense evaluation of this measured run: one activation
            // episode (counting episodes keeps the tally deterministic
            // across batch-size choices).
            // xtask: allow(relaxed) — monotonic tally.
            self.numerics
                .fallback_activations
                .fetch_add(1, Ordering::Relaxed);
        }
        let map = self.dense_map_for(seq.tau())?;
        let forcings: Vec<Vector> = (0..delta)
            .map(|e| self.model.forcing(seq.epoch(e)))
            .collect::<std::result::Result<_, _>>()?;

        // One period as a single affine map: T ↦ M_cyc·T + c_cyc.
        let mut m_cyc = Matrix::identity(nodes);
        let mut c_cyc = Vector::zeros(nodes);
        for f in &forcings {
            m_cyc = map.m.mul_matrix(&m_cyc)?;
            c_cyc = &map.m.mul_vector(&c_cyc) + &map.s.mul_vector(f);
        }
        let i_minus = Matrix::from_fn(nodes, nodes, |i, j| {
            let id = if i == j { 1.0 } else { 0.0 };
            id - m_cyc[(i, j)]
        });
        let lu = i_minus.lu()?;
        let t_star = lu.solve_refined(&i_minus, &c_cyc)?;

        // Replay one period from the fixed point, recording boundaries.
        let mut boundary_temps = Vec::with_capacity(delta);
        let mut peak = f64::NEG_INFINITY;
        let mut critical_core = CoreId(0);
        let mut critical_epoch = 0;
        let mut t = t_star;
        for (e, f) in forcings.iter().enumerate() {
            t = &map.m.mul_vector(&t) + &map.s.mul_vector(f);
            let cores = self.model.core_temperatures(&t);
            if cores.iter().any(|v| !v.is_finite()) {
                return Err(HotPotatoError::Linalg(
                    NumericalError::NonFinite {
                        what: "dense cycle boundary temperatures",
                    }
                    .into(),
                ));
            }
            if let Some(idx) = cores.argmax() {
                if cores[idx] > peak {
                    peak = cores[idx];
                    critical_core = CoreId(idx);
                    critical_epoch = e;
                }
            }
            boundary_temps.push(cores);
        }
        // xtask: allow(cast) — usize→u64 is lossless on every supported
        // target.
        // xtask: allow(relaxed) — monotonic tally, read via snapshot().
        self.numerics
            .fallback_steps
            .fetch_add(delta as u64, Ordering::Relaxed);
        Ok(PeakReport {
            peak_celsius: peak,
            critical_core,
            critical_epoch,
            boundary_temps,
        })
    }

    /// Trips the sticky degradation flag after a guard violation.
    fn trip_guard(&self) {
        // xtask: allow(relaxed) — monotonic tally, read via snapshot().
        self.numerics.guard_trips.fetch_add(1, Ordering::Relaxed);
        // xtask: allow(relaxed) — single sticky flag.
        self.tripped.store(true, Ordering::Relaxed);
    }

    /// Run-time phase: steady-cycle boundary temperatures and their peak
    /// for the rotation described by `seq`.
    ///
    /// # Errors
    ///
    /// * [`HotPotatoError::InvalidSequence`] if `seq` covers a different
    ///   number of cores than the model.
    /// * Propagated thermal/solver errors.
    pub fn peak(&self, seq: &EpochPowerSequence) -> Result<PeakReport> {
        if self.degraded() {
            self.validate_seq(seq)?;
            return self.peak_report_dense(seq);
        }
        let (delta, nodes, decay, ys) = self.prepare(seq)?;

        let mut z = cycle_start(delta, nodes, &decay, &as_rows(&ys));

        // Walk the cycle: z_{k+1} = m ⊙ z_k + (1-m) ⊙ y_k, row-stacking
        // the boundary states so one GEMM against the junction rows of `V`
        // reconstructs every boundary's junction temperatures at once
        // (bit-identical to the per-boundary `V·z` mat-vecs — see
        // `peak_report_serial`).
        let mut z_t = Matrix::zeros(delta, nodes);
        for (e, y) in ys.iter().enumerate() {
            for i in 0..nodes {
                z[i] = decay.m[i] * z[i] + decay.one_minus_m[i] * y[i];
            }
            z_t.row_mut(e).copy_from_slice(z.as_slice());
        }
        let t = z_t.mul_matrix(&self.v_junction_t)?; // δ × cores

        let mut boundary_temps = Vec::with_capacity(delta);
        let mut peak = f64::NEG_INFINITY;
        let mut critical_core = CoreId(0);
        let mut critical_epoch = 0;
        for e in 0..delta {
            let cores = Vector::from(t.row(e).to_vec());
            if let Some(idx) = cores.argmax() {
                if cores[idx] > peak {
                    peak = cores[idx];
                    critical_core = CoreId(idx);
                    critical_epoch = e;
                }
            }
            boundary_temps.push(cores);
        }

        // Runtime invariant guard: an eigen-path peak outside the
        // physical envelope is numerical garbage. Trip the sticky flag
        // and redo the cycle densely — the dense result is authoritative.
        if self.peak_violates_envelope(peak) {
            self.trip_guard();
            return self.peak_report_dense(seq);
        }

        Ok(PeakReport {
            peak_celsius: peak,
            critical_core,
            critical_epoch,
            boundary_temps,
        })
    }

    /// Serial form of [`peak`](RotationPeakSolver::peak): one full `V·z`
    /// mat-vec per boundary instead of the row-stacked GEMM. Kept as the
    /// differential-testing reference the batched report path must match
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`peak`](RotationPeakSolver::peak).
    #[doc(hidden)]
    pub fn peak_report_serial(&self, seq: &EpochPowerSequence) -> Result<PeakReport> {
        let (delta, nodes, decay, ys) = self.prepare(seq)?;
        let mut z = cycle_start(delta, nodes, &decay, &as_rows(&ys));
        let mut boundary_temps = Vec::with_capacity(delta);
        let mut peak = f64::NEG_INFINITY;
        let mut critical_core = CoreId(0);
        let mut critical_epoch = 0;
        for (e, y) in ys.iter().enumerate() {
            for i in 0..nodes {
                z[i] = decay.m[i] * z[i] + decay.one_minus_m[i] * y[i];
            }
            let t_nodes = self.eigen.v().mul_vector(&z);
            let cores = self.model.core_temperatures(&t_nodes);
            if let Some(idx) = cores.argmax() {
                if cores[idx] > peak {
                    peak = cores[idx];
                    critical_core = CoreId(idx);
                    critical_epoch = e;
                }
            }
            boundary_temps.push(cores);
        }
        Ok(PeakReport {
            peak_celsius: peak,
            critical_core,
            critical_epoch,
            boundary_temps,
        })
    }

    /// Reference implementation of paper Eq. (10): every boundary state is
    /// assembled independently through explicit spectral-filter matrices,
    /// at `O(δ²N²)` — the complexity the paper quotes for Algorithm 1.
    /// Used to cross-validate [`peak`](RotationPeakSolver::peak) and to
    /// benchmark the recurrence against the literal form.
    ///
    /// # Errors
    ///
    /// Same as [`peak`](RotationPeakSolver::peak).
    pub fn peak_reference(&self, seq: &EpochPowerSequence) -> Result<f64> {
        self.validate_seq(seq)?;
        let delta = seq.delta();
        let nodes = self.model.node_count();
        let decay = self.decay_for(seq.tau());
        // Steady states resolved through the linear solver — deliberately
        // *not* via the precomputed projection, so this path also
        // cross-validates it.
        let steady: Vec<Vector> = (0..delta)
            .map(|e| self.model.steady_state(seq.epoch(e)))
            .collect::<std::result::Result<_, _>>()?;

        let mut peak = f64::NEG_INFINITY;
        for k in 0..delta {
            // Boundary after epoch k: sum over the δ most recent epochs,
            // each filtered by the Eq.-(10) weight m^{age}(1−m)/(1−m^δ).
            let mut t_nodes = Vector::zeros(nodes);
            for age in 0..delta {
                // Epoch index whose steady state is `age` epochs old at
                // boundary k.
                let e = (k + delta - age) % delta;
                let filter = Vector::from_fn(nodes, |i| cycle_weight(decay.lam_tau[i], delta, age));
                let contrib = self.eigen.spectral_apply(&filter, &steady[e]);
                t_nodes += &contrib;
            }
            let cores = self.model.core_temperatures(&t_nodes);
            peak = peak.max(cores.max());
        }
        Ok(peak)
    }

    /// Shared validation + precomputation: returns
    /// `(delta, node_count, decay data for τ, eigen-space steady states
    /// per epoch)` where `ys[e] = V⁻¹·T_ss(P_e)`.
    /// Shared input validation: core count and power finiteness.
    fn validate_seq(&self, seq: &EpochPowerSequence) -> Result<()> {
        if seq.core_count() != self.model.core_count() {
            return Err(HotPotatoError::InvalidSequence(
                "power vectors do not match the model's core count",
            ));
        }
        Self::check_seq_finite(seq)
    }

    fn prepare(
        &self,
        seq: &EpochPowerSequence,
    ) -> Result<(usize, usize, Arc<EpochDecay>, Vec<Vector>)> {
        self.validate_seq(seq)?;
        let nodes = self.model.node_count();
        let decay = self.decay_for(seq.tau());
        let ys: Vec<Vector> = (0..seq.delta())
            .map(|e| &self.proj.mul_vector(seq.epoch(e)) + &self.y_amb)
            .collect();
        Ok((seq.delta(), nodes, decay, ys))
    }

    /// Run-time phase, peak only: identical mathematics to
    /// [`peak`](RotationPeakSolver::peak) but evaluates *junction rows
    /// only* at each boundary and skips the report — this is the inner
    /// loop of the HotPotato scheduler (tens of microseconds for the
    /// 64-core chip, the paper's 23.76 µs measurement).
    ///
    /// # Errors
    ///
    /// Same as [`peak`](RotationPeakSolver::peak).
    pub fn peak_celsius(&self, seq: &EpochPowerSequence) -> Result<f64> {
        if self.degraded() {
            self.validate_seq(seq)?;
            return Ok(self.peak_report_dense(seq)?.peak_celsius);
        }
        let (delta, nodes, decay, ys) = self.prepare(seq)?;
        let cores = self.model.core_count();
        let mut z = cycle_start(delta, nodes, &decay, &as_rows(&ys));
        let mut peak = f64::NEG_INFINITY;
        for y in &ys {
            for i in 0..nodes {
                z[i] = decay.m[i] * z[i] + decay.one_minus_m[i] * y[i];
            }
            for c in 0..cores {
                let row = self.v_junction.row(c);
                let t: f64 = row.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
                peak = peak.max(t);
            }
        }
        if self.peak_violates_envelope(peak) {
            self.trip_guard();
            return Ok(self.peak_report_dense(seq)?.peak_celsius);
        }
        Ok(peak)
    }

    /// Batched run-time phase: the peak of every candidate rotation in
    /// `seqs`, agreeing with per-candidate
    /// [`peak_celsius`](RotationPeakSolver::peak_celsius) calls bit for
    /// bit.
    ///
    /// The candidates' epochs are stacked (one contiguous row per epoch,
    /// i.e. the transposed batch layout) so the expensive linear algebra
    /// amortizes across the whole batch and every intermediate access
    /// stays unit-stride:
    ///
    /// 1. one `Pᵀ × projᵀ` GEMM maps every epoch's power map to eigen
    ///    space (`Pᵀ` is `Σδ × cores`),
    /// 2. each candidate's steady cycle closes with the cheap `O(δN)`
    ///    recurrence, writing its boundary states into rows of a shared
    ///    `Σδ × nodes` matrix,
    /// 3. one `Z × V_junctionᵀ` GEMM yields every junction temperature at
    ///    every boundary of every candidate, reduced per candidate.
    ///
    /// Transposing both GEMM operands leaves every dot product's terms
    /// and their ascending-`k` order unchanged, which is why the batch is
    /// bit-identical to the scalar path. Decay vectors `e^{λτ}` are
    /// cached per distinct τ, so a probe sweep at one τ computes them
    /// once. This is the batch entry point used by the scheduler's
    /// promotion/demotion probes and the design-space oracle; on the 8×8
    /// chip it is severalfold faster than the serial loop (see
    /// `benches/overhead_alg1.rs`).
    ///
    /// # Errors
    ///
    /// Same as [`peak`](RotationPeakSolver::peak), applied to every
    /// element of `seqs`.
    pub fn peak_celsius_many(&self, seqs: &[EpochPowerSequence]) -> Result<Vec<f64>> {
        if seqs.is_empty() {
            return Ok(Vec::new());
        }
        // xtask: allow(relaxed) — activity tally, read only via snapshot().
        self.stats.batch_calls.fetch_add(1, Ordering::Relaxed);
        // xtask: allow(relaxed) — activity tally, read only via snapshot().
        self.stats
            .batched_candidates
            .fetch_add(seqs.len() as u64, Ordering::Relaxed);
        let cores = self.model.core_count();
        let nodes = self.model.node_count();
        for seq in seqs {
            self.validate_seq(seq)?;
        }
        if self.degraded() {
            // The dense epoch map is cached per τ, so a batch at one τ
            // still amortizes the expensive extraction.
            return seqs
                .iter()
                .map(|seq| Ok(self.peak_report_dense(seq)?.peak_celsius))
                .collect();
        }
        let total: usize = seqs.iter().map(EpochPowerSequence::delta).sum();

        // Stage 1: row-stack every epoch of every candidate and map the
        // whole batch to eigen space with one GEMM, folding the ambient
        // term in while the result is hot.
        let mut p_t = Matrix::zeros(total, cores);
        let mut row = 0;
        for seq in seqs {
            for e in 0..seq.delta() {
                p_t.row_mut(row).copy_from_slice(seq.epoch(e).as_slice());
                row += 1;
            }
        }
        let mut y_t = p_t.mul_matrix(&self.proj_t)?; // Σδ × nodes
        for r in 0..total {
            for (v, &amb) in y_t.row_mut(r).iter_mut().zip(self.y_amb.iter()) {
                *v += amb;
            }
        }

        // Stage 2: close each candidate's steady cycle in eigen space and
        // pack the boundary states row-wise.
        let mut z_t = Matrix::zeros(total, nodes);
        let mut row0 = 0;
        for seq in seqs {
            let delta = seq.delta();
            let decay = self.decay_for(seq.tau());
            let ys: Vec<&[f64]> = (0..delta).map(|e| y_t.row(row0 + e)).collect();
            let mut z = cycle_start(delta, nodes, &decay, &ys);
            for (e, ye) in ys.iter().enumerate() {
                for i in 0..nodes {
                    z[i] = decay.m[i] * z[i] + decay.one_minus_m[i] * ye[i];
                }
                z_t.row_mut(row0 + e).copy_from_slice(z.as_slice());
            }
            row0 += delta;
        }

        // Stage 3: all junction temperatures at once, then a per-candidate
        // max over its boundary rows.
        let t = z_t.mul_matrix(&self.v_junction_t)?; // Σδ × cores
        let mut peaks = Vec::with_capacity(seqs.len());
        let mut row0 = 0;
        for seq in seqs {
            let mut peak = f64::NEG_INFINITY;
            for e in 0..seq.delta() {
                for &v in t.row(row0 + e) {
                    peak = peak.max(v);
                }
            }
            peaks.push(peak);
            row0 += seq.delta();
        }
        if peaks.iter().any(|&p| self.peak_violates_envelope(p)) {
            self.trip_guard();
            return seqs
                .iter()
                .map(|seq| Ok(self.peak_report_dense(seq)?.peak_celsius))
                .collect();
        }
        Ok(peaks)
    }

    /// Like [`peak_celsius`](RotationPeakSolver::peak_celsius) but
    /// samples `samples` instants *inside* every epoch instead of only
    /// the epoch boundaries.
    ///
    /// The paper (and [`peak_celsius`]) evaluates the steady cycle at
    /// epoch boundaries only. For a core that just went active the
    /// within-epoch maximum IS the boundary (temperature climbs towards
    /// that epoch's steady state), so boundary sampling captures the true
    /// peak for rotation workloads; this method makes the claim testable
    /// and covers exotic sequences where a node's transient is
    /// non-monotone.
    ///
    /// `samples == 1` reduces exactly to [`peak_celsius`].
    ///
    /// All `δ·samples` intra-epoch phases are row-stacked into one batch
    /// matrix and mapped through a single `Z × V_junctionᵀ` GEMM instead
    /// of per-sample junction dots — bit-identical to the serial form
    /// (kept as [`peak_celsius_sampled_serial`]) and severalfold faster
    /// (see `benches/overhead_alg1.rs`).
    ///
    /// [`peak_celsius`]: RotationPeakSolver::peak_celsius
    /// [`peak_celsius_sampled_serial`]: RotationPeakSolver::peak_celsius_sampled_serial
    ///
    /// # Errors
    ///
    /// * [`HotPotatoError::InvalidParameter`] if `samples == 0`.
    /// * Otherwise same as [`peak`](RotationPeakSolver::peak).
    pub fn peak_celsius_sampled(&self, seq: &EpochPowerSequence, samples: usize) -> Result<f64> {
        if samples == 0 {
            return Err(HotPotatoError::InvalidParameter {
                name: "samples",
                value: 0.0,
            });
        }
        let (delta, nodes, decay, ys) = self.prepare(seq)?;
        let mut z = cycle_start(delta, nodes, &decay, &as_rows(&ys));
        // Sub-epoch decay factors m_s = e^{λ·τ·s/samples}; applying them
        // `samples` times reproduces one full epoch exactly.
        let sub = self.decay_for(seq.tau() / samples as f64);
        let mut z_t = Matrix::zeros(delta * samples, nodes);
        let mut row = 0;
        for y in &ys {
            for _ in 0..samples {
                for i in 0..nodes {
                    z[i] = sub.m[i] * z[i] + sub.one_minus_m[i] * y[i];
                }
                z_t.row_mut(row).copy_from_slice(z.as_slice());
                row += 1;
            }
        }
        let t = z_t.mul_matrix(&self.v_junction_t)?; // δ·samples × cores
        let mut peak = f64::NEG_INFINITY;
        for &v in t.as_slice() {
            peak = peak.max(v);
        }
        Ok(peak)
    }

    /// Serial form of
    /// [`peak_celsius_sampled`](RotationPeakSolver::peak_celsius_sampled):
    /// per-sample junction dot products instead of the row-stacked batch
    /// GEMM. Kept as the differential-testing reference (and the benchmark
    /// baseline) the batched sampled path must match bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`peak_celsius_sampled`](RotationPeakSolver::peak_celsius_sampled).
    #[doc(hidden)]
    pub fn peak_celsius_sampled_serial(
        &self,
        seq: &EpochPowerSequence,
        samples: usize,
    ) -> Result<f64> {
        if samples == 0 {
            return Err(HotPotatoError::InvalidParameter {
                name: "samples",
                value: 0.0,
            });
        }
        let (delta, nodes, decay, ys) = self.prepare(seq)?;
        let cores = self.model.core_count();
        let mut z = cycle_start(delta, nodes, &decay, &as_rows(&ys));
        let sub = self.decay_for(seq.tau() / samples as f64);
        let mut peak = f64::NEG_INFINITY;
        for y in &ys {
            for _ in 0..samples {
                for i in 0..nodes {
                    z[i] = sub.m[i] * z[i] + sub.one_minus_m[i] * y[i];
                }
                for c in 0..cores {
                    let row = self.v_junction.row(c);
                    let t: f64 = row.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
                    peak = peak.max(t);
                }
            }
        }
        Ok(peak)
    }

    /// The spectral decomposition backing the solver (for diagnostics).
    pub fn eigen(&self) -> &SystemEigen {
        &self.eigen
    }

    /// Dense `e^{Cτ}` for diagnostics and tests.
    pub fn exponential(&self, tau: f64) -> Matrix {
        self.eigen.exp_matrix(tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_thermal::{ThermalConfig, TransientSolver};

    fn solver_4x4() -> RotationPeakSolver {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let model = RcThermalModel::new(&fp, &ThermalConfig::default()).unwrap();
        RotationPeakSolver::new(model).unwrap()
    }

    fn fig1_sequence(tau: f64) -> EpochPowerSequence {
        // Two 7 W threads opposite each other on the centre ring.
        let ring = [5usize, 6, 10, 9];
        let epochs = (0..4)
            .map(|e| {
                let mut p = Vector::constant(16, 0.3);
                p[ring[e % 4]] = 7.0;
                p[ring[(e + 2) % 4]] = 7.0;
                p
            })
            .collect();
        EpochPowerSequence::new(tau, epochs).unwrap()
    }

    #[test]
    fn constant_power_reduces_to_steady_state() {
        let s = solver_4x4();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let seq = EpochPowerSequence::new(1e-3, vec![p.clone(), p.clone(), p.clone()]).unwrap();
        let report = s.peak(&seq).unwrap();
        let direct = s
            .model()
            .core_temperatures(&s.model().steady_state(&p).unwrap());
        assert!((report.peak_celsius - direct.max()).abs() < 1e-6);
        assert_eq!(report.critical_core, CoreId(5));
    }

    #[test]
    fn matches_brute_force_simulation() {
        // Iterate the exact transient stepper for many periods and compare
        // the cycle boundaries with the closed form. A reduced sink
        // capacitance shortens the slowest time constant so the brute-force
        // run converges within a reasonable number of epochs.
        let fp = GridFloorplan::new(4, 4).unwrap();
        let cfg = ThermalConfig {
            c_sink: 0.005,
            ..ThermalConfig::default()
        };
        let model = RcThermalModel::new(&fp, &cfg).unwrap();
        let s = RotationPeakSolver::new(model).unwrap();
        let seq = fig1_sequence(0.5e-3);
        let report = s.peak(&seq).unwrap();

        let transient = TransientSolver::new(s.model()).unwrap();
        let mut t = s.model().ambient_state();
        // 4000 epochs of 0.5 ms = 2 s >> all (reduced) time constants.
        for k in 0..4000 {
            let p = seq.epoch(k % 4);
            t = transient.step(s.model(), &t, p, seq.tau()).unwrap();
        }
        // One more full period, checking each boundary.
        for e in 0..4 {
            t = transient
                .step(s.model(), &t, seq.epoch(e), seq.tau())
                .unwrap();
            let cores = s.model().core_temperatures(&t);
            let closed = &report.boundary_temps[e];
            for c in 0..16 {
                assert!(
                    (cores[c] - closed[c]).abs() < 1e-3,
                    "boundary {e} core {c}: {} vs {}",
                    cores[c],
                    closed[c]
                );
            }
        }
    }

    #[test]
    fn reference_form_agrees() {
        let s = solver_4x4();
        for tau in [0.1e-3, 0.5e-3, 2e-3] {
            let seq = fig1_sequence(tau);
            let fast = s.peak(&seq).unwrap().peak_celsius;
            let reference = s.peak_reference(&seq).unwrap();
            assert!(
                (fast - reference).abs() < 1e-8,
                "tau {tau}: {fast} vs {reference}"
            );
        }
    }

    #[test]
    fn cycle_weight_sums_to_one() {
        // The δ weights of Eq. (10) form a normalized geometric partition:
        // Σ_age m^age·(1−m)/(1−m^δ) = 1 for every λτ < 0. The pre-fix
        // reference path built `1 − m` by subtraction, which breaks this
        // identity by ~eps/|λτ| (2e-4 relative at λτ = −1e-12); the shared
        // expm1-based helper holds it to machine precision across the
        // whole range, including where expm1(δλτ) underflows.
        for lam_tau in [-1e-15, -1e-12, -1e-9, -1e-6, -1e-3, -1.0, -100.0] {
            for delta in 1..=8usize {
                let sum: f64 = (0..delta)
                    .map(|age| cycle_weight(lam_tau, delta, age))
                    .sum();
                assert!(
                    (sum - 1.0).abs() < 1e-12,
                    "lam_tau {lam_tau} delta {delta}: sum {sum}"
                );
            }
        }
    }

    #[test]
    fn cycle_weight_degenerate_limit_is_uniform() {
        // δλτ below f64::MIN_POSITIVE: every epoch weighs exactly 1/δ.
        for delta in 1..=6usize {
            let w = cycle_weight(-1e-310, delta, 0);
            assert_eq!(w, 1.0 / delta as f64);
        }
        // And the weights decay monotonically with age (older epochs
        // matter less) whenever λτ is resolvable.
        for age in 1..6 {
            assert!(cycle_weight(-0.5, 6, age) < cycle_weight(-0.5, 6, age - 1));
        }
    }

    #[test]
    fn slow_sink_fast_matches_reference() {
        // Stress case for slow eigenmodes: a huge sink capacitance and
        // weak sink-to-ambient conductance push the slowest eigenvalue to
        // λ ≈ −2e-5 s⁻¹, so m = e^{λτ} sits within a few ulp of 1 — the
        // regime where the pre-fix weight paths (λτ recovered from m.ln()
        // on the fast path, 1 − m by subtraction on the reference path)
        // lose all relative precision. With the shared helper both weight
        // paths agree to machine precision; the remaining ~1e-7 gap is the
        // *steady-state* cross-validation (peak_reference deliberately
        // solves T_ss by LU while the fast path uses the precomputed
        // eigen projection, whose error the near-singular mode amplifies
        // by 1/|λ_min| ≈ 5e4), so the bound here is 1e-6, not 1e-7.
        let cfg = ThermalConfig {
            c_sink: 40000.0,
            g_sink_ambient: 0.02,
            ..ThermalConfig::default()
        };
        let model = RcThermalModel::new(&GridFloorplan::new(3, 3).unwrap(), &cfg).unwrap();
        let s = RotationPeakSolver::new(model).unwrap();
        for delta in [1usize, 3, 6] {
            let powers: Vec<Vector> = (0..delta)
                .map(|e| Vector::from_fn(9, |c| ((e * 9 + c * 7) % 11) as f64 * 0.7))
                .collect();
            for tau in [1e-4, 5e-4, 2.35e-3, 4e-3] {
                let seq = EpochPowerSequence::new(tau, powers.clone()).unwrap();
                let fast = s.peak_celsius(&seq).unwrap();
                let reference = s.peak_reference(&seq).unwrap();
                assert!(
                    (fast - reference).abs() < 1e-6,
                    "tau {tau} delta {delta}: {fast} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn peak_celsius_matches_full_report() {
        let s = solver_4x4();
        for tau in [0.1e-3, 0.5e-3, 2e-3] {
            let seq = fig1_sequence(tau);
            let fast = s.peak_celsius(&seq).unwrap();
            let full = s.peak(&seq).unwrap().peak_celsius;
            assert!((fast - full).abs() < 1e-10, "tau {tau}: {fast} vs {full}");
        }
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        // Mixed δ (1, 3, 4) and mixed τ in one batch; the column-stacked
        // GEMM pipeline must reproduce the scalar path exactly (identical
        // operations in identical order — see Matrix::mul_matrix).
        let s = solver_4x4();
        let mut seqs = vec![
            fig1_sequence(0.1e-3),
            fig1_sequence(0.5e-3),
            fig1_sequence(2e-3),
        ];
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        seqs.push(EpochPowerSequence::new(1e-3, vec![p.clone()]).unwrap());
        seqs.push(
            EpochPowerSequence::new(
                0.7e-3,
                (0..3)
                    .map(|e| Vector::from_fn(16, |c| ((c + e) % 5) as f64 * 1.3 + 0.3))
                    .collect(),
            )
            .unwrap(),
        );
        let batch = s.peak_celsius_many(&seqs).unwrap();
        assert_eq!(batch.len(), seqs.len());
        for (seq, &b) in seqs.iter().zip(&batch) {
            let scalar = s.peak_celsius(seq).unwrap();
            assert_eq!(
                scalar.to_bits(),
                b.to_bits(),
                "batch must be bit-identical: {scalar} vs {b}"
            );
        }
    }

    #[test]
    fn batch_of_empty_slice_is_empty() {
        let s = solver_4x4();
        assert!(s.peak_celsius_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn batch_rejects_mismatched_core_count() {
        let s = solver_4x4();
        let good = fig1_sequence(0.5e-3);
        let bad = EpochPowerSequence::new(1e-3, vec![Vector::zeros(8)]).unwrap();
        assert!(matches!(
            s.peak_celsius_many(&[good, bad]),
            Err(HotPotatoError::InvalidSequence(_))
        ));
    }

    #[test]
    fn batch_stable_across_repeated_calls() {
        // Exercises the per-τ decay cache: the second call hits the cache
        // and must return the same bits.
        let s = solver_4x4();
        let seqs = vec![fig1_sequence(0.5e-3), fig1_sequence(0.5e-3)];
        let a = s.peak_celsius_many(&seqs).unwrap();
        let b = s.peak_celsius_many(&seqs).unwrap();
        assert_eq!(a[0].to_bits(), b[0].to_bits());
        assert_eq!(a[0].to_bits(), a[1].to_bits());
        assert_eq!(a, b);
    }

    #[test]
    fn cloned_solver_agrees() {
        let s = solver_4x4();
        let seq = fig1_sequence(0.5e-3);
        let a = s.peak_celsius(&seq).unwrap();
        let clone = s;
        let b = clone.peak_celsius(&seq).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn rotation_beats_pinning() {
        let s = solver_4x4();
        // Pinned: both threads never move (constant power, epochs equal).
        let mut pinned_p = Vector::constant(16, 0.3);
        pinned_p[5] = 7.0;
        pinned_p[10] = 7.0;
        let pinned = EpochPowerSequence::new(0.5e-3, vec![pinned_p]).unwrap();
        let rotated = fig1_sequence(0.5e-3);
        let p_pin = s.peak(&pinned).unwrap().peak_celsius;
        let p_rot = s.peak(&rotated).unwrap().peak_celsius;
        assert!(
            p_rot < p_pin - 5.0,
            "rotation {p_rot:.1} vs pinned {p_pin:.1}"
        );
        // And the Fig. 2 calibration: pinned exceeds 70 C, rotation stays below.
        assert!(p_pin > 70.0);
        assert!(p_rot < 70.0);
    }

    #[test]
    fn faster_rotation_lowers_peak() {
        let s = solver_4x4();
        let slow = s.peak(&fig1_sequence(4e-3)).unwrap().peak_celsius;
        let fast = s.peak(&fig1_sequence(0.25e-3)).unwrap().peak_celsius;
        assert!(fast < slow, "fast {fast:.2} vs slow {slow:.2}");
    }

    #[test]
    fn peak_invariant_under_cyclic_shift() {
        let s = solver_4x4();
        let seq = fig1_sequence(0.5e-3);
        let base = s.peak(&seq).unwrap().peak_celsius;
        for k in 1..4 {
            let shifted = s.peak(&seq.shifted(k)).unwrap().peak_celsius;
            assert!((base - shifted).abs() < 1e-9, "shift {k}");
        }
    }

    #[test]
    fn peak_monotone_in_power() {
        let s = solver_4x4();
        let lo = fig1_sequence(0.5e-3);
        let hi = {
            let epochs = (0..4)
                .map(|e| {
                    let mut p = lo.epoch(e).clone();
                    for i in 0..16 {
                        p[i] *= 1.2;
                    }
                    p
                })
                .collect();
            EpochPowerSequence::new(0.5e-3, epochs).unwrap()
        };
        assert!(s.peak(&hi).unwrap().peak_celsius > s.peak(&lo).unwrap().peak_celsius);
    }

    #[test]
    fn stats_count_batches_and_cache_traffic() {
        let s = solver_4x4();
        assert_eq!(s.stats(), Alg1Stats::default());
        let seq = fig1_sequence(1e-3);
        s.peak_celsius(&seq).unwrap();
        s.peak_celsius_many(&[seq.clone(), seq, fig1_sequence(2e-3)])
            .unwrap();
        let st = s.stats();
        assert_eq!(st.batch_calls, 1);
        assert_eq!(st.batched_candidates, 3);
        // τ = 1e-3 was computed once and reused twice; τ = 2e-3 is fresh.
        assert_eq!(st.decay_cache_misses, 2);
        assert_eq!(st.decay_cache_hits, 2);
        // A clone starts from zero; reset clears the original.
        let fresh = s.clone();
        assert_eq!(fresh.stats(), Alg1Stats::default());
        s.reset_stats();
        assert_eq!(s.stats(), Alg1Stats::default());
    }

    #[test]
    fn mismatched_core_count_rejected() {
        let s = solver_4x4();
        let seq = EpochPowerSequence::new(1e-3, vec![Vector::zeros(8)]).unwrap();
        assert!(matches!(
            s.peak(&seq),
            Err(HotPotatoError::InvalidSequence(_))
        ));
    }

    #[test]
    fn sampled_peak_matches_boundaries_for_rotations() {
        // DESIGN.md §5.2: boundary-max is a faithful proxy for the true
        // within-epoch peak on rotation workloads.
        let s = solver_4x4();
        for tau in [0.25e-3, 1e-3, 4e-3] {
            let seq = fig1_sequence(tau);
            let boundary = s.peak_celsius(&seq).unwrap();
            let dense = s.peak_celsius_sampled(&seq, 16).unwrap();
            assert!(
                dense >= boundary - 1e-9,
                "denser sampling can only raise the max"
            );
            assert!(
                dense - boundary < 0.05,
                "tau {tau}: within-epoch peak {dense:.3} vs boundary {boundary:.3}"
            );
        }
    }

    #[test]
    fn sampled_with_one_sample_is_boundary_form() {
        let s = solver_4x4();
        let seq = fig1_sequence(0.5e-3);
        let a = s.peak_celsius(&seq).unwrap();
        let b = s.peak_celsius_sampled(&seq, 1).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn sampled_rejects_zero_samples() {
        let s = solver_4x4();
        let seq = fig1_sequence(0.5e-3);
        assert!(s.peak_celsius_sampled(&seq, 0).is_err());
    }

    #[test]
    fn boundary_temps_above_ambient() {
        let s = solver_4x4();
        let report = s.peak(&fig1_sequence(0.5e-3)).unwrap();
        for b in &report.boundary_temps {
            assert!(b.min() > 45.0);
        }
    }

    fn solver_stiff_4x4() -> RotationPeakSolver {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let model = RcThermalModel::new(&fp, &ThermalConfig::ill_conditioned()).unwrap();
        RotationPeakSolver::new(model).unwrap()
    }

    #[test]
    fn healthy_solver_is_not_degraded() {
        let s = solver_4x4();
        assert!(!s.degraded());
        assert_eq!(s.numerics(), NumericsStats::default());
    }

    #[test]
    fn stiff_model_peak_completes_via_dense_fallback() {
        let s = solver_stiff_4x4();
        assert!(s.degraded());
        let seq = fig1_sequence(0.5e-3);
        let report = s.peak(&seq).unwrap();
        assert!(report.peak_celsius.is_finite());
        assert!(report.peak_celsius > s.model().config().ambient);
        for b in &report.boundary_temps {
            assert!(b.iter().all(|v| v.is_finite()));
        }
        let n = s.numerics();
        assert_eq!(n.fallback_activations, 1);
        assert_eq!(n.fallback_steps, 4);
        // Scalar and batch entry points agree on the dense path too.
        let scalar = s.peak_celsius(&seq).unwrap();
        let batch = s.peak_celsius_many(&[seq]).unwrap();
        assert_eq!(scalar.to_bits(), report.peak_celsius.to_bits());
        assert_eq!(batch[0].to_bits(), scalar.to_bits());
    }

    #[test]
    fn stiff_model_rotation_still_beats_pinning() {
        // The dense path preserves the paper's headline ordering.
        let s = solver_stiff_4x4();
        let mut pinned_p = Vector::constant(16, 0.3);
        pinned_p[5] = 7.0;
        pinned_p[10] = 7.0;
        let pinned = EpochPowerSequence::new(0.5e-3, vec![pinned_p]).unwrap();
        let rotated = fig1_sequence(0.5e-3);
        let p_pin = s.peak_celsius(&pinned).unwrap();
        let p_rot = s.peak_celsius(&rotated).unwrap();
        assert!(p_rot < p_pin, "rotation {p_rot:.2} vs pinned {p_pin:.2}");
    }

    #[test]
    fn dense_cycle_matches_eigen_on_healthy_model() {
        // Differential pin: on a well-conditioned model the dense cycle
        // fixed point must land within a millikelvin of Algorithm 1.
        let s = solver_4x4();
        for tau in [0.5e-3, 2e-3] {
            let seq = fig1_sequence(tau);
            let eigen = s.peak(&seq).unwrap();
            let dense = s.peak_report_dense(&seq).unwrap();
            assert!(
                (eigen.peak_celsius - dense.peak_celsius).abs() < 1e-3,
                "tau {tau}: eigen {} vs dense {}",
                eigen.peak_celsius,
                dense.peak_celsius
            );
            // critical_core is not compared: the rotation is symmetric, so
            // several cores peak within femtokelvins and the argmax is a
            // coin flip between the two paths.
            for (a, b) in eigen.boundary_temps.iter().zip(&dense.boundary_temps) {
                assert!((&(a.clone()) - b).norm_inf() < 1e-3);
            }
        }
    }

    #[test]
    fn nonfinite_epoch_power_rejected() {
        let s = solver_4x4();
        let mut p = Vector::constant(16, 0.3);
        p[7] = f64::NAN;
        let seq = EpochPowerSequence::new(1e-3, vec![p]).unwrap();
        assert!(matches!(
            s.peak_celsius_many(std::slice::from_ref(&seq)),
            Err(HotPotatoError::Linalg(_))
        ));
        assert!(s.peak(&seq).is_err());
        assert!(s.peak_celsius(&seq).is_err());
        assert!(s.peak_reference(&seq).is_err());
        // Rejected inputs never degrade the solver.
        assert!(!s.degraded());
    }

    #[test]
    fn clone_inherits_degradation_with_fresh_tallies() {
        let s = solver_stiff_4x4();
        s.peak_celsius(&fig1_sequence(0.5e-3)).unwrap();
        let fresh = s.clone();
        assert!(fresh.degraded());
        assert_eq!(fresh.numerics(), NumericsStats::default());
        // Reset clears tallies but not the degradation verdict.
        s.reset_stats();
        assert_eq!(s.numerics(), NumericsStats::default());
        assert!(s.degraded());
    }

    #[test]
    fn restore_numerics_round_trips() {
        let s = solver_4x4();
        let stats = NumericsStats {
            fallback_activations: 2,
            fallback_steps: 17,
            guard_trips: 1,
        };
        s.restore_numerics(stats);
        assert_eq!(s.numerics(), stats);
    }
}
