//! Analytical peak temperature of a synchronous thread rotation
//! (paper §IV, Eqs. 4–11, and the efficient Algorithm 1).
//!
//! Within one epoch the power map is constant, so the node state follows
//! the exact affine map of Eq. (4):
//!
//! ```text
//! T_{k+1} = T_ss(P_k) + e^{Cτ} (T_k − T_ss(P_k))
//! ```
//!
//! Composing δ epochs and letting the number of periods d → ∞, the
//! epoch-boundary states of the steady cycle become geometric series in
//! the eigenbasis of `C` (Eqs. 8–9, valid because every eigenvalue is
//! negative):
//!
//! ```text
//! z*_0[i] = Σ_e e^{(δ−1−e)λᵢτ} · (1 − e^{λᵢτ}) / (1 − e^{δλᵢτ}) · y_e[i]
//! ```
//!
//! with `y_e = V⁻¹·T_ss(P_e)` — exactly the content of paper Eq. (10).
//! The remaining boundary states follow from the one-epoch recurrence, so
//! the whole cycle costs `O(δ·N²)` after the one-time eigendecomposition
//! — the same design-time/run-time split as the paper's Algorithm 1 (the
//! paper evaluates each boundary independently at `O(δ·N²)` each; the
//! recurrence shaves a factor of δ and [`RotationPeakSolver::peak_reference`]
//! keeps the literal per-boundary form for cross-validation).

use hp_floorplan::CoreId;
use hp_linalg::eigen::SystemEigen;
use hp_linalg::{Matrix, Vector};
use hp_thermal::RcThermalModel;

use crate::{EpochPowerSequence, HotPotatoError, Result};

/// The result of a peak-temperature analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakReport {
    /// Hottest junction temperature over the steady cycle, °C.
    pub peak_celsius: f64,
    /// The junction that reaches the peak.
    pub critical_core: CoreId,
    /// The epoch boundary (0-based, end of epoch `e`) where the peak occurs.
    pub critical_epoch: usize,
    /// Junction temperatures at every epoch boundary of the steady cycle.
    pub boundary_temps: Vec<Vector>,
}

/// Computes steady-cycle peak temperatures for rotations on a fixed
/// thermal model.
///
/// Construction performs the *design-time phase* of Algorithm 1 (the
/// eigendecomposition of `C = −A⁻¹B` and the factorization of `B`);
/// each [`peak`](RotationPeakSolver::peak) call is then the *run-time
/// phase* — tens of microseconds for a 64-core chip, matching the paper's
/// 23.76 µs overhead measurement.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug, Clone)]
pub struct RotationPeakSolver {
    model: RcThermalModel,
    eigen: SystemEigen,
    /// Precomputed `-diag(1/λ) · V⁻¹ · A⁻¹` restricted to the junction
    /// columns: maps a per-core power vector straight to the eigen-space
    /// steady-state contribution (`y = proj·p + y_amb`), replacing a
    /// linear solve per epoch with one thin mat-vec.
    proj: Matrix,
    /// `V⁻¹ · B⁻¹·G·T_amb` — the ambient term in eigen coordinates.
    y_amb: Vector,
}

impl RotationPeakSolver {
    /// Builds the solver (design-time phase: one eigendecomposition).
    ///
    /// # Errors
    ///
    /// Propagates eigendecomposition failures.
    pub fn new(model: RcThermalModel) -> Result<Self> {
        let eigen = SystemEigen::new(model.a_diag(), model.b())?;
        let nodes = model.node_count();
        let cores = model.core_count();
        let v_inv = eigen.v_inv();
        let lambda = eigen.eigenvalues();
        let a = model.a_diag();
        let proj = Matrix::from_fn(nodes, cores, |i, j| -v_inv[(i, j)] / (lambda[i] * a[j]));
        let y_amb = v_inv.mul_vector(model.ambient_response());
        Ok(RotationPeakSolver {
            model,
            eigen,
            proj,
            y_amb,
        })
    }

    /// The thermal model the solver was built for.
    pub fn model(&self) -> &RcThermalModel {
        &self.model
    }

    /// Run-time phase: steady-cycle boundary temperatures and their peak
    /// for the rotation described by `seq`.
    ///
    /// # Errors
    ///
    /// * [`HotPotatoError::InvalidSequence`] if `seq` covers a different
    ///   number of cores than the model.
    /// * Propagated thermal/solver errors.
    pub fn peak(&self, seq: &EpochPowerSequence) -> Result<PeakReport> {
        let (delta, nodes, m, ys) = self.prepare(seq)?;

        let mut z = self.cycle_start(delta, nodes, &m, &ys);

        // Walk the cycle: z_{k+1} = m ⊙ z_k + (1-m) ⊙ y_k, record
        // junction temperatures at each boundary.
        let mut boundary_temps = Vec::with_capacity(delta);
        let mut peak = f64::NEG_INFINITY;
        let mut critical_core = CoreId(0);
        let mut critical_epoch = 0;
        for (e, y) in ys.iter().enumerate() {
            for i in 0..nodes {
                z[i] = m[i] * z[i] + (1.0 - m[i]) * y[i];
            }
            let t_nodes = self.eigen.v().mul_vector(&z);
            let cores = self.model.core_temperatures(&t_nodes);
            if let Some(idx) = cores.argmax() {
                if cores[idx] > peak {
                    peak = cores[idx];
                    critical_core = CoreId(idx);
                    critical_epoch = e;
                }
            }
            boundary_temps.push(cores);
        }

        Ok(PeakReport {
            peak_celsius: peak,
            critical_core,
            critical_epoch,
            boundary_temps,
        })
    }

    /// Reference implementation of paper Eq. (10): every boundary state is
    /// assembled independently through explicit spectral-filter matrices,
    /// at `O(δ²N²)` — the complexity the paper quotes for Algorithm 1.
    /// Used to cross-validate [`peak`](RotationPeakSolver::peak) and to
    /// benchmark the recurrence against the literal form.
    ///
    /// # Errors
    ///
    /// Same as [`peak`](RotationPeakSolver::peak).
    pub fn peak_reference(&self, seq: &EpochPowerSequence) -> Result<f64> {
        if seq.core_count() != self.model.core_count() {
            return Err(HotPotatoError::InvalidSequence(
                "power vectors do not match the model's core count",
            ));
        }
        let delta = seq.delta();
        let nodes = self.model.node_count();
        let tau = seq.tau();
        let m = Vector::from_fn(nodes, |i| (self.eigen.eigenvalues()[i] * tau).exp());
        // Steady states resolved through the linear solver — deliberately
        // *not* via the precomputed projection, so this path also
        // cross-validates it.
        let steady: Vec<Vector> = (0..delta)
            .map(|e| self.model.steady_state(seq.epoch(e)))
            .collect::<std::result::Result<_, _>>()?;
        // Forcing terms in node space: f_e = (I - e^{Cτ}) T_ss(P_e),
        // i.e. the "w·P" of the paper with the ambient folded in.
        let one_minus_m = Vector::from_fn(nodes, |i| 1.0 - m[i]);
        let forcing: Vec<Vector> = steady
            .iter()
            .map(|u| self.eigen.spectral_apply(&one_minus_m, u))
            .collect();

        let mut peak = f64::NEG_INFINITY;
        for k in 0..delta {
            // Boundary after epoch k: sum over the δ most recent epochs,
            // each filtered by m^{age} / (1 - m^δ).
            let mut t_nodes = Vector::zeros(nodes);
            for age in 0..delta {
                // Epoch index whose forcing is `age` epochs old at boundary k.
                let e = (k + delta - age) % delta;
                let filter = Vector::from_fn(nodes, |i| {
                    let mi = m[i];
                    let den = -(f64::exp_m1(delta as f64 * mi.ln()));
                    if den.abs() < f64::MIN_POSITIVE {
                        1.0 / delta as f64
                    } else {
                        mi.powi(age as i32) / den
                    }
                });
                let contrib = self.eigen.spectral_apply(&filter, &forcing[e]);
                t_nodes += &contrib;
            }
            let cores = self.model.core_temperatures(&t_nodes);
            peak = peak.max(cores.max());
        }
        Ok(peak)
    }

    /// Shared validation + precomputation: returns
    /// `(delta, node_count, m = e^{λτ}, eigen-space steady states per
    /// epoch)` where `ys[e] = V⁻¹·T_ss(P_e)`.
    fn prepare(
        &self,
        seq: &EpochPowerSequence,
    ) -> Result<(usize, usize, Vector, Vec<Vector>)> {
        if seq.core_count() != self.model.core_count() {
            return Err(HotPotatoError::InvalidSequence(
                "power vectors do not match the model's core count",
            ));
        }
        let nodes = self.model.node_count();
        let tau = seq.tau();
        let m = Vector::from_fn(nodes, |i| (self.eigen.eigenvalues()[i] * tau).exp());
        let ys: Vec<Vector> = (0..seq.delta())
            .map(|e| &self.proj.mul_vector(seq.epoch(e)) + &self.y_amb)
            .collect();
        Ok((seq.delta(), nodes, m, ys))
    }

    /// Run-time phase, peak only: identical mathematics to
    /// [`peak`](RotationPeakSolver::peak) but evaluates *junction rows
    /// only* at each boundary and skips the report — this is the inner
    /// loop of the HotPotato scheduler (tens of microseconds for the
    /// 64-core chip, the paper's 23.76 µs measurement).
    ///
    /// # Errors
    ///
    /// Same as [`peak`](RotationPeakSolver::peak).
    pub fn peak_celsius(&self, seq: &EpochPowerSequence) -> Result<f64> {
        let (delta, nodes, m, ys) = self.prepare(seq)?;
        let cores = self.model.core_count();
        let mut z = self.cycle_start(delta, nodes, &m, &ys);
        let v = self.eigen.v();
        let mut peak = f64::NEG_INFINITY;
        for y in &ys {
            for i in 0..nodes {
                z[i] = m[i] * z[i] + (1.0 - m[i]) * y[i];
            }
            for c in 0..cores {
                let row = v.row(c);
                let t: f64 = row.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
                peak = peak.max(t);
            }
        }
        Ok(peak)
    }

    /// Like [`peak_celsius`](RotationPeakSolver::peak_celsius) but
    /// samples `samples` instants *inside* every epoch instead of only
    /// the epoch boundaries.
    ///
    /// The paper (and [`peak_celsius`]) evaluates the steady cycle at
    /// epoch boundaries only. For a core that just went active the
    /// within-epoch maximum IS the boundary (temperature climbs towards
    /// that epoch's steady state), so boundary sampling captures the true
    /// peak for rotation workloads; this method makes the claim testable
    /// and covers exotic sequences where a node's transient is
    /// non-monotone.
    ///
    /// `samples == 1` reduces exactly to [`peak_celsius`].
    ///
    /// [`peak_celsius`]: RotationPeakSolver::peak_celsius
    ///
    /// # Errors
    ///
    /// * [`HotPotatoError::InvalidParameter`] if `samples == 0`.
    /// * Otherwise same as [`peak`](RotationPeakSolver::peak).
    pub fn peak_celsius_sampled(
        &self,
        seq: &EpochPowerSequence,
        samples: usize,
    ) -> Result<f64> {
        if samples == 0 {
            return Err(HotPotatoError::InvalidParameter {
                name: "samples",
                value: 0.0,
            });
        }
        let (delta, nodes, m, ys) = self.prepare(seq)?;
        let cores = self.model.core_count();
        let mut z = self.cycle_start(delta, nodes, &m, &ys);
        let v = self.eigen.v();
        // Sub-epoch decay factors m_s = e^{λ·τ·s/samples}; applying them
        // `samples` times reproduces one full epoch exactly.
        let tau = seq.tau();
        let ms = Vector::from_fn(nodes, |i| {
            (self.eigen.eigenvalues()[i] * tau / samples as f64).exp()
        });
        let mut peak = f64::NEG_INFINITY;
        for y in &ys {
            for _ in 0..samples {
                for i in 0..nodes {
                    z[i] = ms[i] * z[i] + (1.0 - ms[i]) * y[i];
                }
                for c in 0..cores {
                    let row = v.row(c);
                    let t: f64 = row.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
                    peak = peak.max(t);
                }
            }
        }
        Ok(peak)
    }

    /// Steady-cycle start state in eigen coordinates (paper Eq. 10):
    /// `z0[i] = Σ_e m_i^{δ−1−e} · (1−m_i)/(1−m_i^δ) · y_e[i]`.
    fn cycle_start(&self, delta: usize, nodes: usize, m: &Vector, ys: &[Vector]) -> Vector {
        let mut z = Vector::zeros(nodes);
        for i in 0..nodes {
            let mi = m[i];
            // (1-m)/(1-m^delta) with expm1 for lambda*tau -> 0 stability.
            let lam_tau = mi.ln();
            let weight_den = -(f64::exp_m1(delta as f64 * lam_tau));
            let weight_num = -(f64::exp_m1(lam_tau));
            let w = if weight_den.abs() < f64::MIN_POSITIVE {
                1.0 / delta as f64
            } else {
                weight_num / weight_den
            };
            let mut acc = 0.0;
            let mut pow = 1.0; // m^{delta-1-e} built backwards: e = delta-1 .. 0
            for e in (0..delta).rev() {
                acc += pow * ys[e][i];
                pow *= mi;
            }
            z[i] = w * acc;
        }
        z
    }

    /// The spectral decomposition backing the solver (for diagnostics).
    pub fn eigen(&self) -> &SystemEigen {
        &self.eigen
    }

    /// Dense `e^{Cτ}` for diagnostics and tests.
    pub fn exponential(&self, tau: f64) -> Matrix {
        self.eigen.exp_matrix(tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_thermal::{ThermalConfig, TransientSolver};

    fn solver_4x4() -> RotationPeakSolver {
        let fp = GridFloorplan::new(4, 4).unwrap();
        let model = RcThermalModel::new(&fp, &ThermalConfig::default()).unwrap();
        RotationPeakSolver::new(model).unwrap()
    }

    fn fig1_sequence(tau: f64) -> EpochPowerSequence {
        // Two 7 W threads opposite each other on the centre ring.
        let ring = [5usize, 6, 10, 9];
        let epochs = (0..4)
            .map(|e| {
                let mut p = Vector::constant(16, 0.3);
                p[ring[e % 4]] = 7.0;
                p[ring[(e + 2) % 4]] = 7.0;
                p
            })
            .collect();
        EpochPowerSequence::new(tau, epochs).unwrap()
    }

    #[test]
    fn constant_power_reduces_to_steady_state() {
        let s = solver_4x4();
        let mut p = Vector::constant(16, 0.3);
        p[5] = 7.0;
        let seq =
            EpochPowerSequence::new(1e-3, vec![p.clone(), p.clone(), p.clone()]).unwrap();
        let report = s.peak(&seq).unwrap();
        let direct = s
            .model()
            .core_temperatures(&s.model().steady_state(&p).unwrap());
        assert!((report.peak_celsius - direct.max()).abs() < 1e-6);
        assert_eq!(report.critical_core, CoreId(5));
    }

    #[test]
    fn matches_brute_force_simulation() {
        // Iterate the exact transient stepper for many periods and compare
        // the cycle boundaries with the closed form. A reduced sink
        // capacitance shortens the slowest time constant so the brute-force
        // run converges within a reasonable number of epochs.
        let fp = GridFloorplan::new(4, 4).unwrap();
        let cfg = ThermalConfig {
            c_sink: 0.005,
            ..ThermalConfig::default()
        };
        let model = RcThermalModel::new(&fp, &cfg).unwrap();
        let s = RotationPeakSolver::new(model).unwrap();
        let seq = fig1_sequence(0.5e-3);
        let report = s.peak(&seq).unwrap();

        let transient = TransientSolver::new(s.model()).unwrap();
        let mut t = s.model().ambient_state();
        // 4000 epochs of 0.5 ms = 2 s >> all (reduced) time constants.
        for k in 0..4000 {
            let p = seq.epoch(k % 4);
            t = transient.step(s.model(), &t, p, seq.tau()).unwrap();
        }
        // One more full period, checking each boundary.
        for e in 0..4 {
            t = transient.step(s.model(), &t, seq.epoch(e), seq.tau()).unwrap();
            let cores = s.model().core_temperatures(&t);
            let closed = &report.boundary_temps[e];
            for c in 0..16 {
                assert!(
                    (cores[c] - closed[c]).abs() < 1e-3,
                    "boundary {e} core {c}: {} vs {}",
                    cores[c],
                    closed[c]
                );
            }
        }
    }

    #[test]
    fn reference_form_agrees() {
        let s = solver_4x4();
        for tau in [0.1e-3, 0.5e-3, 2e-3] {
            let seq = fig1_sequence(tau);
            let fast = s.peak(&seq).unwrap().peak_celsius;
            let reference = s.peak_reference(&seq).unwrap();
            assert!(
                (fast - reference).abs() < 1e-8,
                "tau {tau}: {fast} vs {reference}"
            );
        }
    }

    #[test]
    fn peak_celsius_matches_full_report() {
        let s = solver_4x4();
        for tau in [0.1e-3, 0.5e-3, 2e-3] {
            let seq = fig1_sequence(tau);
            let fast = s.peak_celsius(&seq).unwrap();
            let full = s.peak(&seq).unwrap().peak_celsius;
            assert!((fast - full).abs() < 1e-10, "tau {tau}: {fast} vs {full}");
        }
    }

    #[test]
    fn rotation_beats_pinning() {
        let s = solver_4x4();
        // Pinned: both threads never move (constant power, epochs equal).
        let mut pinned_p = Vector::constant(16, 0.3);
        pinned_p[5] = 7.0;
        pinned_p[10] = 7.0;
        let pinned = EpochPowerSequence::new(0.5e-3, vec![pinned_p]).unwrap();
        let rotated = fig1_sequence(0.5e-3);
        let p_pin = s.peak(&pinned).unwrap().peak_celsius;
        let p_rot = s.peak(&rotated).unwrap().peak_celsius;
        assert!(p_rot < p_pin - 5.0, "rotation {p_rot:.1} vs pinned {p_pin:.1}");
        // And the Fig. 2 calibration: pinned exceeds 70 C, rotation stays below.
        assert!(p_pin > 70.0);
        assert!(p_rot < 70.0);
    }

    #[test]
    fn faster_rotation_lowers_peak() {
        let s = solver_4x4();
        let slow = s.peak(&fig1_sequence(4e-3)).unwrap().peak_celsius;
        let fast = s.peak(&fig1_sequence(0.25e-3)).unwrap().peak_celsius;
        assert!(fast < slow, "fast {fast:.2} vs slow {slow:.2}");
    }

    #[test]
    fn peak_invariant_under_cyclic_shift() {
        let s = solver_4x4();
        let seq = fig1_sequence(0.5e-3);
        let base = s.peak(&seq).unwrap().peak_celsius;
        for k in 1..4 {
            let shifted = s.peak(&seq.shifted(k)).unwrap().peak_celsius;
            assert!((base - shifted).abs() < 1e-9, "shift {k}");
        }
    }

    #[test]
    fn peak_monotone_in_power() {
        let s = solver_4x4();
        let lo = fig1_sequence(0.5e-3);
        let hi = {
            let epochs = (0..4)
                .map(|e| {
                    let mut p = lo.epoch(e).clone();
                    for i in 0..16 {
                        p[i] *= 1.2;
                    }
                    p
                })
                .collect();
            EpochPowerSequence::new(0.5e-3, epochs).unwrap()
        };
        assert!(s.peak(&hi).unwrap().peak_celsius > s.peak(&lo).unwrap().peak_celsius);
    }

    #[test]
    fn mismatched_core_count_rejected() {
        let s = solver_4x4();
        let seq = EpochPowerSequence::new(1e-3, vec![Vector::zeros(8)]).unwrap();
        assert!(matches!(
            s.peak(&seq),
            Err(HotPotatoError::InvalidSequence(_))
        ));
    }

    #[test]
    fn sampled_peak_matches_boundaries_for_rotations() {
        // DESIGN.md §5.2: boundary-max is a faithful proxy for the true
        // within-epoch peak on rotation workloads.
        let s = solver_4x4();
        for tau in [0.25e-3, 1e-3, 4e-3] {
            let seq = fig1_sequence(tau);
            let boundary = s.peak_celsius(&seq).unwrap();
            let dense = s.peak_celsius_sampled(&seq, 16).unwrap();
            assert!(
                dense >= boundary - 1e-9,
                "denser sampling can only raise the max"
            );
            assert!(
                dense - boundary < 0.05,
                "tau {tau}: within-epoch peak {dense:.3} vs boundary {boundary:.3}"
            );
        }
    }

    #[test]
    fn sampled_with_one_sample_is_boundary_form() {
        let s = solver_4x4();
        let seq = fig1_sequence(0.5e-3);
        let a = s.peak_celsius(&seq).unwrap();
        let b = s.peak_celsius_sampled(&seq, 1).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn sampled_rejects_zero_samples() {
        let s = solver_4x4();
        let seq = fig1_sequence(0.5e-3);
        assert!(s.peak_celsius_sampled(&seq, 0).is_err());
    }

    #[test]
    fn boundary_temps_above_ambient() {
        let s = solver_4x4();
        let report = s.peak(&fig1_sequence(0.5e-3)).unwrap();
        for b in &report.boundary_temps {
            assert!(b.min() > 45.0);
        }
    }
}
