//! **HotPotato** — thermal management for S-NUCA many-cores via synchronous
//! thread rotations.
//!
//! Reproduction of Shen, Niknam, Pathania & Pimentel, DATE 2023. The crate
//! provides the paper's two contributions:
//!
//! 1. **Peak-temperature analysis of a periodic thread rotation**
//!    ([`RotationPeakSolver`], paper §IV, Eqs. 4–11 and Algorithm 1).
//!    Rotating threads over a set of cores with epoch `τ` and period `δ`
//!    drives the RC thermal model into a *steady periodic cycle*; because
//!    all eigenvalues of `C = −A⁻¹B` are negative, the cycle's
//!    epoch-boundary temperatures have geometric-series closed forms that
//!    can be evaluated in microseconds — fast enough for a run-time
//!    scheduler.
//! 2. **The HotPotato scheduler** ([`HotPotato`], paper §V, Algorithm 2):
//!    a greedy policy over the concentric AMD rings of the floorplan that
//!    assigns new threads to the best-performing thermally sustainable
//!    ring, rotates every ring synchronously, evicts compute-bound threads
//!    outward under thermal pressure and promotes memory-bound threads
//!    inward when headroom appears — all at peak frequency, no DVFS.
//!
//! # Example: the Fig. 1 rotation, analytically
//!
//! ```
//! use hp_floorplan::{CoreId, GridFloorplan};
//! use hp_linalg::Vector;
//! use hp_thermal::{RcThermalModel, ThermalConfig};
//! use hotpotato::{EpochPowerSequence, RotationPeakSolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fp = GridFloorplan::new(4, 4)?;
//! let model = RcThermalModel::new(&fp, &ThermalConfig::default())?;
//! let solver = RotationPeakSolver::new(model)?;
//!
//! // Two 7 W threads rotating over the centre ring {5, 6, 10, 9} at 0.5 ms.
//! let ring = [CoreId(5), CoreId(6), CoreId(10), CoreId(9)];
//! let mut epochs = Vec::new();
//! for e in 0..4 {
//!     let mut p = Vector::constant(16, 0.3);
//!     p[ring[e % 4].index()] = 7.0;
//!     p[ring[(e + 2) % 4].index()] = 7.0;
//!     epochs.push(p);
//! }
//! let seq = EpochPowerSequence::new(0.5e-3, epochs)?;
//! let report = solver.peak(&seq)?;
//! // The rotation averages the heat: peak stays below the 70 °C threshold,
//! // while pinning the same threads (Fig. 2(a)) exceeds it.
//! assert!(report.peak_celsius < 70.0);
//! # Ok(())
//! # }
//! ```

mod error;
mod peak;
mod rotation;
mod scheduler;

pub mod design_space;

pub use error::HotPotatoError;
pub use peak::{Alg1Stats, PeakReport, RotationPeakSolver};
pub use rotation::{EpochPowerSequence, RingRotation};
pub use scheduler::{HotPotato, HotPotatoConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HotPotatoError>;
