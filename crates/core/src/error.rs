use std::error::Error;
use std::fmt;

use hp_linalg::LinalgError;
use hp_thermal::ThermalError;

/// Errors produced by the HotPotato analytics and scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HotPotatoError {
    /// An epoch power sequence was malformed.
    InvalidSequence(&'static str),
    /// A parameter was non-physical.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Its value.
        value: f64,
    },
    /// An underlying thermal-model operation failed.
    Thermal(ThermalError),
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for HotPotatoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HotPotatoError::InvalidSequence(what) => {
                write!(f, "invalid epoch power sequence: {what}")
            }
            HotPotatoError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "hotpotato parameter {name} has non-physical value {value}"
                )
            }
            HotPotatoError::Thermal(e) => write!(f, "thermal model failure: {e}"),
            HotPotatoError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for HotPotatoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HotPotatoError::Thermal(e) => Some(e),
            HotPotatoError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for HotPotatoError {
    fn from(e: ThermalError) -> Self {
        HotPotatoError::Thermal(e)
    }
}

impl From<LinalgError> for HotPotatoError {
    fn from(e: LinalgError) -> Self {
        HotPotatoError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = HotPotatoError::InvalidSequence("empty");
        assert!(e.to_string().contains("empty"));
        assert!(e.source().is_none());
        let e = HotPotatoError::Linalg(LinalgError::Singular { pivot: 0 });
        assert!(e.source().is_some());
    }
}
