use hp_floorplan::CoreId;
use hp_linalg::Vector;

use crate::{HotPotatoError, Result};

/// The per-epoch power maps of one rotation period.
///
/// Epoch `e` holds the chip-wide per-core power vector while the rotation
/// sits in configuration `e`; after `δ = epochs.len()` epochs of length
/// `τ` every thread is back on its starting core and the pattern repeats —
/// the setting of paper Eqs. (5)–(11).
///
/// # Example
///
/// ```
/// use hp_linalg::Vector;
/// use hotpotato::EpochPowerSequence;
///
/// # fn main() -> Result<(), hotpotato::HotPotatoError> {
/// let epochs = vec![
///     Vector::from(vec![5.0, 0.3]),
///     Vector::from(vec![0.3, 5.0]),
/// ];
/// let seq = EpochPowerSequence::new(0.5e-3, epochs)?;
/// assert_eq!(seq.delta(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPowerSequence {
    tau: f64,
    epochs: Vec<Vector>,
}

impl EpochPowerSequence {
    /// Creates a sequence with epoch length `tau` seconds.
    ///
    /// # Errors
    ///
    /// * [`HotPotatoError::InvalidParameter`] if `tau` is not positive.
    /// * [`HotPotatoError::InvalidSequence`] if `epochs` is empty or the
    ///   power vectors have differing lengths.
    pub fn new(tau: f64, epochs: Vec<Vector>) -> Result<Self> {
        if !(tau.is_finite() && tau > 0.0) {
            return Err(HotPotatoError::InvalidParameter {
                name: "tau",
                value: tau,
            });
        }
        if epochs.is_empty() {
            return Err(HotPotatoError::InvalidSequence("no epochs"));
        }
        let len = epochs[0].len();
        if len == 0 {
            return Err(HotPotatoError::InvalidSequence("empty power vectors"));
        }
        if epochs.iter().any(|p| p.len() != len) {
            return Err(HotPotatoError::InvalidSequence(
                "power vectors differ in length",
            ));
        }
        Ok(EpochPowerSequence { tau, epochs })
    }

    /// Epoch length `τ`, seconds.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Rotation period `δ` (number of epochs).
    pub fn delta(&self) -> usize {
        self.epochs.len()
    }

    /// Number of cores each power vector covers.
    pub fn core_count(&self) -> usize {
        self.epochs[0].len()
    }

    /// The per-core power map of epoch `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= self.delta()`.
    pub fn epoch(&self, e: usize) -> &Vector {
        &self.epochs[e]
    }

    /// Time-averaged per-core power over the full period, W.
    pub fn average_power(&self) -> Vector {
        let mut avg = Vector::zeros(self.core_count());
        for p in &self.epochs {
            avg += p;
        }
        avg.scaled(1.0 / self.delta() as f64)
    }

    /// The sequence that results from cyclically shifting the epoch order
    /// by `k` (used in tests: the steady-cycle peak is shift-invariant).
    pub fn shifted(&self, k: usize) -> EpochPowerSequence {
        let d = self.delta();
        let epochs = (0..d).map(|e| self.epochs[(e + k) % d].clone()).collect();
        EpochPowerSequence {
            tau: self.tau,
            epochs,
        }
    }
}

/// Bookkeeping for a synchronous rotation of threads inside one AMD ring.
///
/// The ring has `capacity` slots (its cores in cyclic order); each slot
/// holds at most one thread handle of type `T`. Advancing the rotation
/// moves every occupant to the next slot simultaneously — the permutation
/// the simulation engine accepts as one atomic migration batch.
///
/// # Example
///
/// ```
/// use hp_floorplan::CoreId;
/// use hotpotato::RingRotation;
///
/// let mut ring = RingRotation::new(vec![CoreId(5), CoreId(6), CoreId(10), CoreId(9)]);
/// ring.occupy(0, "master");
/// ring.occupy(2, "slave");
/// let moves = ring.advance();
/// assert_eq!(moves, vec![("master", CoreId(5), CoreId(6)), ("slave", CoreId(10), CoreId(9))]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingRotation<T> {
    cores: Vec<CoreId>,
    slots: Vec<Option<T>>,
}

impl<T: Copy + PartialEq> RingRotation<T> {
    /// Creates an empty rotation over `cores` (cyclic order).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn new(cores: Vec<CoreId>) -> Self {
        assert!(!cores.is_empty(), "a ring needs at least one core");
        let slots = vec![None; cores.len()];
        RingRotation { cores, slots }
    }

    /// The ring's cores in cyclic order.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.cores.len()
    }

    /// Number of occupied slots.
    pub fn occupants(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Slot indices currently free.
    pub fn free_slots(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// The core of slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn core_of_slot(&self, slot: usize) -> CoreId {
        self.cores[slot]
    }

    /// The occupant of slot `slot`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn occupant(&self, slot: usize) -> Option<T> {
        self.slots[slot]
    }

    /// Occupies `slot` with `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied or out of range.
    pub fn occupy(&mut self, slot: usize, thread: T) {
        assert!(self.slots[slot].is_none(), "slot {slot} already occupied");
        self.slots[slot] = Some(thread);
    }

    /// Removes `thread` from the ring; returns `true` if it was present.
    pub fn remove(&mut self, thread: T) -> bool {
        for s in &mut self.slots {
            if *s == Some(thread) {
                *s = None;
                return true;
            }
        }
        false
    }

    /// The slot of `thread`, if present.
    pub fn slot_of(&self, thread: T) -> Option<usize> {
        self.slots.iter().position(|s| *s == Some(thread))
    }

    /// Advances the rotation by one slot; returns `(thread, from, to)`
    /// moves for every occupant.
    pub fn advance(&mut self) -> Vec<(T, CoreId, CoreId)> {
        let k = self.capacity();
        if k <= 1 || self.occupants() == 0 {
            return Vec::new();
        }
        let mut moves = Vec::new();
        let mut next: Vec<Option<T>> = vec![None; k];
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(t) = s {
                let j = (i + 1) % k;
                next[j] = Some(*t);
                moves.push((*t, self.cores[i], self.cores[j]));
            }
        }
        self.slots = next;
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_validation() {
        assert!(EpochPowerSequence::new(0.0, vec![Vector::zeros(2)]).is_err());
        assert!(EpochPowerSequence::new(1e-3, vec![]).is_err());
        assert!(EpochPowerSequence::new(1e-3, vec![Vector::zeros(2), Vector::zeros(3)]).is_err());
        assert!(EpochPowerSequence::new(1e-3, vec![Vector::zeros(0)]).is_err());
    }

    #[test]
    fn average_power() {
        let seq = EpochPowerSequence::new(
            1e-3,
            vec![Vector::from(vec![4.0, 0.0]), Vector::from(vec![0.0, 2.0])],
        )
        .unwrap();
        assert_eq!(seq.average_power().as_slice(), &[2.0, 1.0]);
    }

    #[test]
    fn shifted_preserves_content() {
        let seq = EpochPowerSequence::new(
            1e-3,
            vec![
                Vector::from(vec![1.0]),
                Vector::from(vec![2.0]),
                Vector::from(vec![3.0]),
            ],
        )
        .unwrap();
        let s = seq.shifted(1);
        assert_eq!(s.epoch(0).as_slice(), &[2.0]);
        assert_eq!(s.epoch(2).as_slice(), &[1.0]);
        assert_eq!(seq.shifted(3), seq);
    }

    #[test]
    fn ring_rotation_cycles_back() {
        let mut ring = RingRotation::new(vec![CoreId(0), CoreId(1), CoreId(2)]);
        ring.occupy(0, 7u32);
        for _ in 0..3 {
            ring.advance();
        }
        assert_eq!(ring.slot_of(7), Some(0));
    }

    #[test]
    fn full_ring_rotation_is_permutation() {
        let mut ring = RingRotation::new(vec![CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
        for s in 0..4 {
            ring.occupy(s, s as u32);
        }
        let moves = ring.advance();
        assert_eq!(moves.len(), 4);
        let mut targets: Vec<CoreId> = moves.iter().map(|m| m.2).collect();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), 4, "no two threads share a target");
    }

    #[test]
    fn remove_and_free_slots() {
        let mut ring = RingRotation::new(vec![CoreId(0), CoreId(1)]);
        ring.occupy(1, 9u32);
        assert_eq!(ring.free_slots(), vec![0]);
        assert!(ring.remove(9));
        assert!(!ring.remove(9));
        assert_eq!(ring.occupants(), 0);
    }

    #[test]
    fn single_slot_ring_never_moves() {
        let mut ring = RingRotation::new(vec![CoreId(0)]);
        ring.occupy(0, 1u32);
        assert!(ring.advance().is_empty());
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_occupy_panics() {
        let mut ring = RingRotation::new(vec![CoreId(0)]);
        ring.occupy(0, 1u32);
        ring.occupy(0, 2u32);
    }
}
