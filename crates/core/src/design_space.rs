//! Exhaustive exploration of the ring-assignment design space.
//!
//! §V of the paper notes the design space for assigning `n_active` threads
//! to `R` AMD rings is combinatorial and finding the performance-optimal
//! thermally-safe schedule is NP-hard, which is why HotPotato is a greedy
//! heuristic. For *small* instances the space can be enumerated outright,
//! which gives an oracle to measure the heuristic against — the
//! "near-optimal" claim, quantified (see the `oracle_gap` experiment and
//! the tests below).

use hp_linalg::Vector;

use crate::{EpochPowerSequence, Result, RotationPeakSolver};

/// One thread to place: its estimated power draw and its predicted
/// instructions-per-second on each ring (index = ring).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadDemand {
    /// Estimated power at peak frequency, W.
    pub watts: f64,
    /// Predicted IPS per ring (performance of the ring's cores for this
    /// thread's work point).
    pub ips_per_ring: Vec<f64>,
}

/// The outcome of an exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleResult {
    /// Ring index per thread (same order as the input demands).
    pub assignment: Vec<usize>,
    /// Total predicted IPS of the best thermally safe assignment.
    pub total_ips: f64,
    /// Algorithm-1 peak of that assignment, °C.
    pub peak_celsius: f64,
    /// Number of assignments enumerated.
    pub explored: usize,
}

/// Exhaustively searches all assignments of `demands` threads to rings
/// (respecting ring capacities) for the highest total IPS whose rotation
/// peak stays below `t_dtm − delta`.
///
/// Rotation semantics match the HotPotato scheduler's evaluator: each
/// ring rotates its own threads with period = ring capacity; other rings
/// contribute their time-averaged power.
///
/// Peak evaluations fan out over all available cores with scoped threads
/// (the search dominates the `oracle_gap` experiment's runtime). Results
/// are merged back in enumeration order, so the winner — including
/// tie-breaks, which keep the first enumerated assignment — is identical
/// to a serial scan.
///
/// Returns `None` when no assignment is thermally safe. Complexity is
/// `O(R^k)` peak evaluations — strictly a small-instance oracle.
///
/// # Errors
///
/// Propagates peak-solver failures.
///
/// # Panics
///
/// Panics if a demand's `ips_per_ring` length differs from the ring count
/// implied by `ring_capacities`.
pub fn exhaustive_best_assignment(
    solver: &RotationPeakSolver,
    ring_cores: &[Vec<usize>],
    demands: &[ThreadDemand],
    tau: f64,
    idle_power: f64,
    t_dtm: f64,
    delta: f64,
) -> Result<Option<OracleResult>> {
    let rings = ring_cores.len();
    for d in demands {
        assert_eq!(
            d.ips_per_ring.len(),
            rings,
            "demand must predict IPS for every ring"
        );
    }
    let k = demands.len();

    // Odometer enumeration of ring indices, pruning capacity violations.
    let mut feasible: Vec<Vec<usize>> = Vec::new();
    let mut assignment = vec![0usize; k];
    'enumerate: loop {
        let mut counts = vec![0usize; rings];
        for &r in &assignment {
            counts[r] += 1;
        }
        if counts
            .iter()
            .zip(ring_cores)
            .all(|(&c, cores)| c <= cores.len())
        {
            feasible.push(assignment.clone());
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == k {
                break 'enumerate;
            }
            assignment[i] += 1;
            if assignment[i] < rings {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }

    let peaks = evaluate_peaks_parallel(solver, ring_cores, demands, &feasible, tau, idle_power)?;

    // Serial merge in enumeration order: same winner and same tie-breaking
    // ("strictly greater replaces", so the first enumerated assignment
    // wins ties) as the original sequential scan.
    let explored = feasible.len();
    let mut best: Option<OracleResult> = None;
    for (assignment, &peak) in feasible.iter().zip(&peaks) {
        if peak + delta < t_dtm {
            let total_ips: f64 = demands
                .iter()
                .zip(assignment)
                .map(|(d, &r)| d.ips_per_ring[r])
                .sum();
            if best.as_ref().is_none_or(|b| total_ips > b.total_ips) {
                best = Some(OracleResult {
                    assignment: assignment.clone(),
                    total_ips,
                    peak_celsius: peak,
                    explored,
                });
            }
        }
    }
    Ok(best)
}

/// Algorithm-1 peaks for a list of assignments, fanned out over scoped
/// threads sharing the solver. The returned vector is index-aligned with
/// `assignments` regardless of thread scheduling.
///
/// Concurrency contract: the workers only take `&RotationPeakSolver`
/// (whose interior mutability is confined to its poison-tolerant decay
/// cache) and disjoint `&[Vec<usize>]` chunks, so no data race is
/// possible; `std::thread::scope` guarantees every worker is joined
/// before the borrowed inputs go out of scope. Results are pushed in
/// spawn order, which is what makes the merge — and therefore the
/// oracle's tie-breaking — deterministic. A panic inside a worker is
/// re-raised on the calling thread via `resume_unwind`, never swallowed.
fn evaluate_peaks_parallel(
    solver: &RotationPeakSolver,
    ring_cores: &[Vec<usize>],
    demands: &[ThreadDemand],
    assignments: &[Vec<usize>],
    tau: f64,
    idle_power: f64,
) -> Result<Vec<f64>> {
    if assignments.is_empty() {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(assignments.len());
    let chunk_len = assignments.len().div_ceil(workers);
    let mut chunk_results: Vec<Result<Vec<f64>>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|a| {
                            evaluate_assignment(solver, ring_cores, demands, a, tau, idle_power)
                        })
                        .collect::<Result<Vec<f64>>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(chunk) => chunk_results.push(chunk),
                // Forward a worker panic to the caller instead of
                // papering over it with a second panic site.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut peaks = Vec::with_capacity(assignments.len());
    for chunk in chunk_results {
        peaks.extend(chunk?);
    }
    Ok(peaks)
}

/// Algorithm-1 peak for an explicit thread→ring assignment, with the same
/// per-ring evaluation the HotPotato scheduler uses. All occupied rings'
/// rotations are evaluated in one [`RotationPeakSolver::peak_celsius_many`]
/// batch.
pub fn evaluate_assignment(
    solver: &RotationPeakSolver,
    ring_cores: &[Vec<usize>],
    demands: &[ThreadDemand],
    assignment: &[usize],
    tau: f64,
    idle_power: f64,
) -> Result<f64> {
    let n = solver.model().core_count();

    // Ring-averaged background.
    let mut background = Vector::constant(n, idle_power);
    for (r, cores) in ring_cores.iter().enumerate() {
        let members: Vec<f64> = demands
            .iter()
            .zip(assignment)
            .filter(|(_, &a)| a == r)
            .map(|(d, _)| d.watts)
            .collect();
        if members.is_empty() {
            continue;
        }
        let avg = (members.iter().sum::<f64>() + (cores.len() - members.len()) as f64 * idle_power)
            / cores.len() as f64;
        for &c in cores {
            background[c] = avg;
        }
    }

    let mut seqs = Vec::new();
    for (r, cores) in ring_cores.iter().enumerate() {
        let members: Vec<f64> = demands
            .iter()
            .zip(assignment)
            .filter(|(_, &a)| a == r)
            .map(|(d, _)| d.watts)
            .collect();
        if members.is_empty() {
            continue;
        }
        let delta_epochs = cores.len();
        // Spread members over the ring's slots (maximal separation).
        let slots: Vec<usize> = (0..members.len())
            .map(|i| i * delta_epochs / members.len())
            .collect();
        let epochs: Vec<Vector> = (0..delta_epochs)
            .map(|e| {
                let mut p = background.clone();
                for &c in cores {
                    p[c] = idle_power;
                }
                for (i, &w) in members.iter().enumerate() {
                    p[cores[(slots[i] + e) % delta_epochs]] = w;
                }
                p
            })
            .collect();
        seqs.push(EpochPowerSequence::new(tau, epochs)?);
    }
    if seqs.is_empty() {
        // Idle chip.
        let seq = EpochPowerSequence::new(tau, vec![Vector::constant(n, idle_power)])?;
        return solver.peak_celsius(&seq);
    }
    let peaks = solver.peak_celsius_many(&seqs)?;
    Ok(peaks.into_iter().fold(f64::NEG_INFINITY, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_thermal::{RcThermalModel, ThermalConfig};

    fn solver() -> RotationPeakSolver {
        let model = RcThermalModel::new(
            &GridFloorplan::new(4, 4).expect("grid"),
            &ThermalConfig::default(),
        )
        .expect("valid config");
        RotationPeakSolver::new(model).expect("decomposes")
    }

    fn rings_4x4() -> Vec<Vec<usize>> {
        let fp = GridFloorplan::new(4, 4).expect("grid");
        fp.amd_rings()
            .iter()
            .map(|r| r.cores().iter().map(|c| c.index()).collect())
            .collect()
    }

    fn demand(watts: f64, ips: [f64; 3]) -> ThreadDemand {
        ThreadDemand {
            watts,
            ips_per_ring: ips.to_vec(),
        }
    }

    #[test]
    fn cool_thread_lands_on_the_fastest_ring() {
        let s = solver();
        let demands = vec![demand(2.0, [3.0, 2.5, 2.0])];
        let best = exhaustive_best_assignment(&s, &rings_4x4(), &demands, 0.5e-3, 0.3, 70.0, 1.0)
            .expect("search runs")
            .expect("safe assignment exists");
        assert_eq!(best.assignment, vec![0], "inner ring is fastest and safe");
        assert_eq!(best.total_ips, 3.0);
        assert!(best.explored >= 3);
    }

    #[test]
    fn unsafe_everywhere_returns_none() {
        let s = solver();
        // Four 9 W threads on every ring violate any threshold of 50 C.
        let demands = vec![
            demand(9.0, [1.0, 1.0, 1.0]),
            demand(9.0, [1.0, 1.0, 1.0]),
            demand(9.0, [1.0, 1.0, 1.0]),
            demand(9.0, [1.0, 1.0, 1.0]),
        ];
        let best = exhaustive_best_assignment(&s, &rings_4x4(), &demands, 0.5e-3, 0.3, 50.0, 1.0)
            .expect("search runs");
        assert!(best.is_none());
    }

    #[test]
    fn hot_pair_splits_or_spreads_when_needed() {
        let s = solver();
        // Two hot threads: inner-ring rotation keeps them safe, so the
        // oracle should still prefer ring 0 for both (IPS dominates).
        let demands = vec![demand(7.0, [3.0, 2.5, 2.0]), demand(7.0, [3.0, 2.5, 2.0])];
        let best = exhaustive_best_assignment(&s, &rings_4x4(), &demands, 0.5e-3, 0.3, 70.0, 1.0)
            .expect("search runs")
            .expect("safe assignment exists");
        assert_eq!(best.assignment, vec![0, 0]);
        assert!(best.peak_celsius < 69.0);
    }

    #[test]
    fn capacity_constraints_respected() {
        let s = solver();
        // Six cool threads cannot all fit the 4-slot inner ring.
        let demands: Vec<ThreadDemand> = (0..6).map(|_| demand(1.0, [3.0, 2.5, 2.0])).collect();
        let best = exhaustive_best_assignment(&s, &rings_4x4(), &demands, 0.5e-3, 0.3, 70.0, 1.0)
            .expect("search runs")
            .expect("safe assignment exists");
        let inner = best.assignment.iter().filter(|&&r| r == 0).count();
        assert!(inner <= 4, "inner ring holds at most 4 threads");
        assert_eq!(best.total_ips, 4.0 * 3.0 + 2.0 * 2.5);
    }

    #[test]
    fn evaluate_assignment_matches_oracle_peak() {
        let s = solver();
        let rings = rings_4x4();
        let demands = vec![demand(7.0, [3.0, 2.5, 2.0])];
        let best = exhaustive_best_assignment(&s, &rings, &demands, 0.5e-3, 0.3, 70.0, 1.0)
            .expect("search runs")
            .expect("safe");
        let peak = evaluate_assignment(&s, &rings, &demands, &best.assignment, 0.5e-3, 0.3)
            .expect("evaluates");
        assert!((peak - best.peak_celsius).abs() < 1e-12);
    }
}
