//! Exhaustive exploration of the ring-assignment design space.
//!
//! §V of the paper notes the design space for assigning `n_active` threads
//! to `R` AMD rings is combinatorial and finding the performance-optimal
//! thermally-safe schedule is NP-hard, which is why HotPotato is a greedy
//! heuristic. For *small* instances the space can be enumerated outright,
//! which gives an oracle to measure the heuristic against — the
//! "near-optimal" claim, quantified (see the `oracle_gap` experiment and
//! the tests below).

use hp_linalg::Vector;

use crate::{EpochPowerSequence, Result, RotationPeakSolver};

/// One thread to place: its estimated power draw and its predicted
/// instructions-per-second on each ring (index = ring).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadDemand {
    /// Estimated power at peak frequency, W.
    pub watts: f64,
    /// Predicted IPS per ring (performance of the ring's cores for this
    /// thread's work point).
    pub ips_per_ring: Vec<f64>,
}

/// The outcome of an exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleResult {
    /// Ring index per thread (same order as the input demands).
    pub assignment: Vec<usize>,
    /// Total predicted IPS of the best thermally safe assignment.
    pub total_ips: f64,
    /// Algorithm-1 peak of that assignment, °C.
    pub peak_celsius: f64,
    /// Number of assignments enumerated.
    pub explored: usize,
}

/// Exhaustively searches all assignments of `demands` threads to rings
/// (respecting ring capacities) for the highest total IPS whose rotation
/// peak stays below `t_dtm − delta`.
///
/// Rotation semantics match the HotPotato scheduler's evaluator: each
/// ring rotates its own threads with period = ring capacity; other rings
/// contribute their time-averaged power.
///
/// Returns `None` when no assignment is thermally safe. Complexity is
/// `O(R^k)` peak evaluations — strictly a small-instance oracle.
///
/// # Errors
///
/// Propagates peak-solver failures.
///
/// # Panics
///
/// Panics if a demand's `ips_per_ring` length differs from the ring count
/// implied by `ring_capacities`.
pub fn exhaustive_best_assignment(
    solver: &RotationPeakSolver,
    ring_cores: &[Vec<usize>],
    demands: &[ThreadDemand],
    tau: f64,
    idle_power: f64,
    t_dtm: f64,
    delta: f64,
) -> Result<Option<OracleResult>> {
    let rings = ring_cores.len();
    for d in demands {
        assert_eq!(
            d.ips_per_ring.len(),
            rings,
            "demand must predict IPS for every ring"
        );
    }
    let k = demands.len();
    let mut assignment = vec![0usize; k];
    let mut best: Option<OracleResult> = None;
    let mut explored = 0usize;

    // Odometer enumeration of ring indices, pruning capacity violations.
    loop {
        // Capacity check.
        let mut counts = vec![0usize; rings];
        for &r in &assignment {
            counts[r] += 1;
        }
        let feasible = counts
            .iter()
            .zip(ring_cores)
            .all(|(&c, cores)| c <= cores.len());
        if feasible {
            explored += 1;
            let peak = evaluate_assignment(
                solver,
                ring_cores,
                demands,
                &assignment,
                tau,
                idle_power,
            )?;
            if peak + delta < t_dtm {
                let total_ips: f64 = demands
                    .iter()
                    .zip(&assignment)
                    .map(|(d, &r)| d.ips_per_ring[r])
                    .sum();
                let better = best
                    .as_ref()
                    .is_none_or(|b| total_ips > b.total_ips);
                if better {
                    best = Some(OracleResult {
                        assignment: assignment.clone(),
                        total_ips,
                        peak_celsius: peak,
                        explored: 0,
                    });
                }
            }
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == k {
                if let Some(b) = &mut best {
                    b.explored = explored;
                }
                return Ok(best);
            }
            assignment[i] += 1;
            if assignment[i] < rings {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Algorithm-1 peak for an explicit thread→ring assignment, with the same
/// per-ring evaluation the HotPotato scheduler uses.
pub fn evaluate_assignment(
    solver: &RotationPeakSolver,
    ring_cores: &[Vec<usize>],
    demands: &[ThreadDemand],
    assignment: &[usize],
    tau: f64,
    idle_power: f64,
) -> Result<f64> {
    let n = solver.model().core_count();

    // Ring-averaged background.
    let mut background = Vector::constant(n, idle_power);
    for (r, cores) in ring_cores.iter().enumerate() {
        let members: Vec<f64> = demands
            .iter()
            .zip(assignment)
            .filter(|(_, &a)| a == r)
            .map(|(d, _)| d.watts)
            .collect();
        if members.is_empty() {
            continue;
        }
        let avg = (members.iter().sum::<f64>()
            + (cores.len() - members.len()) as f64 * idle_power)
            / cores.len() as f64;
        for &c in cores {
            background[c] = avg;
        }
    }

    let mut worst = f64::NEG_INFINITY;
    for (r, cores) in ring_cores.iter().enumerate() {
        let members: Vec<f64> = demands
            .iter()
            .zip(assignment)
            .filter(|(_, &a)| a == r)
            .map(|(d, _)| d.watts)
            .collect();
        if members.is_empty() {
            continue;
        }
        let delta_epochs = cores.len();
        // Spread members over the ring's slots (maximal separation).
        let slots: Vec<usize> = (0..members.len())
            .map(|i| i * delta_epochs / members.len())
            .collect();
        let epochs: Vec<Vector> = (0..delta_epochs)
            .map(|e| {
                let mut p = background.clone();
                for &c in cores {
                    p[c] = idle_power;
                }
                for (i, &w) in members.iter().enumerate() {
                    p[cores[(slots[i] + e) % delta_epochs]] = w;
                }
                p
            })
            .collect();
        let seq = EpochPowerSequence::new(tau, epochs)?;
        worst = worst.max(solver.peak_celsius(&seq)?);
    }
    if worst == f64::NEG_INFINITY {
        // Idle chip.
        let seq = EpochPowerSequence::new(tau, vec![Vector::constant(n, idle_power)])?;
        worst = solver.peak_celsius(&seq)?;
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_thermal::{RcThermalModel, ThermalConfig};

    fn solver() -> RotationPeakSolver {
        let model = RcThermalModel::new(
            &GridFloorplan::new(4, 4).expect("grid"),
            &ThermalConfig::default(),
        )
        .expect("valid config");
        RotationPeakSolver::new(model).expect("decomposes")
    }

    fn rings_4x4() -> Vec<Vec<usize>> {
        let fp = GridFloorplan::new(4, 4).expect("grid");
        fp.amd_rings()
            .iter()
            .map(|r| r.cores().iter().map(|c| c.index()).collect())
            .collect()
    }

    fn demand(watts: f64, ips: [f64; 3]) -> ThreadDemand {
        ThreadDemand {
            watts,
            ips_per_ring: ips.to_vec(),
        }
    }

    #[test]
    fn cool_thread_lands_on_the_fastest_ring() {
        let s = solver();
        let demands = vec![demand(2.0, [3.0, 2.5, 2.0])];
        let best =
            exhaustive_best_assignment(&s, &rings_4x4(), &demands, 0.5e-3, 0.3, 70.0, 1.0)
                .expect("search runs")
                .expect("safe assignment exists");
        assert_eq!(best.assignment, vec![0], "inner ring is fastest and safe");
        assert_eq!(best.total_ips, 3.0);
        assert!(best.explored >= 3);
    }

    #[test]
    fn unsafe_everywhere_returns_none() {
        let s = solver();
        // Four 9 W threads on every ring violate any threshold of 50 C.
        let demands = vec![
            demand(9.0, [1.0, 1.0, 1.0]),
            demand(9.0, [1.0, 1.0, 1.0]),
            demand(9.0, [1.0, 1.0, 1.0]),
            demand(9.0, [1.0, 1.0, 1.0]),
        ];
        let best =
            exhaustive_best_assignment(&s, &rings_4x4(), &demands, 0.5e-3, 0.3, 50.0, 1.0)
                .expect("search runs");
        assert!(best.is_none());
    }

    #[test]
    fn hot_pair_splits_or_spreads_when_needed() {
        let s = solver();
        // Two hot threads: inner-ring rotation keeps them safe, so the
        // oracle should still prefer ring 0 for both (IPS dominates).
        let demands = vec![
            demand(7.0, [3.0, 2.5, 2.0]),
            demand(7.0, [3.0, 2.5, 2.0]),
        ];
        let best =
            exhaustive_best_assignment(&s, &rings_4x4(), &demands, 0.5e-3, 0.3, 70.0, 1.0)
                .expect("search runs")
                .expect("safe assignment exists");
        assert_eq!(best.assignment, vec![0, 0]);
        assert!(best.peak_celsius < 69.0);
    }

    #[test]
    fn capacity_constraints_respected() {
        let s = solver();
        // Six cool threads cannot all fit the 4-slot inner ring.
        let demands: Vec<ThreadDemand> =
            (0..6).map(|_| demand(1.0, [3.0, 2.5, 2.0])).collect();
        let best =
            exhaustive_best_assignment(&s, &rings_4x4(), &demands, 0.5e-3, 0.3, 70.0, 1.0)
                .expect("search runs")
                .expect("safe assignment exists");
        let inner = best.assignment.iter().filter(|&&r| r == 0).count();
        assert!(inner <= 4, "inner ring holds at most 4 threads");
        assert_eq!(best.total_ips, 4.0 * 3.0 + 2.0 * 2.5);
    }

    #[test]
    fn evaluate_assignment_matches_oracle_peak() {
        let s = solver();
        let rings = rings_4x4();
        let demands = vec![demand(7.0, [3.0, 2.5, 2.0])];
        let best = exhaustive_best_assignment(&s, &rings, &demands, 0.5e-3, 0.3, 70.0, 1.0)
            .expect("search runs")
            .expect("safe");
        let peak =
            evaluate_assignment(&s, &rings, &demands, &best.assignment, 0.5e-3, 0.3)
                .expect("evaluates");
        assert!((peak - best.peak_celsius).abs() < 1e-12);
    }
}
