//! The HotPotato run-time scheduler (paper §V, Algorithm 2).
//!
//! HotPotato keeps every core at peak frequency and manages temperature
//! purely through *where* threads run and *how fast they rotate*:
//!
//! * new threads go to the innermost (lowest-AMD, fastest) ring whose
//!   rotation stays below `T_DTM − Δ` according to Algorithm 1;
//! * under thermal pressure, the most compute-bound (lowest-CPI, hottest)
//!   threads are evicted outward, then the rotation accelerates;
//! * with spare headroom, the most memory-bound (highest-CPI) threads are
//!   promoted inward — they benefit most from a low-AMD ring — and the
//!   rotation decelerates (less migration overhead), stopping entirely
//!   when the workload is sustainable without it.
//!
//! ## Deviations from the paper (documented in DESIGN.md §5)
//!
//! * **Slot choice inside a ring** — the paper evaluates every empty slot
//!   in parallel; because ring cores are thermally homogeneous by
//!   symmetry, we pick the free slot farthest (in rotation order) from the
//!   occupied slots and evaluate Algorithm 1 once. On a symmetric grid this
//!   selects the same slot the exhaustive search would.
//! * **Cross-ring coupling** — when evaluating one ring's rotation, other
//!   rings contribute their *time-averaged* power on their own cores
//!   (they rotate too, so their long-run contribution on each of their
//!   cores is the mean). `T_peak` is the max over per-ring evaluations.

use std::collections::BTreeMap;
use std::time::Instant;

use hp_floorplan::CoreId;
use hp_linalg::{Matrix, Vector};
use hp_obs::{Registry, RunReport};
use hp_sim::{Action, Scheduler, SchedulerHealth, SimView, ThreadId};
use hp_thermal::RcThermalModel;

use crate::{Alg1Stats, EpochPowerSequence, Result, RingRotation, RotationPeakSolver};

/// Tuning knobs of the HotPotato scheduler.
///
/// # Example
///
/// ```
/// use hotpotato::HotPotatoConfig;
///
/// let cfg = HotPotatoConfig::default();
/// assert_eq!(cfg.tau_levels[cfg.initial_tau_index], 0.5e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HotPotatoConfig {
    /// DTM threshold temperature, °C (paper: 70 °C).
    pub t_dtm: f64,
    /// Thermal headroom hysteresis Δ, °C (paper: 1 °C).
    pub delta_headroom: f64,
    /// Available rotation intervals τ, seconds, fastest first.
    ///
    /// Effective rotation granularity is bounded below by the engine's
    /// [`hp_sim::SimConfig::sched_period`] — the scheduler can only act
    /// when it is invoked, so a τ below the scheduling period behaves
    /// like the period itself.
    pub tau_levels: Vec<f64>,
    /// Index into `tau_levels` used at start (paper: 0.5 ms).
    pub initial_tau_index: usize,
    /// Idle-core power estimate used in power maps, W (paper: 0.3 W).
    pub idle_power: f64,
    /// Master ablation switch: with rotation disabled HotPotato degrades
    /// to ring-aware placement only.
    pub rotation_enabled: bool,
    /// Re-evaluate `T_peak` at least this often even without assignment
    /// changes, s (power drift tracking).
    pub reevaluate_period: f64,
    /// Maximum ring moves (evictions + promotions) per scheduling call.
    pub max_moves_per_call: usize,
}

impl Default for HotPotatoConfig {
    fn default() -> Self {
        HotPotatoConfig {
            t_dtm: 70.0,
            delta_headroom: 1.0,
            tau_levels: vec![0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3],
            initial_tau_index: 1,
            idle_power: 0.3,
            rotation_enabled: true,
            reevaluate_period: 5e-3,
            max_moves_per_call: 4,
        }
    }
}

impl HotPotatoConfig {
    fn validate(&self) -> Result<()> {
        if self.tau_levels.is_empty() || self.initial_tau_index >= self.tau_levels.len() {
            return Err(crate::HotPotatoError::InvalidParameter {
                name: "initial_tau_index",
                value: self.initial_tau_index as f64,
            });
        }
        for &t in &self.tau_levels {
            if !(t.is_finite() && t > 0.0) {
                return Err(crate::HotPotatoError::InvalidParameter {
                    name: "tau_levels",
                    value: t,
                });
            }
        }
        Ok(())
    }
}

/// The HotPotato scheduler: synchronous thread rotations over AMD rings,
/// no DVFS.
///
/// Implements [`hp_sim::Scheduler`]; see the module-level documentation
/// for the policy and the [crate docs](crate) for the analytics underneath.
#[derive(Debug)]
pub struct HotPotato {
    config: HotPotatoConfig,
    solver: RotationPeakSolver,
    /// Ring bookkeeping, built lazily from the machine on the first
    /// `schedule` call (empty until then).
    rings: Vec<RingRotation<ThreadId>>,
    tau_index: usize,
    rotating: bool,
    last_rotation: f64,
    last_peak: f64,
    last_evaluation: f64,
    assignment_dirty: bool,
    /// Cached per-thread power estimates from the last call.
    powers: BTreeMap<ThreadId, f64>,
    /// Number of Algorithm-1 evaluations performed (for the overhead study).
    evaluations: u64,
    /// Number of Algorithm-1 evaluations that failed (malformed sequence
    /// or solver error) and were read as `T_peak = ∞`.
    solver_failures: u64,
    /// Ring occupancy restored from a checkpoint before the rings
    /// themselves exist ([`Scheduler::restore`] has no machine access);
    /// applied and consumed by the first `schedule` call after the lazy
    /// ring construction. `None` outside that window.
    restored_slots: Option<Vec<Vec<(usize, ThreadId)>>>,
    /// Probe wall-clock histograms and policy counters, surfaced through
    /// [`Scheduler::observability`].
    obs: Registry,
}

impl HotPotato {
    /// Builds the scheduler for a chip with the given thermal model.
    ///
    /// The model must match the machine the simulation runs on; the
    /// design-time phase of Algorithm 1 (eigendecomposition) happens here.
    ///
    /// # Errors
    ///
    /// Propagates configuration and eigendecomposition failures.
    pub fn new(model: RcThermalModel, config: HotPotatoConfig) -> Result<Self> {
        let solver = RotationPeakSolver::new(model)?;
        Self::with_solver(solver, config)
    }

    /// Builds the scheduler around a prebuilt [`RotationPeakSolver`]
    /// (e.g. a cheap clone of a shared, cached handle), skipping the
    /// design-time eigendecomposition entirely.
    ///
    /// Sweep runners use this so N jobs on the same chip configuration
    /// pay for one factorization instead of N.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn with_solver(solver: RotationPeakSolver, config: HotPotatoConfig) -> Result<Self> {
        config.validate()?;
        Ok(HotPotato {
            tau_index: config.initial_tau_index,
            rotating: config.rotation_enabled,
            config,
            solver,
            rings: Vec::new(),
            last_rotation: 0.0,
            last_peak: 0.0,
            last_evaluation: f64::NEG_INFINITY,
            assignment_dirty: true,
            powers: BTreeMap::new(),
            evaluations: 0,
            solver_failures: 0,
            restored_slots: None,
            obs: Registry::new(),
        })
    }

    /// Current rotation interval τ, seconds.
    pub fn tau(&self) -> f64 {
        self.config.tau_levels[self.tau_index]
    }

    /// Whether rotations are currently active.
    pub fn is_rotating(&self) -> bool {
        self.rotating
    }

    /// The most recent Algorithm-1 peak estimate, °C.
    pub fn estimated_peak(&self) -> f64 {
        self.last_peak
    }

    /// Number of Algorithm-1 evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of Algorithm-1 evaluations that failed and degraded to a
    /// `T_peak = ∞` reading. A monotone counter: fallback wrappers detect
    /// fresh failures by differencing across scheduling hooks.
    pub fn solver_failures(&self) -> u64 {
        self.solver_failures
    }

    /// Rebuilds the internal ring occupancy from the engine's ground
    /// truth.
    ///
    /// Under injected migration faults (or after a fallback policy has
    /// been driving the chip), the scheduler's slot bookkeeping can
    /// drift from where threads actually run. This drops every ring
    /// assignment and power estimate and re-seats each live thread at
    /// the slot of the core it currently occupies, so the next
    /// [`Scheduler::schedule`] call starts from reality.
    pub fn resync_from_view(&mut self, view: &SimView<'_>) {
        if self.rings.is_empty() {
            self.rings = view
                .machine
                .rings()
                .iter()
                .map(|r| RingRotation::new(r.cores().to_vec()))
                .collect();
        }
        for ring in &mut self.rings {
            for s in 0..ring.capacity() {
                if let Some(t) = ring.occupant(s) {
                    ring.remove(t);
                }
            }
        }
        self.powers.clear();
        for t in view.threads {
            for ring in &mut self.rings {
                let Some(slot) = (0..ring.capacity()).find(|&s| ring.core_of_slot(s) == t.core)
                else {
                    continue;
                };
                if ring.occupant(slot).is_none() {
                    ring.occupy(slot, t.id);
                }
                break;
            }
        }
        self.assignment_dirty = true;
    }

    /// Access to the peak solver (for the overhead benchmarks).
    pub fn solver(&self) -> &RotationPeakSolver {
        &self.solver
    }

    /// Estimated power of a thread: the maximum of its *current-phase*
    /// work-point power (instant reaction to an idle→busy phase switch)
    /// and its windowed average (the paper's 10 ms history). Taking the
    /// max is conservative: a thread that just went hot is seen hot
    /// immediately, one that went idle cools the estimate only as the
    /// window drains.
    fn thread_power(view: &SimView<'_>, t: &hp_sim::ThreadView) -> f64 {
        let ladder = &view.machine.config().dvfs;
        let current = if t.work.is_idle() {
            0.0
        } else {
            match view
                .machine
                .cpi_stack_at_level(&t.work, t.core, ladder.max_level())
            {
                Ok(stack) => view
                    .machine
                    .core_power(&stack, ladder.max_level(), view.t_dtm),
                // A live thread's core is always in range; if the model
                // disagrees, trust the windowed average over crashing.
                Err(_) => t.avg_power,
            }
        };
        current.max(t.avg_power)
    }

    /// `T_peak` of the current assignment (Algorithm 1 over every occupied
    /// ring, cross-ring coupling averaged). Each probe's wall-clock time
    /// lands in the `alg1.probe` histogram — this is the quantity behind
    /// the paper's per-decision scheduling-overhead measurement.
    fn estimate_peak(
        &mut self,
        rings: &[RingRotation<ThreadId>],
        powers: &BTreeMap<ThreadId, f64>,
        tau: f64,
        rotating: bool,
    ) -> f64 {
        // xtask: allow(nondet) — wall-clock observability timing; the
        // histogram it feeds is excluded from golden outputs.
        let probe_start = Instant::now();
        let peak = self.estimate_peak_inner(rings, powers, tau, rotating);
        self.obs
            .observe_seconds("alg1.probe", probe_start.elapsed().as_secs_f64());
        peak
    }

    fn estimate_peak_inner(
        &mut self,
        rings: &[RingRotation<ThreadId>],
        powers: &BTreeMap<ThreadId, f64>,
        tau: f64,
        rotating: bool,
    ) -> f64 {
        let n = self.solver.model().core_count();
        let idle = self.config.idle_power;

        // Ring-averaged background power per core.
        let mut background = Vector::constant(n, idle);
        for ring in rings {
            let occ = ring.occupants();
            if occ == 0 {
                continue;
            }
            let sum: f64 = (0..ring.capacity())
                .filter_map(|s| ring.occupant(s))
                .map(|t| powers.get(&t).copied().unwrap_or(idle))
                .sum();
            let avg = (sum + (ring.capacity() - occ) as f64 * idle) / ring.capacity() as f64;
            for &c in ring.cores() {
                background[c.index()] = avg;
            }
        }

        if !rotating {
            // Pinned evaluation: single epoch with threads at their slots.
            let mut p = Vector::constant(n, idle);
            for ring in rings {
                for s in 0..ring.capacity() {
                    if let Some(t) = ring.occupant(s) {
                        p[ring.core_of_slot(s).index()] = powers.get(&t).copied().unwrap_or(idle);
                    }
                }
            }
            let Ok(seq) = EpochPowerSequence::new(tau.max(1e-6), vec![p]) else {
                self.solver_failures += 1;
                return f64::INFINITY; // malformed sequence reads as unsafe
            };
            self.evaluations += 1;
            return match self.solver.peak_celsius(&seq) {
                Ok(peak) => peak,
                Err(_) => {
                    self.solver_failures += 1;
                    f64::INFINITY
                }
            };
        }

        // One rotation sequence per occupied ring, evaluated as one batch
        // (a single pair of GEMMs instead of per-ring dot-product loops).
        let mut seqs = Vec::new();
        for ring in rings {
            if ring.occupants() == 0 {
                continue;
            }
            let delta = ring.capacity().max(1);
            let epochs: Vec<Vector> = (0..delta)
                .map(|e| {
                    let mut p = background.clone();
                    // This ring is resolved exactly: occupants shifted by e.
                    for s in 0..delta {
                        let target = (s + e) % delta;
                        let core = ring.core_of_slot(target).index();
                        p[core] = match ring.occupant(s) {
                            Some(t) => powers.get(&t).copied().unwrap_or(idle),
                            None => idle,
                        };
                    }
                    p
                })
                .collect();
            match EpochPowerSequence::new(tau, epochs) {
                Ok(seq) => seqs.push(seq),
                Err(_) => {
                    self.solver_failures += 1;
                    return f64::INFINITY; // malformed sequence reads as unsafe
                }
            }
        }
        if seqs.is_empty() {
            // Empty chip: idle steady state.
            let p = Vector::constant(n, idle);
            let Ok(seq) = EpochPowerSequence::new(tau.max(1e-6), vec![p]) else {
                self.solver_failures += 1;
                return f64::INFINITY; // malformed sequence reads as unsafe
            };
            self.evaluations += 1;
            return match self.solver.peak_celsius(&seq) {
                Ok(peak) => peak,
                Err(_) => {
                    self.solver_failures += 1;
                    f64::INFINITY
                }
            };
        }
        self.evaluations += seqs.len() as u64;
        match self.solver.peak_celsius_many(&seqs) {
            Ok(peaks) => peaks.into_iter().fold(f64::NEG_INFINITY, f64::max),
            Err(_) => {
                self.solver_failures += 1;
                f64::INFINITY
            }
        }
    }

    /// Picks the free slot of `ring` farthest from its occupants
    /// (maximal minimum cyclic distance).
    fn best_free_slot(ring: &RingRotation<ThreadId>) -> Option<usize> {
        let k = ring.capacity();
        let free = ring.free_slots();
        if free.is_empty() {
            return None;
        }
        if ring.occupants() == 0 {
            return free.first().copied();
        }
        free.into_iter().max_by_key(|&s| {
            (0..k)
                .filter(|&o| ring.occupant(o).is_some())
                .map(|o| {
                    let d = (s as isize - o as isize).unsigned_abs();
                    d.min(k - d)
                })
                .min()
                .unwrap_or(0)
        })
    }
}

/// Encodes an `f64` for a scheduler snapshot blob: finite values as JSON
/// numbers in shortest round-trip form, non-finite values as the strings
/// `"inf"` / `"-inf"` / `"nan"` (JSON has no literals for them).
fn snap_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"nan\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Decodes a float written by [`snap_f64`].
fn unsnap_f64(v: &hp_obs::json::Json, what: &str) -> std::result::Result<f64, String> {
    use hp_obs::json::Json;
    let parsed = match v {
        Json::Num(_) => v.as_f64(),
        Json::Str(s) => match s.as_str() {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        },
        _ => None,
    };
    parsed.ok_or_else(|| format!("hotpotato snapshot: bad {what}"))
}

/// Decodes a non-negative integer field of a scheduler snapshot blob.
fn unsnap_u64(v: &hp_obs::json::Json, what: &str) -> std::result::Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("hotpotato snapshot: bad {what}"))
}

/// Decodes a boolean field of a scheduler snapshot blob.
fn unsnap_bool(v: &hp_obs::json::Json, what: &str) -> std::result::Result<bool, String> {
    match v {
        hp_obs::json::Json::Bool(b) => Ok(*b),
        _ => Err(format!("hotpotato snapshot: bad {what}")),
    }
}

impl Scheduler for HotPotato {
    fn name(&self) -> &str {
        "hotpotato"
    }

    fn health(&self) -> SchedulerHealth {
        // An infinite peak estimate means Algorithm 1 could not evaluate
        // the current assignment — the policy is flying blind.
        if self.last_peak.is_infinite() {
            SchedulerHealth::Degraded
        } else {
            SchedulerHealth::Nominal
        }
    }

    fn observability(&self) -> Option<RunReport> {
        let mut report = self.obs.snapshot();
        report.push_counter("alg1.evaluations", self.evaluations);
        report.push_counter("alg1.solver_failures", self.solver_failures);
        let s = self.solver.stats();
        report.push_counter("alg1.batch_calls", s.batch_calls);
        report.push_counter("alg1.batched_candidates", s.batched_candidates);
        report.push_counter("alg1.decay_cache_hits", s.decay_cache_hits);
        report.push_counter("alg1.decay_cache_misses", s.decay_cache_misses);
        let n = self.solver.numerics();
        report.push_counter("numerics.fallback.activations", n.fallback_activations);
        report.push_counter("numerics.fallback.steps", n.fallback_steps);
        report.push_counter("numerics.guard.trips", n.guard_trips);
        report.push_counter("numerics.degraded", u64::from(self.solver.degraded()));
        report.push_counter("rotation.active", u64::from(self.rotating));
        report.push_gauge("rotation.tau_seconds", self.tau());
        report.push_gauge("alg1.estimated_peak_celsius", self.last_peak);
        report.push_meta("gemm_backend", Matrix::gemm_backend());
        Some(report)
    }

    // The snapshot captures every field that influences future decisions
    // or final counters: ring occupancy (as `[slot, job, thread]` triples
    // per ring, `null` when the lazy construction has not happened yet),
    // the τ ladder position, rotation phase, Algorithm-1 bookkeeping, the
    // per-thread power cache, and the solver's counters plus the τ values
    // whose decay chains it has cached (so a resumed run re-warms exactly
    // those and the hit/miss counters stay bit-identical). The probe
    // histograms in `obs` are wall-clock noise and deliberately excluded —
    // reports are compared with timings stripped.
    fn snapshot(&self) -> Option<String> {
        use std::fmt::Write as _;
        let mut s = String::from("{\"rings\":");
        if let Some(pending) = &self.restored_slots {
            // Restored occupancy not yet applied (no `schedule` call since
            // `restore`): re-emit it verbatim so a checkpoint taken in
            // that window still carries the seats.
            s.push('[');
            for (ri, seats) in pending.iter().enumerate() {
                if ri > 0 {
                    s.push(',');
                }
                s.push('[');
                for (si, (slot, t)) in seats.iter().enumerate() {
                    if si > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "[{},{},{}]", slot, t.job.0, t.index);
                }
                s.push(']');
            }
            s.push(']');
        } else if self.rings.is_empty() {
            s.push_str("null");
        } else {
            s.push('[');
            for (ri, ring) in self.rings.iter().enumerate() {
                if ri > 0 {
                    s.push(',');
                }
                s.push('[');
                let mut first = true;
                for slot in 0..ring.capacity() {
                    if let Some(t) = ring.occupant(slot) {
                        if !first {
                            s.push(',');
                        }
                        first = false;
                        let _ = write!(s, "[{},{},{}]", slot, t.job.0, t.index);
                    }
                }
                s.push(']');
            }
            s.push(']');
        }
        let _ = write!(s, ",\"tau_index\":{}", self.tau_index);
        let _ = write!(s, ",\"rotating\":{}", self.rotating);
        let _ = write!(s, ",\"last_rotation\":{}", snap_f64(self.last_rotation));
        let _ = write!(s, ",\"last_peak\":{}", snap_f64(self.last_peak));
        let _ = write!(s, ",\"last_evaluation\":{}", snap_f64(self.last_evaluation));
        let _ = write!(s, ",\"assignment_dirty\":{}", self.assignment_dirty);
        s.push_str(",\"powers\":[");
        for (i, (t, p)) in self.powers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{},{},{}]", t.job.0, t.index, snap_f64(*p));
        }
        s.push(']');
        let _ = write!(s, ",\"evaluations\":{}", self.evaluations);
        let _ = write!(s, ",\"solver_failures\":{}", self.solver_failures);
        let st = self.solver.stats();
        let _ = write!(
            s,
            ",\"alg1_stats\":[{},{},{},{}]",
            st.batch_calls, st.batched_candidates, st.decay_cache_hits, st.decay_cache_misses
        );
        let nu = self.solver.numerics();
        let _ = write!(
            s,
            ",\"numerics_stats\":[{},{},{}]",
            nu.fallback_activations, nu.fallback_steps, nu.guard_trips
        );
        s.push_str(",\"cached_taus\":[");
        for (i, tau) in self.solver.cached_taus().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", snap_f64(*tau));
        }
        s.push_str("]}");
        Some(s)
    }

    fn restore(&mut self, state: &str) -> std::result::Result<(), String> {
        use hp_obs::json::Json;
        let doc = hp_obs::json::parse(state).map_err(|e| format!("hotpotato snapshot: {e}"))?;
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| format!("hotpotato snapshot: missing `{name}`"))
        };

        // Ring occupancy: stash for the first `schedule` call — rings are
        // built lazily from the machine, which `restore` cannot see.
        self.restored_slots = match field("rings")? {
            Json::Null => None,
            Json::Arr(rings) => {
                let mut all = Vec::with_capacity(rings.len());
                for ring in rings {
                    let Json::Arr(entries) = ring else {
                        return Err("hotpotato snapshot: ring must be a list".into());
                    };
                    let mut seats = Vec::with_capacity(entries.len());
                    for e in entries {
                        let Json::Arr(t) = e else {
                            return Err("hotpotato snapshot: seat must be a triple".into());
                        };
                        let (Some(slot), Some(job), Some(index)) = (t.first(), t.get(1), t.get(2))
                        else {
                            return Err("hotpotato snapshot: seat must be a triple".into());
                        };
                        let slot = unsnap_u64(slot, "seat slot")? as usize;
                        let tid = ThreadId {
                            job: hp_sim::JobId(unsnap_u64(job, "seat job")? as usize),
                            index: unsnap_u64(index, "seat thread index")? as usize,
                        };
                        seats.push((slot, tid));
                    }
                    all.push(seats);
                }
                Some(all)
            }
            _ => return Err("hotpotato snapshot: `rings` must be null or a list".into()),
        };

        let tau_index = unsnap_u64(field("tau_index")?, "tau_index")? as usize;
        if tau_index >= self.config.tau_levels.len() {
            return Err(format!(
                "hotpotato snapshot: tau_index {tau_index} out of range for {} levels",
                self.config.tau_levels.len()
            ));
        }
        self.tau_index = tau_index;
        self.rotating = unsnap_bool(field("rotating")?, "rotating")?;
        self.last_rotation = unsnap_f64(field("last_rotation")?, "last_rotation")?;
        self.last_peak = unsnap_f64(field("last_peak")?, "last_peak")?;
        self.last_evaluation = unsnap_f64(field("last_evaluation")?, "last_evaluation")?;
        self.assignment_dirty = unsnap_bool(field("assignment_dirty")?, "assignment_dirty")?;

        let Json::Arr(powers) = field("powers")? else {
            return Err("hotpotato snapshot: `powers` must be a list".into());
        };
        self.powers.clear();
        for e in powers {
            let Json::Arr(t) = e else {
                return Err("hotpotato snapshot: power entry must be a triple".into());
            };
            let (Some(job), Some(index), Some(power)) = (t.first(), t.get(1), t.get(2)) else {
                return Err("hotpotato snapshot: power entry must be a triple".into());
            };
            let tid = ThreadId {
                job: hp_sim::JobId(unsnap_u64(job, "power job")? as usize),
                index: unsnap_u64(index, "power thread index")? as usize,
            };
            self.powers.insert(tid, unsnap_f64(power, "power value")?);
        }

        self.evaluations = unsnap_u64(field("evaluations")?, "evaluations")?;
        self.solver_failures = unsnap_u64(field("solver_failures")?, "solver_failures")?;

        let Json::Arr(stats) = field("alg1_stats")? else {
            return Err("hotpotato snapshot: `alg1_stats` must be a list".into());
        };
        let (Some(bc), Some(bs), Some(h), Some(m)) =
            (stats.first(), stats.get(1), stats.get(2), stats.get(3))
        else {
            return Err("hotpotato snapshot: `alg1_stats` must hold four counters".into());
        };
        let Json::Arr(taus) = field("cached_taus")? else {
            return Err("hotpotato snapshot: `cached_taus` must be a list".into());
        };
        // Re-warm exactly the decay chains the snapshotted solver had
        // cached, then overwrite the stats (discarding the warm-up
        // misses) so every subsequent lookup hits and the alg1.* counters
        // in the final report match an uninterrupted run bit-for-bit.
        self.solver.reset_stats();
        for tau in taus {
            self.solver.warm_decay_cache(unsnap_f64(tau, "cached tau")?);
        }
        self.solver.restore_stats(Alg1Stats {
            batch_calls: unsnap_u64(bc, "alg1 batch_calls")?,
            batched_candidates: unsnap_u64(bs, "alg1 batched_candidates")?,
            decay_cache_hits: unsnap_u64(h, "alg1 decay_cache_hits")?,
            decay_cache_misses: unsnap_u64(m, "alg1 decay_cache_misses")?,
        });
        // Numerics tallies: optional for snapshots taken before the
        // numerical-integrity layer existed (absent means all-zero).
        if let Some(Json::Arr(nu)) = doc.get("numerics_stats") {
            let (Some(a), Some(st), Some(g)) = (nu.first(), nu.get(1), nu.get(2)) else {
                return Err("hotpotato snapshot: `numerics_stats` must hold three counters".into());
            };
            self.solver.restore_numerics(hp_thermal::NumericsStats {
                fallback_activations: unsnap_u64(a, "numerics fallback_activations")?,
                fallback_steps: unsnap_u64(st, "numerics fallback_steps")?,
                guard_trips: unsnap_u64(g, "numerics guard_trips")?,
            });
        }
        Ok(())
    }

    fn schedule(&mut self, view: &SimView<'_>) -> Vec<Action> {
        // Lazy ring construction from the machine's AMD rings.
        if self.rings.is_empty() {
            self.rings = view
                .machine
                .rings()
                .iter()
                .map(|r| RingRotation::new(r.cores().to_vec()))
                .collect();
        }
        // Re-seat checkpoint-restored occupancy now that the rings exist.
        // The engine's spec-hash binding guarantees the machine (and so
        // the ring structure) matches the one that produced the snapshot.
        if let Some(pending) = self.restored_slots.take() {
            for (ring, slots) in self.rings.iter_mut().zip(pending) {
                for (slot, tid) in slots {
                    if slot < ring.capacity() && ring.occupant(slot).is_none() {
                        ring.occupy(slot, tid);
                    }
                }
            }
        }

        let mut actions = Vec::new();

        // --- Sync with the engine: drop departed threads. ---
        let live: BTreeMap<ThreadId, &hp_sim::ThreadView> =
            view.threads.iter().map(|t| (t.id, t)).collect();
        for ring in &mut self.rings {
            for s in 0..ring.capacity() {
                if let Some(t) = ring.occupant(s) {
                    if !live.contains_key(&t) {
                        ring.remove(t);
                    }
                }
            }
        }
        let departed: Vec<ThreadId> = self
            .powers
            .keys()
            .filter(|t| !live.contains_key(t))
            .copied()
            .collect();
        for t in departed {
            self.powers.remove(&t);
            self.assignment_dirty = true;
        }

        // --- Refresh power estimates. ---
        for t in view.threads {
            let p = Self::thread_power(view, t);
            let old = self.powers.insert(t.id, p);
            if old.is_none_or(|o| (o - p).abs() > 0.25) {
                self.assignment_dirty = true;
            }
        }

        // --- Placement of pending jobs (Algorithm 2, lines 1–14). ---
        let ring_count = self.rings.len();
        for job in view.pending {
            let est = {
                // Estimate new-thread power on a representative inner core.
                let work = job.benchmark.work_point();
                let ladder = &view.machine.config().dvfs;
                let core = self.rings.first().map_or(CoreId(0), |r| r.cores()[0]);
                match view
                    .machine
                    .cpi_stack_at_level(&work, core, ladder.max_level())
                {
                    Ok(stack) => view
                        .machine
                        .core_power(&stack, ladder.max_level(), view.t_dtm),
                    // Ring cores are always in range; a disagreeing model
                    // degrades to the idle estimate instead of crashing.
                    Err(_) => self.config.idle_power,
                }
            };
            // Skip jobs that cannot fit in the free slots at all.
            let free_total: usize = self.rings.iter().map(|r| r.free_slots().len()).sum();
            if free_total < job.threads {
                continue;
            }
            let mut placed: Vec<(usize, usize, CoreId)> = Vec::new(); // (ring, slot, core)
            let mut trial_powers = self.powers.clone();
            let mut tau_index = self.tau_index;
            for i in 0..job.threads {
                let tid = ThreadId {
                    job: job.job,
                    index: i,
                };
                // Walk rings inner → outer; remember the coolest option as
                // a best-effort fallback (a new thread is never starved —
                // the rotation and, ultimately, the hardware DTM cope).
                let mut fallback: Option<(usize, usize, f64)> = None;
                let mut chosen: Option<(usize, usize)> = None;
                for r in 0..ring_count {
                    let Some(slot) = Self::best_free_slot(&self.rings[r]) else {
                        continue;
                    };
                    self.rings[r].occupy(slot, tid);
                    trial_powers.insert(tid, est);
                    let rings_snapshot = self.rings.clone();
                    let peak = self.estimate_peak(
                        &rings_snapshot,
                        &trial_powers,
                        self.config.tau_levels[tau_index],
                        self.rotating && self.config.rotation_enabled,
                    );
                    if peak + self.config.delta_headroom < self.config.t_dtm {
                        chosen = Some((r, slot));
                        break;
                    }
                    self.rings[r].remove(tid);
                    trial_powers.remove(&tid);
                    if fallback.is_none_or(|(_, _, p)| peak < p) {
                        fallback = Some((r, slot, peak));
                    }
                }
                // Lines 12–14: no ring fits — accelerate the rotation and
                // retry the coolest ring until it fits or τ bottoms out.
                if chosen.is_none() && self.config.rotation_enabled {
                    if let Some((r, slot, _)) = fallback {
                        while tau_index > 0 && chosen.is_none() {
                            tau_index -= 1;
                            self.rotating = true;
                            self.rings[r].occupy(slot, tid);
                            trial_powers.insert(tid, est);
                            let rings_snapshot = self.rings.clone();
                            let peak = self.estimate_peak(
                                &rings_snapshot,
                                &trial_powers,
                                self.config.tau_levels[tau_index],
                                true,
                            );
                            if peak + self.config.delta_headroom < self.config.t_dtm {
                                chosen = Some((r, slot));
                            } else {
                                self.rings[r].remove(tid);
                                trial_powers.remove(&tid);
                            }
                        }
                    }
                }
                // Best effort: take the coolest slot found.
                let (r, slot) = chosen.unwrap_or_else(|| {
                    // xtask: allow(panic) — free_total ≥ job.threads was
                    // checked above, so some ring offered a slot.
                    let (r, slot, _) = fallback.expect("free_total checked above");
                    self.rings[r].occupy(slot, tid);
                    trial_powers.insert(tid, est);
                    (r, slot)
                });
                let core = self.rings[r].core_of_slot(slot);
                placed.push((r, slot, core));
            }
            debug_assert_eq!(placed.len(), job.threads);
            self.tau_index = tau_index;
            let cores: Vec<CoreId> = placed.iter().map(|&(_, _, c)| c).collect();
            self.powers.extend((0..job.threads).map(|i| {
                (
                    ThreadId {
                        job: job.job,
                        index: i,
                    },
                    est,
                )
            }));
            actions.push(Action::PlaceJob {
                job: job.job,
                cores,
            });
            self.assignment_dirty = true;
        }

        // --- Re-evaluate T_peak when needed. ---
        let due = view.time - self.last_evaluation >= self.config.reevaluate_period;
        if self.assignment_dirty || due || view.dtm_active {
            let rings_snapshot = self.rings.clone();
            let powers = self.powers.clone();
            self.last_peak =
                self.estimate_peak(&rings_snapshot, &powers, self.tau(), self.rotating);
            self.last_evaluation = view.time;
            self.assignment_dirty = false;
        }

        // --- Thermal pressure: evict hot threads outward, then speed up
        //     the rotation (lines 7–14). The loop engages when either the
        //     *predicted* or the *measured* headroom shrinks below Δ — the
        //     paper's "sudden increase ... in thermal headroom" adjustment
        //     — not only on violation.
        let measured_max = view.core_temps.max();
        let mut moves = 0usize;
        while self.last_peak.max(measured_max) > self.config.t_dtm - self.config.delta_headroom
            && moves < self.config.max_moves_per_call
        {
            // Cheapest knob first: if rotation is parked, restart it.
            if self.config.rotation_enabled && !self.rotating {
                self.rotating = true;
                let rings_snapshot = self.rings.clone();
                let powers = self.powers.clone();
                self.last_peak = self.estimate_peak(&rings_snapshot, &powers, self.tau(), true);
                self.last_evaluation = view.time;
                moves += 1;
                continue;
            }
            // Hottest = lowest CPI. Find the lowest-CPI thread that can move
            // to a higher-AMD ring with free capacity.
            let mut candidates: Vec<(f64, ThreadId, usize)> = Vec::new(); // (cpi, thread, ring)
            for (r, ring) in self.rings.iter().enumerate() {
                for s in 0..ring.capacity() {
                    if let Some(t) = ring.occupant(s) {
                        if let Some(tv) = live.get(&t) {
                            candidates.push((tv.last_cpi, t, r));
                        }
                    }
                }
            }
            candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut moved = false;
            for (_, tid, r) in candidates {
                let target = (r + 1..ring_count)
                    .find_map(|r2| Self::best_free_slot(&self.rings[r2]).map(|s| (r2, s)));
                let Some((r2, slot)) = target else { continue };
                let to = {
                    self.rings[r].remove(tid);
                    self.rings[r2].occupy(slot, tid);
                    self.rings[r2].core_of_slot(slot)
                };
                actions.push(Action::Migrate { thread: tid, to });
                moved = true;
                moves += 1;
                break;
            }
            if !moved {
                // No eviction possible: accelerate the rotation.
                if self.tau_index > 0 {
                    self.tau_index -= 1;
                } else {
                    break; // fastest rotation already; DTM is the backstop
                }
            }
            let rings_snapshot = self.rings.clone();
            let powers = self.powers.clone();
            self.last_peak =
                self.estimate_peak(&rings_snapshot, &powers, self.tau(), self.rotating);
            self.last_evaluation = view.time;
        }

        // --- Headroom: promote memory-bound threads inward, slow the
        //     rotation (lines 16–27). Triggered at twice the hysteresis so
        //     phase transitions (which overshoot the steady cycle) cannot
        //     ping-pong against the pressure loop above.
        while self.config.t_dtm - self.last_peak.max(measured_max)
            > 2.0 * self.config.delta_headroom
            && moves < self.config.max_moves_per_call
        {
            // Highest CPI first (most memory-bound benefits most).
            let mut candidates: Vec<(f64, ThreadId, usize)> = Vec::new();
            for (r, ring) in self.rings.iter().enumerate() {
                if r == 0 {
                    continue; // already innermost
                }
                for s in 0..ring.capacity() {
                    if let Some(t) = ring.occupant(s) {
                        if let Some(tv) = live.get(&t) {
                            candidates.push((tv.last_cpi, t, r));
                        }
                    }
                }
            }
            candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
            let mut improved = false;
            'promote: for (_, tid, r) in candidates {
                // The candidate was read out of ring r above; a vanished
                // slot means the bookkeeping changed under us — skip it.
                let Some(origin_slot) = self.rings[r].slot_of(tid) else {
                    continue;
                };
                for r2 in 0..r {
                    let Some(slot) = Self::best_free_slot(&self.rings[r2]) else {
                        continue;
                    };
                    // Tentative move; the origin slot lets the revert
                    // restore the exact engine-visible position.
                    self.rings[r].remove(tid);
                    self.rings[r2].occupy(slot, tid);
                    let rings_snapshot = self.rings.clone();
                    let powers = self.powers.clone();
                    let peak =
                        self.estimate_peak(&rings_snapshot, &powers, self.tau(), self.rotating);
                    if peak + self.config.delta_headroom < self.config.t_dtm {
                        let to = self.rings[r2].core_of_slot(slot);
                        actions.push(Action::Migrate { thread: tid, to });
                        self.last_peak = peak;
                        self.last_evaluation = view.time;
                        moves += 1;
                        improved = true;
                        break 'promote;
                    }
                    // Revert to the exact origin slot (a different slot
                    // would silently desynchronize the ring bookkeeping
                    // from the engine's core assignment).
                    self.rings[r2].remove(tid);
                    self.rings[r].occupy(origin_slot, tid);
                }
            }
            if !improved {
                // Slow the rotation (less overhead) while still safe.
                if self.rotating && self.tau_index + 1 < self.config.tau_levels.len() {
                    let rings_snapshot = self.rings.clone();
                    let powers = self.powers.clone();
                    let peak = self.estimate_peak(
                        &rings_snapshot,
                        &powers,
                        self.config.tau_levels[self.tau_index + 1],
                        true,
                    );
                    if peak + 2.0 * self.config.delta_headroom < self.config.t_dtm {
                        self.tau_index += 1;
                        self.last_peak = peak;
                        self.last_evaluation = view.time;
                        continue;
                    }
                }
                if self.rotating {
                    // Sustainable without rotation at all?
                    let rings_snapshot = self.rings.clone();
                    let powers = self.powers.clone();
                    let pinned = self.estimate_peak(&rings_snapshot, &powers, self.tau(), false);
                    if pinned + 2.0 * self.config.delta_headroom < self.config.t_dtm {
                        self.rotating = false;
                        self.last_peak = pinned;
                        self.last_evaluation = view.time;
                    }
                }
                break;
            }
        }

        // --- Synchronous rotation. ---
        if self.rotating
            && self.config.rotation_enabled
            && view.time - self.last_rotation >= self.tau() - 1e-12
        {
            for ring in &mut self.rings {
                if ring.occupants() == 0
                    || ring.occupants() == ring.capacity() && ring.capacity() == 1
                {
                    continue;
                }
                for (tid, _, to) in ring.advance() {
                    actions.push(Action::Migrate { thread: tid, to });
                }
            }
            self.last_rotation = view.time;
        }

        // A thread may have been both ring-moved and rotated in this call;
        // only its final destination goes to the engine (the ring
        // bookkeeping above already reflects it).
        dedupe_migrations(actions)
    }
}

/// Keeps only the last `Migrate` action per thread, preserving order
/// otherwise.
fn dedupe_migrations(actions: Vec<Action>) -> Vec<Action> {
    let mut last_target: BTreeMap<ThreadId, usize> = BTreeMap::new();
    for (i, a) in actions.iter().enumerate() {
        if let Action::Migrate { thread, .. } = a {
            last_target.insert(*thread, i);
        }
    }
    actions
        .into_iter()
        .enumerate()
        .filter(|(i, a)| match a {
            Action::Migrate { thread, .. } => last_target.get(thread) == Some(i),
            _ => true,
        })
        .map(|(_, a)| a)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_floorplan::GridFloorplan;
    use hp_manycore::{ArchConfig, Machine};
    use hp_sim::{SimConfig, Simulation};
    use hp_thermal::ThermalConfig;
    use hp_workload::{Benchmark, Job, JobId};

    fn machine_4x4() -> Machine {
        Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .unwrap()
    }

    fn model_4x4() -> RcThermalModel {
        RcThermalModel::new(
            &GridFloorplan::new(4, 4).unwrap(),
            &ThermalConfig::default(),
        )
        .unwrap()
    }

    fn blackscholes_job() -> Vec<Job> {
        vec![Job {
            id: JobId(0),
            benchmark: Benchmark::Blackscholes,
            spec: Benchmark::Blackscholes.spec(2),
            arrival: 0.0,
        }]
    }

    #[test]
    fn dedupe_keeps_last_migration_per_thread() {
        let t1 = ThreadId {
            job: hp_workload::JobId(0),
            index: 0,
        };
        let t2 = ThreadId {
            job: hp_workload::JobId(0),
            index: 1,
        };
        let actions = vec![
            Action::Migrate {
                thread: t1,
                to: CoreId(1),
            },
            Action::SetAllLevels {
                level: hp_power::DvfsLevel(3),
            },
            Action::Migrate {
                thread: t2,
                to: CoreId(2),
            },
            Action::Migrate {
                thread: t1,
                to: CoreId(5),
            },
        ];
        let out = dedupe_migrations(actions);
        assert_eq!(out.len(), 3);
        // Non-migration actions survive untouched.
        assert!(matches!(out[0], Action::SetAllLevels { .. }));
        // t1's final target wins; t2 untouched.
        let targets: Vec<(ThreadId, CoreId)> = out
            .iter()
            .filter_map(|a| match a {
                Action::Migrate { thread, to } => Some((*thread, *to)),
                _ => None,
            })
            .collect();
        assert!(targets.contains(&(t1, CoreId(5))));
        assert!(targets.contains(&(t2, CoreId(2))));
        assert!(!targets.contains(&(t1, CoreId(1))));
    }

    #[test]
    fn best_free_slot_maximizes_separation() {
        // Occupant at slot 0 of a 4-ring: the farthest free slot is 2.
        let mut ring = RingRotation::new(vec![CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
        ring.occupy(
            0,
            ThreadId {
                job: hp_workload::JobId(0),
                index: 0,
            },
        );
        assert_eq!(HotPotato::best_free_slot(&ring), Some(2));
        // Fill slot 2 as well: remaining slots 1 and 3 are equidistant.
        ring.occupy(
            2,
            ThreadId {
                job: hp_workload::JobId(0),
                index: 1,
            },
        );
        let s = HotPotato::best_free_slot(&ring).expect("slots remain");
        assert!(s == 1 || s == 3);
        ring.occupy(
            s,
            ThreadId {
                job: hp_workload::JobId(0),
                index: 2,
            },
        );
        let last = HotPotato::best_free_slot(&ring).expect("one slot left");
        ring.occupy(
            last,
            ThreadId {
                job: hp_workload::JobId(0),
                index: 3,
            },
        );
        assert_eq!(HotPotato::best_free_slot(&ring), None);
    }

    #[test]
    fn best_free_slot_on_empty_ring_is_first() {
        let ring: RingRotation<ThreadId> = RingRotation::new(vec![CoreId(0), CoreId(1), CoreId(2)]);
        assert_eq!(HotPotato::best_free_slot(&ring), Some(0));
    }

    #[test]
    fn config_validation() {
        let bad = HotPotatoConfig {
            tau_levels: vec![],
            ..HotPotatoConfig::default()
        };
        assert!(HotPotato::new(model_4x4(), bad).is_err());
        let bad = HotPotatoConfig {
            initial_tau_index: 99,
            ..HotPotatoConfig::default()
        };
        assert!(HotPotato::new(model_4x4(), bad).is_err());
    }

    #[test]
    fn runs_blackscholes_thermally_safe() {
        // The Fig. 2(c) scenario: HotPotato must complete the job without
        // ever crossing the threshold, by rotating on the centre ring.
        let mut sim = Simulation::new(
            machine_4x4(),
            ThermalConfig::default(),
            SimConfig {
                record_trace: true,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let mut hp = HotPotato::new(model_4x4(), HotPotatoConfig::default()).unwrap();
        let m = sim.run(blackscholes_job(), &mut hp).unwrap();
        assert_eq!(m.completed_jobs(), 1);
        assert!(
            m.migrations > 10,
            "rotation happened ({} migrations)",
            m.migrations
        );
        assert!(
            m.peak_temperature < 70.5,
            "thermally safe (peak {:.1})",
            m.peak_temperature
        );
        assert_eq!(m.dtm_intervals, 0, "no DTM events");
    }

    #[test]
    fn rotation_disabled_is_respected() {
        let mut sim = Simulation::new(
            machine_4x4(),
            ThermalConfig::default(),
            SimConfig {
                dtm_enabled: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let cfg = HotPotatoConfig {
            rotation_enabled: false,
            ..HotPotatoConfig::default()
        };
        let mut hp = HotPotato::new(model_4x4(), cfg).unwrap();
        let m = sim.run(blackscholes_job(), &mut hp).unwrap();
        assert_eq!(m.completed_jobs(), 1);
    }

    #[test]
    fn cool_job_eventually_stops_rotating() {
        // A memory-bound canneal instance is sustainable pinned; after the
        // headroom logic runs, rotation should stop.
        let mut sim = Simulation::new(
            machine_4x4(),
            ThermalConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let mut hp = HotPotato::new(model_4x4(), HotPotatoConfig::default()).unwrap();
        let jobs = vec![Job {
            id: JobId(0),
            benchmark: Benchmark::Canneal,
            spec: Benchmark::Canneal.spec(2),
            arrival: 0.0,
        }];
        let m = sim.run(jobs, &mut hp).unwrap();
        assert_eq!(m.completed_jobs(), 1);
        assert!(!hp.is_rotating(), "rotation stopped for a cool workload");
    }

    #[test]
    fn evaluations_counted() {
        let mut sim = Simulation::new(
            machine_4x4(),
            ThermalConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let mut hp = HotPotato::new(model_4x4(), HotPotatoConfig::default()).unwrap();
        sim.run(blackscholes_job(), &mut hp).unwrap();
        assert!(hp.evaluations() > 0);
    }

    #[test]
    fn observability_reports_probe_activity() {
        let mut sim = Simulation::new(
            machine_4x4(),
            ThermalConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let mut hp = HotPotato::new(model_4x4(), HotPotatoConfig::default()).unwrap();
        let metrics = sim.run(blackscholes_job(), &mut hp).unwrap();
        let report = hp.observability().expect("hotpotato reports");
        assert_eq!(report.counter("alg1.evaluations"), Some(hp.evaluations()));
        assert_eq!(report.counter("alg1.solver_failures"), Some(0));
        assert!(report.counter("alg1.batched_candidates").unwrap_or(0) > 0);
        assert!(report.histogram("alg1.probe").is_some_and(|h| h.count > 0));
        assert!(report.meta_value("gemm_backend").is_some());
        // The engine folded the same report in under the `sched.` prefix.
        let merged = &metrics.observability;
        assert_eq!(
            merged.counter("sched.alg1.evaluations"),
            Some(hp.evaluations())
        );
        assert!(merged.counter("engine.intervals").unwrap_or(0) > 0);
        assert!(merged
            .histogram("hook.schedule")
            .is_some_and(|h| h.count > 0));
        assert_eq!(
            merged.meta_value("gemm_backend"),
            Matrix::gemm_backend().into()
        );
    }

    #[test]
    fn snapshot_round_trips_through_restore() {
        // Drive the scheduler through a real run so every field
        // (rings, powers, tau ladder, solver stats) is non-trivial,
        // then check snapshot -> restore -> snapshot is a fixpoint.
        let mut sim = Simulation::new(
            machine_4x4(),
            ThermalConfig::default(),
            SimConfig::default(),
        )
        .unwrap();
        let mut hp = HotPotato::new(model_4x4(), HotPotatoConfig::default()).unwrap();
        sim.run(blackscholes_job(), &mut hp).unwrap();
        let blob = hp.snapshot().expect("hotpotato snapshots");

        let mut fresh = HotPotato::new(model_4x4(), HotPotatoConfig::default()).unwrap();
        fresh.restore(&blob).expect("restore accepts own snapshot");
        assert_eq!(
            fresh.snapshot().expect("snapshot after restore"),
            blob,
            "snapshot/restore must be a fixpoint"
        );
        assert_eq!(fresh.evaluations(), hp.evaluations());
        assert_eq!(fresh.solver_failures(), hp.solver_failures());
        assert_eq!(fresh.tau(), hp.tau());
        assert_eq!(fresh.is_rotating(), hp.is_rotating());
        let a = fresh.solver().stats();
        let b = hp.solver().stats();
        assert_eq!(a.decay_cache_hits, b.decay_cache_hits);
        assert_eq!(a.decay_cache_misses, b.decay_cache_misses);
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let mut hp = HotPotato::new(model_4x4(), HotPotatoConfig::default()).unwrap();
        assert!(hp.restore("not json").is_err());
        assert!(hp.restore("{}").is_err(), "missing fields rejected");
        // tau_index beyond the ladder must be refused, not clamped.
        let blob = hp.snapshot().expect("snapshots");
        let bad = blob.replace("\"tau_index\":1", "\"tau_index\":99");
        assert_ne!(bad, blob);
        assert!(hp.restore(&bad).is_err());
    }
}
