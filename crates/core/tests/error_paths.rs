//! Negative tests: malformed inputs must come back as typed errors, not
//! panics. The static-analysis gate (`cargo xtask check`) bans panic
//! sites in this crate's library code; these tests pin the behavioural
//! half of that contract for `RotationPeakSolver` and the sequence
//! constructor it consumes.

use hotpotato::{EpochPowerSequence, HotPotatoError, RotationPeakSolver};
use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_thermal::{RcThermalModel, ThermalConfig};

fn solver_4x4() -> RotationPeakSolver {
    let fp = GridFloorplan::new(4, 4).expect("non-empty grid");
    let model = RcThermalModel::new(&fp, &ThermalConfig::default()).expect("valid config");
    RotationPeakSolver::new(model).expect("decomposes")
}

fn seq(cores: usize) -> EpochPowerSequence {
    EpochPowerSequence::new(0.5e-3, vec![Vector::constant(cores, 1.0)]).expect("valid")
}

#[test]
fn empty_epoch_list_is_rejected() {
    let err = EpochPowerSequence::new(0.5e-3, vec![]).expect_err("no epochs");
    assert!(matches!(err, HotPotatoError::InvalidSequence(_)), "{err}");
}

#[test]
fn zero_length_power_vectors_are_rejected() {
    let err = EpochPowerSequence::new(0.5e-3, vec![Vector::zeros(0)]).expect_err("empty vectors");
    assert!(matches!(err, HotPotatoError::InvalidSequence(_)), "{err}");
}

#[test]
fn ragged_epochs_are_rejected() {
    let err = EpochPowerSequence::new(0.5e-3, vec![Vector::zeros(4), Vector::zeros(5)])
        .expect_err("ragged");
    assert!(matches!(err, HotPotatoError::InvalidSequence(_)), "{err}");
}

#[test]
fn non_finite_or_non_positive_tau_is_rejected() {
    for tau in [0.0, -1e-3, f64::NAN, f64::INFINITY] {
        let err = EpochPowerSequence::new(tau, vec![Vector::zeros(4)])
            .expect_err("bad tau must not construct");
        assert!(
            matches!(err, HotPotatoError::InvalidParameter { name: "tau", .. }),
            "tau {tau}: {err}"
        );
    }
}

#[test]
fn solver_rejects_core_count_mismatch() {
    let solver = solver_4x4();
    // 9 cores against a 16-core model: every evaluation entry point must
    // agree on the rejection.
    let wrong = seq(9);
    assert!(solver.peak(&wrong).is_err());
    assert!(solver.peak_celsius(&wrong).is_err());
    assert!(solver.peak_reference(&wrong).is_err());
    let err = solver
        .peak_celsius_many(std::slice::from_ref(&wrong))
        .expect_err("batch path rejects too");
    assert!(matches!(err, HotPotatoError::InvalidSequence(_)), "{err}");
}

#[test]
fn solver_batch_rejects_one_bad_sequence_among_good() {
    let solver = solver_4x4();
    let seqs = vec![seq(16), seq(9), seq(16)];
    assert!(solver.peak_celsius_many(&seqs).is_err());
}

#[test]
fn sampled_peak_rejects_zero_samples() {
    let solver = solver_4x4();
    let err = solver
        .peak_celsius_sampled(&seq(16), 0)
        .expect_err("zero samples");
    assert!(
        matches!(err, HotPotatoError::InvalidParameter { .. }),
        "{err}"
    );
}
