//! Differential tests: every batched Algorithm-1 fast path is pitted
//! against its naive serial reference implementation.
//!
//! Contract (DESIGN.md §6): paths that perform the *same* arithmetic in
//! the same order through the batched GEMM layout must agree **bit for
//! bit** (`to_bits` equality); paths that use a mathematically different
//! textbook formulation (the literal Eq.-10 spectral filters, brute-force
//! transient stepping) must agree within documented tolerances.

use hotpotato::{EpochPowerSequence, HotPotatoError, RotationPeakSolver};
use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_thermal::{RcThermalModel, ThermalConfig, TransientSolver};

fn solver(w: usize, h: usize, cfg: &ThermalConfig) -> RotationPeakSolver {
    let model = RcThermalModel::new(&GridFloorplan::new(w, h).expect("grid"), cfg).expect("model");
    RotationPeakSolver::new(model).expect("decomposes")
}

/// A mixed-power rotation with non-trivial structure on a `n`-core chip.
fn mixed_sequence(cores: usize, delta: usize, tau: f64) -> EpochPowerSequence {
    let epochs = (0..delta)
        .map(|e| Vector::from_fn(cores, |c| ((c * 7 + e * 3) % 11) as f64 * 0.65 + 0.3))
        .collect();
    EpochPowerSequence::new(tau, epochs).expect("valid sequence")
}

/// Non-uniform τ grid used across the edge-case tests (spans sub-epoch
/// sampling regimes from much faster to much slower than the junction
/// time constant).
const TAUS: [f64; 4] = [0.1e-3, 0.47e-3, 1.3e-3, 4e-3];

#[test]
fn sampled_batch_matches_serial_bit_for_bit() {
    let s = solver(4, 4, &ThermalConfig::default());
    for delta in [1usize, 3, 5] {
        for &tau in &TAUS {
            let seq = mixed_sequence(16, delta, tau);
            for samples in [1usize, 2, 7, 16] {
                let batched = s.peak_celsius_sampled(&seq, samples).unwrap();
                let serial = s.peak_celsius_sampled_serial(&seq, samples).unwrap();
                assert_eq!(
                    batched.to_bits(),
                    serial.to_bits(),
                    "delta {delta} tau {tau} samples {samples}: {batched} vs {serial}"
                );
            }
        }
    }
}

#[test]
fn report_batch_matches_serial_bit_for_bit() {
    let s = solver(4, 4, &ThermalConfig::default());
    for delta in [1usize, 2, 4, 6] {
        for &tau in &TAUS {
            let seq = mixed_sequence(16, delta, tau);
            let batched = s.peak(&seq).unwrap();
            let serial = s.peak_report_serial(&seq).unwrap();
            assert_eq!(
                batched.peak_celsius.to_bits(),
                serial.peak_celsius.to_bits()
            );
            assert_eq!(batched.critical_core, serial.critical_core);
            assert_eq!(batched.critical_epoch, serial.critical_epoch);
            assert_eq!(batched.boundary_temps.len(), serial.boundary_temps.len());
            for (e, (a, b)) in batched
                .boundary_temps
                .iter()
                .zip(&serial.boundary_temps)
                .enumerate()
            {
                for c in 0..16 {
                    assert_eq!(
                        a[c].to_bits(),
                        b[c].to_bits(),
                        "boundary {e} core {c}: {} vs {}",
                        a[c],
                        b[c]
                    );
                }
            }
        }
    }
}

#[test]
fn report_agrees_with_literal_eq10_reference() {
    // Cross-formulation check: the batched report against the O(δ²N²)
    // spectral-filter form of paper Eq. (10). Different math, documented
    // 1e-7 °C bound (see `slow_sink_fast_matches_reference` for why the
    // bound is not tighter).
    let s = solver(4, 4, &ThermalConfig::default());
    for delta in [1usize, 3, 5] {
        for &tau in &TAUS {
            let seq = mixed_sequence(16, delta, tau);
            let fast = s.peak(&seq).unwrap().peak_celsius;
            let reference = s.peak_reference(&seq).unwrap();
            assert!(
                (fast - reference).abs() < 1e-7,
                "delta {delta} tau {tau}: {fast} vs {reference}"
            );
        }
    }
}

#[test]
fn sampled_one_sample_is_boundary_form_bit_for_bit() {
    // `samples == 1` must reduce to `peak_celsius` exactly: same decay
    // data (τ/1 == τ), same recurrence, same junction products.
    let s = solver(4, 4, &ThermalConfig::default());
    for delta in [1usize, 2, 5] {
        for &tau in &TAUS {
            let seq = mixed_sequence(16, delta, tau);
            let boundary = s.peak_celsius(&seq).unwrap();
            let sampled = s.peak_celsius_sampled(&seq, 1).unwrap();
            assert_eq!(
                boundary.to_bits(),
                sampled.to_bits(),
                "delta {delta} tau {tau}: {boundary} vs {sampled}"
            );
        }
    }
}

#[test]
fn sampled_refinement_is_monotone() {
    // Doubling the sample count keeps every previous sample instant in
    // the set, so the within-epoch max can only grow (up to round-off).
    let s = solver(4, 4, &ThermalConfig::default());
    for delta in [2usize, 4] {
        for &tau in &TAUS {
            let seq = mixed_sequence(16, delta, tau);
            let mut last = f64::NEG_INFINITY;
            for samples in [1usize, 2, 4, 8, 16, 32] {
                let peak = s.peak_celsius_sampled(&seq, samples).unwrap();
                assert!(
                    peak >= last - 1e-9,
                    "delta {delta} tau {tau} samples {samples}: {peak} < {last}"
                );
                last = peak;
            }
        }
    }
}

#[test]
fn sampled_rejects_zero_samples_for_every_sequence() {
    let s = solver(4, 4, &ThermalConfig::default());
    for delta in [1usize, 3, 6] {
        for &tau in &TAUS {
            let seq = mixed_sequence(16, delta, tau);
            assert!(
                matches!(
                    s.peak_celsius_sampled(&seq, 0),
                    Err(HotPotatoError::InvalidParameter {
                        name: "samples",
                        ..
                    })
                ),
                "delta {delta} tau {tau}"
            );
        }
    }
}

#[test]
fn sampled_peak_matches_brute_force_transient() {
    // Textbook reference: iterate the exact transient stepper to the
    // steady cycle (reduced sink capacitance shortens the slowest time
    // constant), then sample densely within one period and compare with
    // the closed-form sampled peak. Different formulation — documented
    // 1e-3 °C agreement.
    let cfg = ThermalConfig {
        c_sink: 0.005,
        ..ThermalConfig::default()
    };
    let s = solver(4, 4, &cfg);
    let seq = mixed_sequence(16, 4, 0.5e-3);
    let samples = 8usize;
    let closed = s.peak_celsius_sampled(&seq, samples).unwrap();

    let transient = TransientSolver::new(s.model()).unwrap();
    let mut t = s.model().ambient_state();
    for k in 0..4000 {
        t = transient
            .step(s.model(), &t, seq.epoch(k % 4), seq.tau())
            .unwrap();
    }
    let sub = seq.tau() / samples as f64;
    let mut brute = f64::NEG_INFINITY;
    for e in 0..4 {
        for _ in 0..samples {
            t = transient.step(s.model(), &t, seq.epoch(e), sub).unwrap();
            brute = brute.max(s.model().core_temperatures(&t).max());
        }
    }
    assert!(
        (closed - brute).abs() < 1e-3,
        "closed {closed:.6} vs brute-force {brute:.6}"
    );
}

#[test]
fn slow_sink_sampled_batch_still_bit_identical() {
    // The near-degenerate eigenmode regime (m within ulps of 1) that
    // historically exposed weight-path drift: the batched and serial
    // sampled paths must stay bit-identical even here.
    let cfg = ThermalConfig {
        c_sink: 40000.0,
        g_sink_ambient: 0.02,
        ..ThermalConfig::default()
    };
    let s = solver(3, 3, &cfg);
    for delta in [1usize, 4] {
        for &tau in &TAUS {
            let seq = mixed_sequence(9, delta, tau);
            for samples in [1usize, 4, 16] {
                let batched = s.peak_celsius_sampled(&seq, samples).unwrap();
                let serial = s.peak_celsius_sampled_serial(&seq, samples).unwrap();
                assert_eq!(batched.to_bits(), serial.to_bits());
            }
        }
    }
}
