//! Pins the temperature-unit convention at the hp-thermal ↔ hotpotato
//! boundary: every temperature crossing it is an **absolute Celsius**
//! junction temperature (ambient defaults to 45 °C), never Kelvin and
//! never an ambient-relative rise.
//!
//! The convention matters because call sites subtract temperatures
//! directly — e.g. the CLI prints `pinned_peak − rotated_peak` as the
//! rotation saving — which is only a meaningful ΔT when both operands
//! share one absolute frame. A silent switch to Kelvin (+273.15) or to
//! rise-over-ambient (−45) would keep most *differences* correct while
//! breaking every threshold comparison against `t_dtm`, so these tests
//! check absolute levels, not just deltas.

use hotpotato::{EpochPowerSequence, RotationPeakSolver};
use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_thermal::{RcThermalModel, ThermalConfig};

fn model_4x4() -> RcThermalModel {
    let fp = GridFloorplan::new(4, 4).expect("non-empty grid");
    RcThermalModel::new(&fp, &ThermalConfig::default()).expect("valid default config")
}

/// The paper's ambient is 45 °C — an absolute Celsius level. If this
/// default ever moves to Kelvin (318.15) or to 0 (ambient-relative),
/// every consumer of `peak_celsius` breaks.
#[test]
fn default_ambient_is_absolute_celsius() {
    let cfg = ThermalConfig::default();
    assert_eq!(cfg.ambient, 45.0, "ambient default must stay 45 °C");
    assert!(
        cfg.ambient < 100.0,
        "an ambient above 100 suggests Kelvin crept in"
    );
}

/// Zero power ⇒ the chip sits exactly at ambient, in the same absolute
/// frame on both sides of the boundary (node state and core readout).
#[test]
fn unpowered_chip_reads_ambient_on_both_sides() {
    let model = model_4x4();
    let ambient = ThermalConfig::default().ambient;

    let steady = model.steady_state(&Vector::zeros(16)).expect("solves");
    let cores = model.core_temperatures(&steady);
    for c in 0..16 {
        assert!(
            (cores[c] - ambient).abs() < 1e-6,
            "unpowered core {c} reads {} instead of ambient {ambient} °C",
            cores[c]
        );
    }

    let warm = model.ambient_state();
    let warm_cores = model.core_temperatures(&warm);
    for c in 0..16 {
        assert!((warm_cores[c] - ambient).abs() < 1e-6);
    }
}

/// `RotationPeakSolver::peak_celsius` hands back the same absolute
/// frame hp-thermal uses: an idle chip peaks at ambient (45), a loaded
/// one lands between ambient and a plausible junction level — far from
/// the >300 a Kelvin reading or the ≈0..40 a rise-over-ambient reading
/// would produce.
#[test]
fn rotation_peak_is_absolute_celsius() {
    let solver = RotationPeakSolver::new(model_4x4()).expect("decomposes");
    let ambient = ThermalConfig::default().ambient;

    let idle = EpochPowerSequence::new(0.5e-3, vec![Vector::constant(16, 0.0)]).expect("valid");
    let idle_peak = solver.peak_celsius(&idle).expect("computes");
    assert!(
        (idle_peak - ambient).abs() < 1e-6,
        "idle peak {idle_peak} °C must equal ambient {ambient} °C"
    );

    let mut p = Vector::constant(16, 0.3);
    p[5] = 7.0;
    let loaded = EpochPowerSequence::new(0.5e-3, vec![p]).expect("valid");
    let loaded_peak = solver.peak_celsius(&loaded).expect("computes");
    assert!(
        loaded_peak > ambient && loaded_peak < 150.0,
        "loaded peak {loaded_peak} must be an absolute Celsius junction \
         temperature above ambient (Kelvin would be >300, rise would be <40)"
    );
}

/// The CLI's `rings peak` report subtracts a pinned peak from a rotated
/// peak (crates/cli/src/commands.rs); that ΔT is only meaningful when
/// `PeakReport::peak_celsius` and `peak_celsius()` agree on the frame.
#[test]
fn report_and_scalar_peak_share_one_frame() {
    let solver = RotationPeakSolver::new(model_4x4()).expect("decomposes");
    let ring = [5usize, 6, 10, 9];
    let epochs: Vec<Vector> = (0..4)
        .map(|e| {
            let mut p = Vector::constant(16, 0.3);
            p[ring[e]] = 7.0;
            p
        })
        .collect();
    let rotated = EpochPowerSequence::new(0.5e-3, epochs.clone()).expect("valid");
    let pinned = EpochPowerSequence::new(0.5e-3, vec![epochs[0].clone()]).expect("valid");

    let report = solver.peak(&rotated).expect("computes");
    let scalar = solver.peak_celsius(&rotated).expect("computes");
    assert!(
        (report.peak_celsius - scalar).abs() < 1e-9,
        "PeakReport ({}) and peak_celsius ({scalar}) disagree",
        report.peak_celsius
    );

    // Rotation spreads the hot thread over the ring, so the saving is a
    // positive ΔT expressed in the shared absolute-Celsius frame.
    let pinned_peak = solver.peak_celsius(&pinned).expect("computes");
    let saving = pinned_peak - report.peak_celsius;
    assert!(
        saving > 0.0 && saving < 50.0,
        "rotation saving {saving} °C out of plausible ΔT range"
    );
}
