//! Property-based tests for the rotation analytics (Algorithm 1).

use hotpotato::{EpochPowerSequence, RotationPeakSolver};
use hp_floorplan::GridFloorplan;
use hp_linalg::Vector;
use hp_thermal::{RcThermalModel, ThermalConfig};
use proptest::prelude::*;

fn solver(w: usize, h: usize) -> RotationPeakSolver {
    let model = RcThermalModel::new(
        &GridFloorplan::new(w, h).expect("grid"),
        &ThermalConfig::default(),
    )
    .expect("valid config");
    RotationPeakSolver::new(model).expect("decomposes")
}

/// Strategy: a rotation sequence on a 3x3 chip with delta epochs of
/// bounded random power.
fn sequences() -> impl Strategy<Value = EpochPowerSequence> {
    (
        1usize..=6,
        1e-4..4e-3f64,
        proptest::collection::vec(0.0..8.0f64, 9 * 6),
    )
        .prop_map(|(delta, tau, pool)| {
            let epochs: Vec<Vector> = (0..delta)
                .map(|e| Vector::from_fn(9, |c| pool[e * 9 + c]))
                .collect();
            EpochPowerSequence::new(tau, epochs).expect("valid sequence")
        })
}

/// The proptest shrink recorded in `properties.proptest-regressions`,
/// pinned as a deterministic test so the failure reproduces without
/// proptest and can never silently regress.
///
/// δ = 2 on the 3×3 chip with τ ≈ 2.35 ms and sparse power: the fast
/// recurrence (`cycle_start`, which derived λτ by round-tripping through
/// `m.ln()`) and the literal Eq.-(10) reference (which used the
/// catastrophically-cancelling `1 − m` for the forcing term) disagreed
/// beyond 1e-7 °C for the slow sink eigenmodes where `m ≈ 1`. Both paths
/// now share one weight helper computed directly from λτ.
#[test]
fn pinned_shrink_case_fast_matches_reference() {
    let seq = EpochPowerSequence::new(
        0.002348902441869006,
        vec![
            Vector::from(vec![
                0.0,
                0.0,
                0.0,
                0.0,
                2.802692956588382,
                0.0,
                1.5841799063809208,
                7.444248077919921,
                5.686753631658183,
            ]),
            Vector::from(vec![
                0.0,
                0.0,
                0.0,
                0.0,
                6.487672330932686,
                6.529296313785012,
                2.945134129515755,
                6.815960959554493,
                6.742365548649346,
            ]),
        ],
    )
    .expect("valid sequence");
    let s = solver(3, 3);
    let fast = s.peak_celsius(&seq).unwrap();
    let reference = s.peak_reference(&seq).unwrap();
    assert!(
        (fast - reference).abs() < 1e-7,
        "{fast} vs {reference} (diff {})",
        (fast - reference).abs()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn peak_matches_reference(seq in sequences()) {
        let s = solver(3, 3);
        let fast = s.peak_celsius(&seq).unwrap();
        let reference = s.peak_reference(&seq).unwrap();
        prop_assert!((fast - reference).abs() < 1e-7, "{fast} vs {reference}");
    }

    #[test]
    fn batch_matches_scalar(seqs in proptest::collection::vec(sequences(), 1..5)) {
        // The batched GEMM pipeline must agree with per-sequence scalar
        // evaluation for arbitrary mixed-τ/δ batches (the two paths are
        // designed to be bit-identical; 1e-9 is the acceptance bound).
        let s = solver(3, 3);
        let batch = s.peak_celsius_many(&seqs).unwrap();
        prop_assert_eq!(batch.len(), seqs.len());
        for (seq, &b) in seqs.iter().zip(&batch) {
            let scalar = s.peak_celsius(seq).unwrap();
            prop_assert!((scalar - b).abs() < 1e-9, "{scalar} vs {b}");
        }
    }

    #[test]
    fn peak_celsius_equals_full_report(seq in sequences()) {
        let s = solver(3, 3);
        let fast = s.peak_celsius(&seq).unwrap();
        let full = s.peak(&seq).unwrap();
        prop_assert!((fast - full.peak_celsius).abs() < 1e-9);
        // The report's critical epoch/core point at the max boundary temp.
        let at = full.boundary_temps[full.critical_epoch][full.critical_core.index()];
        prop_assert!((at - full.peak_celsius).abs() < 1e-9);
    }

    #[test]
    fn peak_invariant_under_shift(seq in sequences(), k in 0usize..6) {
        let s = solver(3, 3);
        let base = s.peak_celsius(&seq).unwrap();
        let shifted = s.peak_celsius(&seq.shifted(k)).unwrap();
        prop_assert!((base - shifted).abs() < 1e-7);
    }

    #[test]
    fn peak_at_least_average_steady(seq in sequences()) {
        // In continuous time, the period-average of T in the steady cycle
        // equals the steady state of the time-averaged power (integrate
        // A·T' + B·T = P over one period: T' integrates to zero), so the
        // continuous peak dominates it per node. Dense intra-epoch
        // sampling approximates the continuous peak; a small tolerance
        // absorbs the residual discretization.
        let s = solver(3, 3);
        let peak = s.peak_celsius_sampled(&seq, 16).unwrap();
        let avg = seq.average_power();
        let t = s.model().steady_state(&avg).unwrap();
        let avg_peak = s.model().core_temperatures(&t).max();
        prop_assert!(peak >= avg_peak - 0.05, "peak {peak} < averaged {avg_peak}");
    }

    #[test]
    fn peak_near_hottest_pinned_epoch(seq in sequences()) {
        // NOT a strict bound: the epoch-transition weights `M^k(I−M)` are
        // not entrywise positive (a cross-epoch thermal legacy can push a
        // node transiently past the hottest epoch's own steady state —
        // proptest found a 0.3 °C violation of the naive bound). The
        // engineering claim that holds: the rotation peak stays within a
        // small overshoot band of the hottest pinned epoch.
        let s = solver(3, 3);
        let peak = s.peak_celsius_sampled(&seq, 8).unwrap();
        let mut bound = f64::NEG_INFINITY;
        for e in 0..seq.delta() {
            let t = s.model().steady_state(seq.epoch(e)).unwrap();
            bound = bound.max(s.model().core_temperatures(&t).max());
        }
        prop_assert!(peak <= bound + 2.0, "peak {peak} > bound {bound} + 2");
    }

    #[test]
    fn peak_monotone_in_uniform_scaling(seq in sequences(), scale in 1.05..2.0f64) {
        let s = solver(3, 3);
        let lo = s.peak_celsius(&seq).unwrap();
        let scaled = EpochPowerSequence::new(
            seq.tau(),
            (0..seq.delta()).map(|e| seq.epoch(e).scaled(scale)).collect(),
        ).unwrap();
        let hi = s.peak_celsius(&scaled).unwrap();
        prop_assert!(hi >= lo - 1e-9);
    }

    #[test]
    fn faster_rotation_never_hotter(pool in proptest::collection::vec(0.0..8.0f64, 9 * 4)) {
        // With the SAME cyclic pattern, a 10x smaller tau gives a lower
        // (or marginally equal) peak — the smoothing property HotPotato
        // relies on. Evaluated with intra-epoch sampling so neither peak
        // is an artifact of boundary placement; a small tolerance covers
        // residual discretization.
        let s = solver(3, 3);
        let epochs: Vec<Vector> = (0..4)
            .map(|e| Vector::from_fn(9, |c| pool[e * 9 + c]))
            .collect();
        let slow = EpochPowerSequence::new(2e-3, epochs.clone()).unwrap();
        let fast = EpochPowerSequence::new(0.2e-3, epochs).unwrap();
        let p_slow = s.peak_celsius_sampled(&slow, 8).unwrap();
        let p_fast = s.peak_celsius_sampled(&fast, 8).unwrap();
        prop_assert!(p_fast <= p_slow + 0.1, "fast {p_fast} > slow {p_slow}");
    }
}
