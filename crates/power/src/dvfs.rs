use serde::{Deserialize, Serialize};

use crate::{PowerError, Result};

/// An index into a [`DvfsLadder`]: level `0` is the slowest operating point.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DvfsLevel(pub usize);

impl DvfsLevel {
    /// The raw level index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for DvfsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "level{}", self.0)
    }
}

/// The discrete DVFS operating points of a core.
///
/// Frequencies run from `f_min` to `f_max` in uniform steps (the paper
/// allows the PCMig baseline "fine-grained DVFS at a step size of 100 MHz"),
/// and the supply voltage scales linearly between `v_min` and `v_max` — the
/// usual first-order model for a 14 nm process.
///
/// # Example
///
/// ```
/// use hp_power::DvfsLadder;
///
/// # fn main() -> Result<(), hp_power::PowerError> {
/// let ladder = DvfsLadder::default();
/// assert_eq!(ladder.level_count(), 31); // 1.0, 1.1, ..., 4.0 GHz
/// let peak = ladder.max_level();
/// assert_eq!(ladder.frequency_ghz(peak), 4.0);
/// // The largest level whose frequency is <= 2.35 GHz is 2.3 GHz.
/// let l = ladder.level_for_frequency(2.35)?;
/// assert!((ladder.frequency_ghz(l) - 2.3).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsLadder {
    f_min_ghz: f64,
    f_max_ghz: f64,
    step_ghz: f64,
    v_min: f64,
    v_max: f64,
    levels: usize,
}

impl Default for DvfsLadder {
    /// The paper's configuration: 1.0–4.0 GHz in 100 MHz steps,
    /// 0.60–1.20 V.
    fn default() -> Self {
        // xtask: allow(panic) — constant parameters, pinned by the
        // `default_ladder_shape` unit test; cannot fail at runtime.
        DvfsLadder::new(1.0, 4.0, 0.1, 0.60, 1.20).expect("default ladder is valid")
    }
}

impl DvfsLadder {
    /// Creates a ladder from `f_min_ghz` to `f_max_ghz` (inclusive) in
    /// `step_ghz` increments, with voltage scaling linearly from `v_min`
    /// to `v_max`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when frequencies or voltages
    /// are non-positive, inverted, or the step does not fit the range.
    pub fn new(
        f_min_ghz: f64,
        f_max_ghz: f64,
        step_ghz: f64,
        v_min: f64,
        v_max: f64,
    ) -> Result<Self> {
        for (name, value) in [
            ("f_min_ghz", f_min_ghz),
            ("f_max_ghz", f_max_ghz),
            ("step_ghz", step_ghz),
            ("v_min", v_min),
            ("v_max", v_max),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(PowerError::InvalidParameter { name, value });
            }
        }
        if f_max_ghz < f_min_ghz {
            return Err(PowerError::InvalidParameter {
                name: "f_max_ghz",
                value: f_max_ghz,
            });
        }
        if v_max < v_min {
            return Err(PowerError::InvalidParameter {
                name: "v_max",
                value: v_max,
            });
        }
        let span = f_max_ghz - f_min_ghz;
        let steps = (span / step_ghz).round();
        if (steps * step_ghz - span).abs() > 1e-9 {
            return Err(PowerError::InvalidParameter {
                name: "step_ghz",
                value: step_ghz,
            });
        }
        Ok(DvfsLadder {
            f_min_ghz,
            f_max_ghz,
            step_ghz,
            v_min,
            v_max,
            levels: steps as usize + 1,
        })
    }

    /// Number of operating points.
    pub fn level_count(&self) -> usize {
        self.levels
    }

    /// The slowest operating point.
    pub fn min_level(&self) -> DvfsLevel {
        DvfsLevel(0)
    }

    /// The fastest operating point.
    pub fn max_level(&self) -> DvfsLevel {
        DvfsLevel(self.levels - 1)
    }

    /// Iterator over all levels, slowest first.
    pub fn levels(&self) -> impl Iterator<Item = DvfsLevel> {
        (0..self.levels).map(DvfsLevel)
    }

    /// Validates a level.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::LevelOutOfRange`] for out-of-range levels.
    pub fn check(&self, level: DvfsLevel) -> Result<()> {
        if level.0 >= self.levels {
            return Err(PowerError::LevelOutOfRange {
                level: level.0,
                levels: self.levels,
            });
        }
        Ok(())
    }

    /// Clock frequency of `level` in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range (use [`check`](Self::check) first
    /// for untrusted input).
    pub fn frequency_ghz(&self, level: DvfsLevel) -> f64 {
        assert!(level.0 < self.levels, "dvfs level out of range");
        (self.f_min_ghz + level.0 as f64 * self.step_ghz).min(self.f_max_ghz)
    }

    /// Supply voltage of `level` in volts (linear V–f scaling).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn voltage(&self, level: DvfsLevel) -> f64 {
        let f = self.frequency_ghz(level);
        if self.f_max_ghz == self.f_min_ghz {
            return self.v_max;
        }
        self.v_min
            + (self.v_max - self.v_min) * (f - self.f_min_ghz) / (self.f_max_ghz - self.f_min_ghz)
    }

    /// The fastest level whose frequency does not exceed `ghz`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::FrequencyOutOfRange`] if `ghz` is below the
    /// ladder minimum; frequencies above the maximum saturate at the top
    /// level.
    pub fn level_for_frequency(&self, ghz: f64) -> Result<DvfsLevel> {
        if !ghz.is_finite() || ghz < self.f_min_ghz - 1e-12 {
            return Err(PowerError::FrequencyOutOfRange {
                ghz,
                min: self.f_min_ghz,
                max: self.f_max_ghz,
            });
        }
        let idx = ((ghz - self.f_min_ghz) / self.step_ghz + 1e-9).floor() as usize;
        Ok(DvfsLevel(idx.min(self.levels - 1)))
    }

    /// One step down (towards lower frequency), saturating at the bottom.
    pub fn step_down(&self, level: DvfsLevel) -> DvfsLevel {
        DvfsLevel(level.0.saturating_sub(1))
    }

    /// One step up (towards higher frequency), saturating at the top.
    pub fn step_up(&self, level: DvfsLevel) -> DvfsLevel {
        DvfsLevel((level.0 + 1).min(self.levels - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_shape() {
        let l = DvfsLadder::default();
        assert_eq!(l.level_count(), 31);
        assert_eq!(l.frequency_ghz(l.min_level()), 1.0);
        assert_eq!(l.frequency_ghz(l.max_level()), 4.0);
        assert!((l.voltage(l.min_level()) - 0.60).abs() < 1e-12);
        assert!((l.voltage(l.max_level()) - 1.20).abs() < 1e-12);
    }

    #[test]
    fn voltage_monotone_in_level() {
        let l = DvfsLadder::default();
        let mut last = 0.0;
        for level in l.levels() {
            let v = l.voltage(level);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn level_for_frequency_rounds_down() {
        let l = DvfsLadder::default();
        let lv = l.level_for_frequency(2.35).unwrap();
        assert!((l.frequency_ghz(lv) - 2.3).abs() < 1e-9);
        let exact = l.level_for_frequency(2.3).unwrap();
        assert!((l.frequency_ghz(exact) - 2.3).abs() < 1e-9);
    }

    #[test]
    fn level_for_frequency_saturates_high() {
        let l = DvfsLadder::default();
        assert_eq!(l.level_for_frequency(9.0).unwrap(), l.max_level());
    }

    #[test]
    fn level_for_frequency_rejects_low() {
        let l = DvfsLadder::default();
        assert!(matches!(
            l.level_for_frequency(0.5),
            Err(PowerError::FrequencyOutOfRange { .. })
        ));
    }

    #[test]
    fn stepping_saturates() {
        let l = DvfsLadder::default();
        assert_eq!(l.step_down(DvfsLevel(0)), DvfsLevel(0));
        assert_eq!(l.step_up(l.max_level()), l.max_level());
        assert_eq!(l.step_up(DvfsLevel(3)), DvfsLevel(4));
        assert_eq!(l.step_down(DvfsLevel(3)), DvfsLevel(2));
    }

    #[test]
    fn rejects_bad_ranges() {
        assert!(DvfsLadder::new(4.0, 1.0, 0.1, 0.6, 1.2).is_err());
        assert!(DvfsLadder::new(1.0, 4.0, 0.1, 1.2, 0.6).is_err());
        assert!(DvfsLadder::new(1.0, 4.0, 0.0, 0.6, 1.2).is_err());
        assert!(DvfsLadder::new(1.0, 4.0, 0.7, 0.6, 1.2).is_err());
    }

    #[test]
    fn check_rejects_out_of_range() {
        let l = DvfsLadder::default();
        assert!(l.check(DvfsLevel(30)).is_ok());
        assert!(matches!(
            l.check(DvfsLevel(31)),
            Err(PowerError::LevelOutOfRange { .. })
        ));
    }

    #[test]
    fn single_level_ladder() {
        let l = DvfsLadder::new(2.0, 2.0, 0.1, 0.8, 0.8).unwrap();
        assert_eq!(l.level_count(), 1);
        assert_eq!(l.frequency_ghz(DvfsLevel(0)), 2.0);
        assert_eq!(l.voltage(DvfsLevel(0)), 0.8);
    }
}
