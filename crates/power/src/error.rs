use std::error::Error;
use std::fmt;

/// Errors produced by the DVFS and power models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A configuration parameter was non-physical.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Its value.
        value: f64,
    },
    /// A DVFS level index was out of range.
    LevelOutOfRange {
        /// The offending level index.
        level: usize,
        /// Number of levels in the ladder.
        levels: usize,
    },
    /// A requested frequency lies outside the ladder's range.
    FrequencyOutOfRange {
        /// The requested frequency in GHz.
        ghz: f64,
        /// Ladder minimum in GHz.
        min: f64,
        /// Ladder maximum in GHz.
        max: f64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter { name, value } => {
                write!(f, "power parameter {name} has non-physical value {value}")
            }
            PowerError::LevelOutOfRange { level, levels } => {
                write!(
                    f,
                    "dvfs level {level} out of range (ladder has {levels} levels)"
                )
            }
            PowerError::FrequencyOutOfRange { ghz, min, max } => {
                write!(
                    f,
                    "frequency {ghz} GHz outside ladder range [{min}, {max}] GHz"
                )
            }
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = PowerError::LevelOutOfRange {
            level: 31,
            levels: 31,
        };
        assert!(e.to_string().contains("31"));
    }
}
