use serde::{Deserialize, Serialize};

use crate::{PowerError, Result};

/// Per-core power model: switching power plus temperature-dependent leakage.
///
/// ```text
/// P(f, V, a, T) = C_eff · a · V² · f  +  P_leak0 · (V / V_nom) · (1 + k_T · (T − T_ref))
/// ```
///
/// `a ∈ [0, 1]` is the activity factor the performance model reports for an
/// interval (fraction of cycles the core switches at full effective
/// capacitance; memory-stalled cycles contribute much less). The defaults
/// are calibrated to the paper's operating points:
///
/// * fully active at 4 GHz / 1.2 V: ≈ 7 W,
/// * idle (clock-gated, `a = 0`): ≈ 0.3 W — the paper's stated idle power.
///
/// # Example
///
/// ```
/// use hp_power::PowerModel;
///
/// let m = PowerModel::default();
/// let hot = m.core_power(4.0, 1.2, 1.0, 45.0);
/// let throttled = m.core_power(2.0, 0.8, 1.0, 45.0);
/// assert!(throttled < hot / 2.0); // DVFS is super-linear in power
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Effective switched capacitance at full activity, in nF (10⁻⁹ F).
    pub c_eff_nf: f64,
    /// Leakage at nominal voltage and reference temperature, W.
    pub leak_w: f64,
    /// Nominal voltage for the leakage term, V.
    pub v_nom: f64,
    /// Leakage temperature coefficient, 1/K.
    pub leak_temp_coeff: f64,
    /// Reference temperature for leakage, °C.
    pub t_ref: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            // 1.33 nF: with the ~0.87 activity a compute-bound thread
            // reaches, peak-frequency power lands at ~7 W (Fig. 2 regime).
            c_eff_nf: 1.33,
            leak_w: 0.30,
            v_nom: 1.20,
            // +1.2 %/K: leakage grows ~40% from 45 C to 80 C.
            leak_temp_coeff: 0.012,
            t_ref: 45.0,
        }
    }
}

impl PowerModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] naming the first offender.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("c_eff_nf", self.c_eff_nf),
            ("leak_w", self.leak_w),
            ("v_nom", self.v_nom),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(PowerError::InvalidParameter { name, value });
            }
        }
        if !(self.leak_temp_coeff.is_finite() && self.leak_temp_coeff >= 0.0) {
            return Err(PowerError::InvalidParameter {
                name: "leak_temp_coeff",
                value: self.leak_temp_coeff,
            });
        }
        if !self.t_ref.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "t_ref",
                value: self.t_ref,
            });
        }
        Ok(())
    }

    /// Switching (dynamic) power at `freq_ghz`, `voltage` and activity `a`.
    ///
    /// Activity outside `[0, 1]` is clamped.
    pub fn dynamic_power(&self, freq_ghz: f64, voltage: f64, activity: f64) -> f64 {
        let a = activity.clamp(0.0, 1.0);
        self.c_eff_nf * 1e-9 * a * voltage * voltage * freq_ghz * 1e9
    }

    /// Leakage power at `voltage` and junction temperature `temp_c`.
    ///
    /// The temperature factor is clamped at zero so extreme sub-ambient
    /// temperatures cannot produce negative power.
    pub fn leakage_power(&self, voltage: f64, temp_c: f64) -> f64 {
        let temp_factor = (1.0 + self.leak_temp_coeff * (temp_c - self.t_ref)).max(0.0);
        self.leak_w * (voltage / self.v_nom) * temp_factor
    }

    /// Total core power: dynamic + leakage.
    pub fn core_power(&self, freq_ghz: f64, voltage: f64, activity: f64, temp_c: f64) -> f64 {
        self.dynamic_power(freq_ghz, voltage, activity) + self.leakage_power(voltage, temp_c)
    }

    /// Idle power: leakage at nominal voltage and reference temperature —
    /// the paper sets this to 0.3 W.
    pub fn idle_power(&self) -> f64 {
        self.leakage_power(self.v_nom, self.t_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DvfsLadder;

    #[test]
    fn peak_power_near_seven_watts() {
        let m = PowerModel::default();
        let p = m.core_power(4.0, 1.2, 1.0, 45.0);
        assert!(p > 6.5 && p < 8.5, "peak power {p:.2}");
    }

    #[test]
    fn idle_power_matches_paper() {
        let m = PowerModel::default();
        assert!((m.idle_power() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dvfs_power_is_superlinear() {
        // Halving frequency (with voltage scaling) should cut dynamic power
        // by much more than half.
        let m = PowerModel::default();
        let ladder = DvfsLadder::default();
        let hi = ladder.max_level();
        let lo = ladder.level_for_frequency(2.0).unwrap();
        let p_hi = m.dynamic_power(ladder.frequency_ghz(hi), ladder.voltage(hi), 1.0);
        let p_lo = m.dynamic_power(ladder.frequency_ghz(lo), ladder.voltage(lo), 1.0);
        assert!(p_lo < 0.4 * p_hi, "p_lo {p_lo:.2} vs p_hi {p_hi:.2}");
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let m = PowerModel::default();
        let cold = m.leakage_power(1.2, 45.0);
        let hot = m.leakage_power(1.2, 80.0);
        assert!(hot > cold * 1.3 && hot < cold * 1.6);
    }

    #[test]
    fn leakage_never_negative() {
        let m = PowerModel::default();
        assert!(m.leakage_power(1.2, -500.0) >= 0.0);
    }

    #[test]
    fn activity_clamped() {
        let m = PowerModel::default();
        assert_eq!(
            m.dynamic_power(4.0, 1.2, 2.0),
            m.dynamic_power(4.0, 1.2, 1.0)
        );
        assert_eq!(m.dynamic_power(4.0, 1.2, -1.0), 0.0);
    }

    #[test]
    fn power_monotone_in_activity() {
        let m = PowerModel::default();
        let mut last = 0.0;
        for a in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = m.core_power(4.0, 1.2, a, 45.0);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn validate_rejects_bad() {
        let m = PowerModel {
            c_eff_nf: -1.0,
            ..PowerModel::default()
        };
        assert!(m.validate().is_err());
        let m = PowerModel {
            leak_temp_coeff: f64::NAN,
            ..PowerModel::default()
        };
        assert!(m.validate().is_err());
        assert!(PowerModel::default().validate().is_ok());
    }
}
