//! DVFS and power models for the simulated S-NUCA many-core.
//!
//! The paper's baseline schedulers (PCGov/PCMig) use per-core DVFS at a
//! 100 MHz step size as their thermal knob; HotPotato runs every core at
//! peak frequency and relies on thread rotation instead. This crate models
//! the knob itself:
//!
//! * [`DvfsLadder`] — the discrete frequency levels (1.0–4.0 GHz by
//!   default, 100 MHz steps) and the V–f operating points.
//! * [`PowerModel`] — per-core power as
//!   `P = C_eff · activity · V² · f  +  P_leak(V, T)`, with
//!   temperature-dependent leakage, calibrated so a fully active core at
//!   4 GHz draws ~7 W and an idle core ~0.3 W (paper §VI).
//!
//! # Example
//!
//! ```
//! use hp_power::{DvfsLadder, PowerModel};
//!
//! # fn main() -> Result<(), hp_power::PowerError> {
//! let ladder = DvfsLadder::default();
//! let model = PowerModel::default();
//! let peak = ladder.max_level();
//! let busy = model.core_power(ladder.frequency_ghz(peak), ladder.voltage(peak), 1.0, 45.0);
//! let idle = model.idle_power();
//! assert!(busy > 6.0 && busy < 8.0);
//! assert!((idle - 0.3).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

mod dvfs;
mod error;
mod model;

pub use dvfs::{DvfsLadder, DvfsLevel};
pub use error::PowerError;
pub use model::PowerModel;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PowerError>;
