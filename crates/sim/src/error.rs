use std::error::Error;
use std::fmt;

use hp_floorplan::{CoreId, FloorplanError};
use hp_manycore::ManycoreError;
use hp_thermal::ThermalError;
use hp_workload::JobId;

use crate::job::ThreadId;
use crate::metrics::Metrics;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was non-physical.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Its value.
        value: f64,
    },
    /// A scheduler action referenced an unknown job.
    UnknownJob(JobId),
    /// A scheduler action referenced an unknown or inactive thread.
    UnknownThread(ThreadId),
    /// A placement or migration targeted a core that ends up multiply
    /// occupied.
    CoreConflict {
        /// The contested core.
        core: CoreId,
    },
    /// A placement supplied the wrong number of cores for a job.
    PlacementArity {
        /// The job being placed.
        job: JobId,
        /// Threads the job has.
        threads: usize,
        /// Cores the scheduler supplied.
        cores: usize,
    },
    /// The simulation exceeded its configured time horizon with jobs
    /// still unfinished.
    HorizonExceeded {
        /// The horizon in seconds.
        horizon: f64,
        /// Jobs still incomplete.
        unfinished: usize,
    },
    /// The supervised run consumed its deterministic interval budget
    /// ([`RunOptions::max_intervals`](crate::RunOptions)) with jobs
    /// still unfinished — the watchdog verdict for a stuck or runaway
    /// job. Raised inside [`SimError::Aborted`] so partials survive.
    IntervalBudgetExhausted {
        /// The budget, in simulation intervals.
        budget: u64,
    },
    /// The supervised run crossed its wall-clock deadline
    /// ([`RunOptions::deadline`](crate::RunOptions)) — the soft-timeout
    /// watchdog verdict. Raised inside [`SimError::Aborted`] so
    /// partials survive.
    DeadlineExceeded,
    /// A checkpoint document failed to load, verify, or match this run
    /// (see [`CheckpointError`](crate::CheckpointError) for the typed
    /// causes: parse, digest, version, spec-hash, semantic rebind).
    Checkpoint(crate::checkpoint::CheckpointError),
    /// A run ended mid-flight but the work done up to that point was
    /// recovered: `partial` holds the metrics (and the engine keeps the
    /// trace) accumulated before `cause` stopped the run. Raised for
    /// [`SimError::HorizonExceeded`] and any other mid-run failure.
    Aborted {
        /// Simulated time at which the run stopped, s.
        at: f64,
        /// The underlying failure (never itself `Aborted`).
        cause: Box<SimError>,
        /// Everything measured before the abort.
        partial: Box<Metrics>,
    },
    /// An underlying thermal-model operation failed.
    Thermal(ThermalError),
    /// An underlying machine-model operation failed.
    Manycore(ManycoreError),
    /// An underlying floorplan operation failed.
    Floorplan(FloorplanError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "simulation parameter {name} has non-physical value {value}"
                )
            }
            SimError::UnknownJob(id) => write!(f, "scheduler referenced unknown {id}"),
            SimError::UnknownThread(id) => write!(f, "scheduler referenced unknown {id}"),
            SimError::CoreConflict { core } => {
                write!(f, "scheduler action leaves {core} multiply occupied")
            }
            SimError::PlacementArity {
                job,
                threads,
                cores,
            } => write!(
                f,
                "placement for {job} supplied {cores} cores for {threads} threads"
            ),
            SimError::HorizonExceeded {
                horizon,
                unfinished,
            } => write!(
                f,
                "simulation horizon of {horizon} s exceeded with {unfinished} unfinished jobs"
            ),
            SimError::IntervalBudgetExhausted { budget } => {
                write!(
                    f,
                    "supervised run consumed its interval budget of {budget} intervals"
                )
            }
            SimError::DeadlineExceeded => {
                write!(f, "supervised run crossed its wall-clock deadline")
            }
            SimError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            SimError::Aborted { at, cause, .. } => {
                write!(
                    f,
                    "simulation aborted at t={at} s: {cause} (partial metrics retained)"
                )
            }
            SimError::Thermal(e) => write!(f, "thermal model failure: {e}"),
            SimError::Manycore(e) => write!(f, "machine model failure: {e}"),
            SimError::Floorplan(e) => write!(f, "floorplan failure: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Aborted { cause, .. } => Some(cause.as_ref()),
            SimError::Thermal(e) => Some(e),
            SimError::Manycore(e) => Some(e),
            SimError::Floorplan(e) => Some(e),
            SimError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl SimError {
    /// The metrics recovered from an aborted run, if this error carries
    /// any — the partial-result path for CLI and experiment reporting.
    pub fn partial_metrics(&self) -> Option<&Metrics> {
        match self {
            SimError::Aborted { partial, .. } => Some(partial),
            _ => None,
        }
    }
}

impl From<ThermalError> for SimError {
    fn from(e: ThermalError) -> Self {
        SimError::Thermal(e)
    }
}

impl From<ManycoreError> for SimError {
    fn from(e: ManycoreError) -> Self {
        SimError::Manycore(e)
    }
}

impl From<FloorplanError> for SimError {
    fn from(e: FloorplanError) -> Self {
        SimError::Floorplan(e)
    }
}

impl From<crate::checkpoint::CheckpointError> for SimError {
    fn from(e: crate::checkpoint::CheckpointError) -> Self {
        SimError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let samples: Vec<SimError> = vec![
            SimError::UnknownJob(JobId(3)),
            SimError::CoreConflict { core: CoreId(5) },
            SimError::HorizonExceeded {
                horizon: 1.0,
                unfinished: 2,
            },
            SimError::Aborted {
                at: 0.5,
                cause: Box::new(SimError::HorizonExceeded {
                    horizon: 1.0,
                    unfinished: 2,
                }),
                partial: Box::new(Metrics::default()),
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn aborted_exposes_partial_and_source() {
        let e = SimError::Aborted {
            at: 2.0,
            cause: Box::new(SimError::UnknownJob(JobId(1))),
            partial: Box::new(Metrics {
                simulated_time: 2.0,
                ..Metrics::default()
            }),
        };
        assert_eq!(e.partial_metrics().map(|m| m.simulated_time), Some(2.0));
        assert!(e.source().is_some());
        assert_eq!(SimError::UnknownJob(JobId(1)).partial_metrics(), None);
    }
}
