use std::error::Error;
use std::fmt;

use hp_floorplan::{CoreId, FloorplanError};
use hp_manycore::ManycoreError;
use hp_thermal::ThermalError;
use hp_workload::JobId;

use crate::job::ThreadId;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was non-physical.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Its value.
        value: f64,
    },
    /// A scheduler action referenced an unknown job.
    UnknownJob(JobId),
    /// A scheduler action referenced an unknown or inactive thread.
    UnknownThread(ThreadId),
    /// A placement or migration targeted a core that ends up multiply
    /// occupied.
    CoreConflict {
        /// The contested core.
        core: CoreId,
    },
    /// A placement supplied the wrong number of cores for a job.
    PlacementArity {
        /// The job being placed.
        job: JobId,
        /// Threads the job has.
        threads: usize,
        /// Cores the scheduler supplied.
        cores: usize,
    },
    /// The simulation exceeded its configured time horizon with jobs
    /// still unfinished.
    HorizonExceeded {
        /// The horizon in seconds.
        horizon: f64,
        /// Jobs still incomplete.
        unfinished: usize,
    },
    /// An underlying thermal-model operation failed.
    Thermal(ThermalError),
    /// An underlying machine-model operation failed.
    Manycore(ManycoreError),
    /// An underlying floorplan operation failed.
    Floorplan(FloorplanError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "simulation parameter {name} has non-physical value {value}"
                )
            }
            SimError::UnknownJob(id) => write!(f, "scheduler referenced unknown {id}"),
            SimError::UnknownThread(id) => write!(f, "scheduler referenced unknown {id}"),
            SimError::CoreConflict { core } => {
                write!(f, "scheduler action leaves {core} multiply occupied")
            }
            SimError::PlacementArity {
                job,
                threads,
                cores,
            } => write!(
                f,
                "placement for {job} supplied {cores} cores for {threads} threads"
            ),
            SimError::HorizonExceeded {
                horizon,
                unfinished,
            } => write!(
                f,
                "simulation horizon of {horizon} s exceeded with {unfinished} unfinished jobs"
            ),
            SimError::Thermal(e) => write!(f, "thermal model failure: {e}"),
            SimError::Manycore(e) => write!(f, "machine model failure: {e}"),
            SimError::Floorplan(e) => write!(f, "floorplan failure: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Thermal(e) => Some(e),
            SimError::Manycore(e) => Some(e),
            SimError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for SimError {
    fn from(e: ThermalError) -> Self {
        SimError::Thermal(e)
    }
}

impl From<ManycoreError> for SimError {
    fn from(e: ManycoreError) -> Self {
        SimError::Manycore(e)
    }
}

impl From<FloorplanError> for SimError {
    fn from(e: FloorplanError) -> Self {
        SimError::Floorplan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let samples: Vec<SimError> = vec![
            SimError::UnknownJob(JobId(3)),
            SimError::CoreConflict { core: CoreId(5) },
            SimError::HorizonExceeded {
                horizon: 1.0,
                unfinished: 2,
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
