use hp_floorplan::CoreId;
use hp_linalg::Vector;
use hp_manycore::{Machine, WorkPoint};
use hp_power::DvfsLevel;
use hp_workload::{Benchmark, JobId};

use crate::job::ThreadId;

/// A scheduler decision, applied by the engine at the end of the
/// scheduling hook.
///
/// All actions in one batch are applied atomically: a batch of `Migrate`
/// actions whose sources and targets form a permutation (a synchronous
/// rotation) is valid even though each target is momentarily occupied.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Start a pending job, thread `i` on `cores[i]`.
    PlaceJob {
        /// The pending job to start.
        job: JobId,
        /// One core per thread, in thread order.
        cores: Vec<CoreId>,
    },
    /// Move a running thread to another core (pays the migration cost).
    Migrate {
        /// The thread to move.
        thread: ThreadId,
        /// Destination core.
        to: CoreId,
    },
    /// Set one core's DVFS level.
    SetLevel {
        /// The core to adjust.
        core: CoreId,
        /// The new operating point.
        level: DvfsLevel,
    },
    /// Set every core's DVFS level.
    SetAllLevels {
        /// The new operating point.
        level: DvfsLevel,
    },
}

/// What the scheduler sees about one running thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadView {
    /// The thread.
    pub id: ThreadId,
    /// The benchmark it belongs to.
    pub benchmark: Benchmark,
    /// Where it currently runs.
    pub core: CoreId,
    /// Its current-phase work point (idle while barrier-waiting).
    pub work: WorkPoint,
    /// CPI observed in the last interval (∞ before the first interval).
    pub last_cpi: f64,
    /// Average power over the configured history window, W.
    pub avg_power: f64,
}

/// What the scheduler sees about one job waiting in the admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJobView {
    /// The job.
    pub job: JobId,
    /// Its benchmark.
    pub benchmark: Benchmark,
    /// Threads it needs (one core each).
    pub threads: usize,
    /// When it arrived, s.
    pub arrival: f64,
}

/// The engine state exposed to a scheduler at each scheduling period.
#[derive(Debug)]
pub struct SimView<'a> {
    /// Current simulated time, s.
    pub time: f64,
    /// The machine (floorplan, rings, CPI model, DVFS ladder).
    pub machine: &'a Machine,
    /// Junction temperature per core, °C.
    pub core_temps: &'a Vector,
    /// Current DVFS level per core.
    pub levels: &'a [DvfsLevel],
    /// Which thread occupies each core (`None` = free).
    pub occupancy: &'a [Option<ThreadId>],
    /// All running threads.
    pub threads: &'a [ThreadView],
    /// Jobs waiting for admission, in arrival order.
    pub pending: &'a [PendingJobView],
    /// DTM threshold, °C.
    pub t_dtm: f64,
    /// Whether the hardware DTM throttled the chip during the last interval.
    pub dtm_active: bool,
    /// Trust in each entry of `core_temps`, in `[0, 1]`. All `1.0`
    /// without fault injection; under faults, `core_temps` is the
    /// conditioned sensor view and this reports how much of it is fresh
    /// measurement versus held or spatially reconstructed values.
    pub sensor_confidence: &'a [f64],
}

impl SimView<'_> {
    /// Convenience: indices of all free cores.
    pub fn free_cores(&self) -> Vec<CoreId> {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(i, _)| CoreId(i))
            .collect()
    }

    /// The least-trusted core's sensor confidence (`1.0` on an empty
    /// confidence slice, i.e. without fault injection).
    pub fn min_sensor_confidence(&self) -> f64 {
        self.sensor_confidence.iter().copied().fold(1.0, f64::min)
    }
}

/// Self-reported condition of a scheduling policy, polled by the engine
/// after every scheduling hook and folded into
/// [`Metrics`](crate::Metrics) (`robustness.fallback_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerHealth {
    /// Running its primary policy.
    #[default]
    Nominal,
    /// Running a fallback policy (e.g. the peak solver failed or sensor
    /// confidence fell below the policy's floor).
    Degraded,
}

/// A scheduling policy plugged into the [`Simulation`](crate::Simulation)
/// engine — the equivalent of a HotSniper scheduler plugin.
///
/// The engine calls [`schedule`](Scheduler::schedule) once per scheduling
/// period; the returned actions are validated and applied atomically.
/// Invalid actions abort the simulation with an error (schedulers are
/// trusted components; failing fast surfaces policy bugs).
pub trait Scheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &str;

    /// Inspect the state and decide placements, migrations and DVFS
    /// settings for the next period.
    fn schedule(&mut self, view: &SimView<'_>) -> Vec<Action>;

    /// Whether the policy is currently running in a degraded mode.
    ///
    /// Polled by the engine right after [`schedule`](Scheduler::schedule);
    /// the default is permanently [`SchedulerHealth::Nominal`], which
    /// keeps ordinary single-policy schedulers oblivious to the
    /// degradation machinery.
    fn health(&self) -> SchedulerHealth {
        SchedulerHealth::Nominal
    }

    /// The policy's own observability snapshot (solver counters, probe
    /// timings, backend metadata), if it keeps one.
    ///
    /// Polled by the engine once at the end of a run and merged into
    /// [`Metrics::observability`](crate::Metrics) under the `sched.`
    /// namespace. The default `None` keeps plain schedulers oblivious to
    /// the observability machinery. Counters and gauges in the returned
    /// report must be seed-deterministic; wall-clock histograms need not
    /// be (DESIGN.md §10).
    fn observability(&self) -> Option<hp_obs::RunReport> {
        None
    }

    /// A serialised snapshot of the policy's mutable internal state, for
    /// engine checkpoints (DESIGN.md §13).
    ///
    /// Called at every checkpoint boundary. The returned string is
    /// opaque to the engine (stored verbatim inside the checkpoint and
    /// handed back to [`restore`](Scheduler::restore) on resume); the
    /// contract is that `snapshot` → fresh instance → `restore` leaves
    /// the policy bit-identical in its future decisions. A policy whose
    /// behaviour is a pure function of the [`SimView`] may keep the
    /// default `None` — the engine then calls `restore` never and the
    /// run stays resumable.
    fn snapshot(&self) -> Option<String> {
        None
    }

    /// Restores the state captured by [`snapshot`](Scheduler::snapshot)
    /// into a freshly constructed instance of the same policy.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when `state` cannot be applied.
    /// The default rejects every blob: a policy that emits snapshots
    /// must implement the matching restore, and handing a stateful blob
    /// to a stateless policy is a configuration error, not a silent
    /// no-op.
    fn restore(&mut self, _state: &str) -> std::result::Result<(), String> {
        Err(format!(
            "scheduler {} does not support snapshot/restore",
            self.name()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_cores_reports_gaps() {
        use hp_manycore::{ArchConfig, Machine};
        let machine = Machine::new(ArchConfig {
            grid_width: 2,
            grid_height: 1,
            ..ArchConfig::default()
        })
        .unwrap();
        let temps = Vector::zeros(2);
        let occupancy = vec![
            Some(ThreadId {
                job: JobId(0),
                index: 0,
            }),
            None,
        ];
        let levels = vec![DvfsLevel(0); 2];
        let view = SimView {
            time: 0.0,
            machine: &machine,
            core_temps: &temps,
            levels: &levels,
            occupancy: &occupancy,
            threads: &[],
            pending: &[],
            t_dtm: 70.0,
            dtm_active: false,
            sensor_confidence: &[1.0, 0.4],
        };
        assert_eq!(view.free_cores(), vec![CoreId(1)]);
        assert_eq!(view.min_sensor_confidence(), 0.4);
    }
}
