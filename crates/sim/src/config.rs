use hp_faults::{FaultError, FaultPlan};
use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// How the hardware DTM reacts when a junction crosses the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DtmScope {
    /// Crash the whole chip to the minimum frequency while any junction
    /// is above the threshold — the paper's description ("crashes the
    /// many-core's operating frequency").
    #[default]
    Chip,
    /// Throttle only the offending cores (modern per-core throttling).
    PerCore,
}

/// Engine parameters of the interval simulation.
///
/// # Example
///
/// ```
/// use hp_sim::SimConfig;
///
/// let cfg = SimConfig { t_dtm: 75.0, ..SimConfig::default() };
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulation interval, s. The thermal step is exact for constant
    /// power, so `dt` only bounds how often power and scheduling can
    /// change. Default 100 µs — five steps per 0.5 ms rotation epoch.
    pub dt: f64,
    /// Scheduler invocation period, s (default 500 µs, the paper's initial
    /// rotation epoch).
    pub sched_period: f64,
    /// DTM threshold temperature, °C (paper: 70 °C).
    pub t_dtm: f64,
    /// Whether the hardware DTM (frequency crash above `t_dtm`) is active.
    pub dtm_enabled: bool,
    /// Whether DTM throttles the whole chip or only the hot cores.
    pub dtm_scope: DtmScope,
    /// Hard wall-clock horizon for a run, simulated seconds.
    pub horizon: f64,
    /// Record a per-interval temperature trace (costs memory; used by the
    /// Fig. 2 experiments).
    pub record_trace: bool,
    /// Window for the per-thread average power history the scheduler sees,
    /// s (paper Algorithm 1 uses "the power history of a thread from the
    /// last 10 ms").
    pub power_history_window: f64,
    /// Start the chip at the steady state of this uniform per-core power
    /// instead of at ambient (W). Models a long-running system whose heat
    /// sink is already warm — the regime where Algorithm 1's d→∞ cycle is
    /// exact. `None` (default) starts cold at ambient.
    pub prewarm_power: Option<f64>,
    /// Width of the DTM hysteresis band, °C: the throttle engages when a
    /// junction reaches `t_dtm` and releases only once it falls below
    /// `t_dtm − dtm_hysteresis_celsius`. A band of `0.0` reproduces the
    /// historical stateless comparison bit-for-bit (and its per-interval
    /// oscillation at the boundary).
    pub dtm_hysteresis_celsius: f64,
    /// Fault-injection plan. [`FaultPlan::default`] is inert: the fault
    /// layer is bypassed entirely and runs are bit-identical to builds
    /// without it.
    pub faults: FaultPlan,
    /// How many consecutive missed sensor readings the conditioning
    /// layer bridges with the core's last good value before falling back
    /// to the spatial median of its neighbours. Only consulted when
    /// `faults` is active.
    pub sensor_staleness_budget_intervals: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dt: 100e-6,
            sched_period: 500e-6,
            t_dtm: 70.0,
            dtm_enabled: true,
            dtm_scope: DtmScope::Chip,
            horizon: 30.0,
            record_trace: false,
            power_history_window: 10e-3,
            prewarm_power: None,
            dtm_hysteresis_celsius: 1.0,
            faults: FaultPlan::default(),
            sensor_staleness_budget_intervals: 5,
        }
    }
}

impl SimConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] naming the first offender.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("dt", self.dt),
            ("sched_period", self.sched_period),
            ("horizon", self.horizon),
            ("power_history_window", self.power_history_window),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(SimError::InvalidParameter { name, value });
            }
        }
        if !self.t_dtm.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "t_dtm",
                value: self.t_dtm,
            });
        }
        if let Some(p) = self.prewarm_power {
            if !(p.is_finite() && p >= 0.0) {
                return Err(SimError::InvalidParameter {
                    name: "prewarm_power",
                    value: p,
                });
            }
        }
        if self.sched_period < self.dt {
            return Err(SimError::InvalidParameter {
                name: "sched_period",
                value: self.sched_period,
            });
        }
        if !(self.dtm_hysteresis_celsius.is_finite() && self.dtm_hysteresis_celsius >= 0.0) {
            return Err(SimError::InvalidParameter {
                name: "dtm_hysteresis_celsius",
                value: self.dtm_hysteresis_celsius,
            });
        }
        self.faults.validate().map_err(|e| match e {
            FaultError::InvalidParameter { name, value } => {
                SimError::InvalidParameter { name, value }
            }
            _ => SimError::InvalidParameter {
                name: "faults",
                value: f64::NAN,
            },
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_zero_dt() {
        let c = SimConfig {
            dt: 0.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_sched_period_below_dt() {
        let c = SimConfig {
            dt: 1e-3,
            sched_period: 1e-4,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_negative_hysteresis() {
        let c = SimConfig {
            dtm_hysteresis_celsius: -0.5,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_invalid_fault_plan() {
        let c = SimConfig {
            faults: FaultPlan {
                sensor_dropout_rate: 2.0,
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(SimError::InvalidParameter {
                name: "sensor_dropout_rate",
                ..
            })
        ));
    }
}
