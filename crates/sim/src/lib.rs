//! Interval thermal simulation engine — the HotSniper substitute.
//!
//! HotSniper couples the Sniper interval core simulator with McPAT power
//! and HotSpot thermal models in a fixed-interval loop, and lets a
//! scheduler plugin observe per-interval statistics and issue migrations
//! and DVFS changes. This crate reproduces that loop over the workspace's
//! own substrates:
//!
//! ```text
//! every interval dt:
//!   1. admit arrived jobs, run the scheduler (place / migrate / DVFS)
//!   2. performance: WorkPoint × core × frequency → instructions retired
//!   3. power: CPI activity + DVFS point + temperature → per-core watts
//!   4. thermal: exact RC transient step (MatEx route)
//!   5. DTM: hardware frequency crash while any junction ≥ T_DTM
//! ```
//!
//! Schedulers implement the [`Scheduler`] trait; the engine validates their
//! [`Action`]s (placements must target free cores, simultaneous migrations
//! must form a proper permutation — which is exactly what a synchronous
//! rotation is).
//!
//! # Example
//!
//! ```
//! use hp_manycore::{ArchConfig, Machine};
//! use hp_sim::{schedulers::PinnedScheduler, SimConfig, Simulation};
//! use hp_thermal::ThermalConfig;
//! use hp_workload::{closed_batch, Benchmark};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = Machine::new(ArchConfig { grid_width: 4, grid_height: 4, ..ArchConfig::default() })?;
//! let jobs = closed_batch(Benchmark::Canneal, 8, 1);
//! let mut sim = Simulation::new(machine, ThermalConfig::default(), SimConfig::default())?;
//! let mut sched = PinnedScheduler::new();
//! let metrics = sim.run(jobs, &mut sched)?;
//! assert_eq!(metrics.jobs.len(), metrics.completed_jobs());
//! # Ok(())
//! # }
//! ```

mod checkpoint;
mod config;
mod engine;
mod error;
mod job;
mod metrics;
mod scheduler;
mod trace;

pub mod schedulers;

pub use checkpoint::{CheckpointError, EngineCheckpoint, CHECKPOINT_SCHEMA};
pub use config::{DtmScope, SimConfig};
pub use engine::{RunOptions, Simulation};
pub use error::SimError;
pub use job::ThreadId;
// Re-exported so downstream schedulers can name the type behind
// `ThreadId::job` (e.g. when decoding a checkpoint snapshot) without a
// direct hp-workload dependency.
pub use hp_workload::JobId;
pub use metrics::{JobRecord, Metrics, Robustness};
pub use scheduler::{Action, PendingJobView, Scheduler, SchedulerHealth, SimView, ThreadView};
pub use trace::{TemperatureTrace, TraceEvent, TraceEventKind};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
