//! Minimal built-in schedulers: useful baselines and test fixtures.
//!
//! The paper's real contenders live elsewhere — HotPotato in the
//! `hotpotato` crate, PCMig/PCGov/TSP baselines in `hp-sched`. The
//! schedulers here are deliberately simple:
//!
//! * [`PinnedScheduler`] — place arriving jobs on the lowest-AMD free
//!   cores at peak frequency and never touch them again. This is the
//!   "unmanaged" configuration of Fig. 2(a).

use hp_floorplan::CoreId;

use crate::scheduler::{Action, Scheduler, SimView};

/// Places jobs on the free cores with the lowest AMD (best performance)
/// and never migrates or throttles — the thermally unmanaged baseline.
///
/// Placement prefers low-AMD cores because that is what a
/// performance-only OS scheduler for S-NUCA would do (paper \[19\]).
///
/// # Example
///
/// ```
/// use hp_sim::schedulers::PinnedScheduler;
///
/// let sched = PinnedScheduler::new();
/// assert_eq!(sched.preferred_cores(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PinnedScheduler {
    /// Optional fixed placement for the first job (used by the Fig. 2
    /// experiments to pin *blackscholes* on specific cores).
    preferred: Option<Vec<CoreId>>,
}

impl PinnedScheduler {
    /// A scheduler that places jobs on the lowest-AMD free cores.
    pub fn new() -> Self {
        PinnedScheduler { preferred: None }
    }

    /// A scheduler that places the *first* job exactly on `cores`
    /// (subsequent jobs fall back to lowest-AMD-first).
    pub fn with_preferred_cores(cores: Vec<CoreId>) -> Self {
        PinnedScheduler {
            preferred: Some(cores),
        }
    }

    /// The configured fixed placement, if any.
    pub fn preferred_cores(&self) -> Option<&[CoreId]> {
        self.preferred.as_deref()
    }
}

impl Scheduler for PinnedScheduler {
    fn name(&self) -> &str {
        "pinned"
    }

    fn schedule(&mut self, view: &SimView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut free = view.free_cores();
        // Sort free cores by AMD ascending (best performance first).
        // Out-of-range cores (impossible for a free-core list) sort last
        // via the +inf sentinel instead of aborting the run.
        free.sort_by(|&a, &b| {
            let fa = view.machine.floorplan().amd(a).unwrap_or(f64::INFINITY);
            let fb = view.machine.floorplan().amd(b).unwrap_or(f64::INFINITY);
            fa.total_cmp(&fb).then(a.cmp(&b))
        });
        for job in view.pending {
            if let Some(cores) = self.preferred.take() {
                if cores.len() == job.threads && cores.iter().all(|c| free.contains(c)) {
                    free.retain(|c| !cores.contains(c));
                    actions.push(Action::PlaceJob {
                        job: job.job,
                        cores,
                    });
                    continue;
                }
            }
            if free.len() < job.threads {
                break; // admit in arrival order; wait for space
            }
            let cores: Vec<CoreId> = free.drain(..job.threads).collect();
            actions.push(Action::PlaceJob {
                job: job.job,
                cores,
            });
        }
        actions
    }

    // The only mutable state is the one-shot preferred placement, which
    // `schedule` consumes: the snapshot records whether (and where) it
    // is still armed.
    fn snapshot(&self) -> Option<String> {
        let body = match &self.preferred {
            None => "null".to_string(),
            Some(cores) => {
                let list: Vec<String> = cores.iter().map(|c| c.index().to_string()).collect();
                format!("[{}]", list.join(","))
            }
        };
        Some(format!("{{\"preferred\":{body}}}"))
    }

    fn restore(&mut self, state: &str) -> std::result::Result<(), String> {
        let doc = hp_obs::json::parse(state).map_err(|e| format!("pinned snapshot: {e}"))?;
        let preferred = doc
            .get("preferred")
            .ok_or("pinned snapshot: missing `preferred`")?;
        self.preferred = match preferred {
            hp_obs::json::Json::Null => None,
            hp_obs::json::Json::Arr(items) => Some(
                items
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .map(|i| CoreId(i as usize))
                            .ok_or_else(|| "pinned snapshot: non-integer core".to_string())
                    })
                    .collect::<std::result::Result<Vec<_>, _>>()?,
            ),
            _ => return Err("pinned snapshot: `preferred` must be null or a list".into()),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulation};
    use hp_manycore::{ArchConfig, Machine};
    use hp_thermal::ThermalConfig;
    use hp_workload::{closed_batch, Benchmark, Job, JobId};

    fn small_machine() -> Machine {
        Machine::new(ArchConfig {
            grid_width: 4,
            grid_height: 4,
            ..ArchConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn pinned_runs_single_job_to_completion() {
        let mut sim = Simulation::new(
            small_machine(),
            ThermalConfig::default(),
            SimConfig {
                dtm_enabled: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let jobs = vec![Job {
            id: JobId(0),
            benchmark: Benchmark::Canneal,
            spec: Benchmark::Canneal.spec(2),
            arrival: 0.0,
        }];
        let mut sched = PinnedScheduler::new();
        let m = sim.run(jobs, &mut sched).unwrap();
        assert_eq!(m.completed_jobs(), 1);
        assert!(m.makespan > 0.0);
        assert_eq!(m.migrations, 0);
        assert!(m.jobs[0].instructions > 0);
    }

    #[test]
    fn pinned_prefers_low_amd_cores() {
        let mut sim = Simulation::new(
            small_machine(),
            ThermalConfig::default(),
            SimConfig {
                dtm_enabled: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        // A 4-thread canneal must land on the centre ring {5, 6, 9, 10}.
        let jobs = vec![Job {
            id: JobId(0),
            benchmark: Benchmark::Canneal,
            spec: Benchmark::Canneal.spec(4),
            arrival: 0.0,
        }];
        let mut sched = PinnedScheduler::new();
        // We can't observe placement directly from metrics; rely on the
        // preferred-cores variant below for the explicit check, and here
        // just assert completion.
        let m = sim.run(jobs, &mut sched).unwrap();
        assert_eq!(m.completed_jobs(), 1);
    }

    #[test]
    fn preferred_cores_are_honoured() {
        let mut sim = Simulation::new(
            small_machine(),
            ThermalConfig::default(),
            SimConfig {
                dtm_enabled: false,
                record_trace: true,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let jobs = vec![Job {
            id: JobId(0),
            benchmark: Benchmark::Swaptions,
            spec: Benchmark::Swaptions.spec(1),
            arrival: 0.0,
        }];
        let mut sched = PinnedScheduler::with_preferred_cores(vec![CoreId(0)]);
        let m = sim.run(jobs, &mut sched).unwrap();
        assert_eq!(m.completed_jobs(), 1);
        // The corner core must be the hottest at the end of the run.
        let trace = sim.trace();
        let last = trace.sample(trace.len() - 1);
        let hottest = last
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(hottest, 0);
    }

    #[test]
    fn batch_completes_and_accounts_instructions() {
        let mut sim = Simulation::new(
            small_machine(),
            ThermalConfig::default(),
            SimConfig {
                dtm_enabled: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let jobs = closed_batch(Benchmark::Canneal, 8, 1);
        let expected: u64 = jobs.iter().map(|j| j.spec.total_instructions()).sum();
        let mut sched = PinnedScheduler::new();
        let m = sim.run(jobs, &mut sched).unwrap();
        let retired: u64 = m.jobs.iter().map(|j| j.instructions).sum();
        assert_eq!(retired, expected, "all instructions retired exactly");
    }
}
