use std::io::{self, Write};

use serde::{Deserialize, Serialize};

/// What kind of degradation transition a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// The DTM watchdog latch engaged (temperature reached `t_dtm`).
    WatchdogEngaged,
    /// The DTM watchdog latch released (fell below `t_dtm − ΔT`).
    WatchdogReleased,
    /// The scheduler reported leaving its nominal policy.
    FallbackEngaged,
    /// The scheduler reported returning to its nominal policy.
    FallbackRecovered,
    /// Per-core sensor confidence dropped below the degraded threshold.
    SensorsDegraded,
    /// Sensor confidence recovered above the degraded threshold.
    SensorsRecovered,
    /// The engine dropped scheduler actions invalidated by injected
    /// faults (lenient mode).
    ActionsDropped,
    /// The thermal solver degraded to its dense numerical fallback (a
    /// construction-time arming or a runtime invariant-guard trip).
    NumericalDegradation,
}

impl TraceEventKind {
    /// Stable snake-case label used as the `kind` of exported report
    /// events ([`hp_obs::ReportEvent`]).
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::WatchdogEngaged => "watchdog_engaged",
            TraceEventKind::WatchdogReleased => "watchdog_released",
            TraceEventKind::FallbackEngaged => "fallback_engaged",
            TraceEventKind::FallbackRecovered => "fallback_recovered",
            TraceEventKind::SensorsDegraded => "sensors_degraded",
            TraceEventKind::SensorsRecovered => "sensors_recovered",
            TraceEventKind::ActionsDropped => "actions_dropped",
            TraceEventKind::NumericalDegradation => "numerical_degradation",
        }
    }

    /// Inverse of [`label`](TraceEventKind::label) — used when decoding
    /// checkpointed traces. `None` for an unknown label.
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "watchdog_engaged" => TraceEventKind::WatchdogEngaged,
            "watchdog_released" => TraceEventKind::WatchdogReleased,
            "fallback_engaged" => TraceEventKind::FallbackEngaged,
            "fallback_recovered" => TraceEventKind::FallbackRecovered,
            "sensors_degraded" => TraceEventKind::SensorsDegraded,
            "sensors_recovered" => TraceEventKind::SensorsRecovered,
            "actions_dropped" => TraceEventKind::ActionsDropped,
            "numerical_degradation" => TraceEventKind::NumericalDegradation,
            _ => return None,
        })
    }
}

/// One timestamped degradation transition, recorded unconditionally
/// (independent of [`record_trace`](crate::SimConfig::record_trace) —
/// events are sparse; temperature samples are not).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the transition, s.
    pub time_seconds: f64,
    /// The transition.
    pub kind: TraceEventKind,
    /// Human-readable context (peak temperature, counts, …).
    pub detail: String,
}

/// A recorded per-interval temperature trace (the raw material of the
/// paper's Fig. 2 thermal plots) plus the run's degradation event log.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TemperatureTrace {
    times: Vec<f64>,
    /// `temps[k][c]` = junction temperature of core `c` at `times[k]`, °C.
    temps: Vec<Vec<f64>>,
    events: Vec<TraceEvent>,
}

impl TemperatureTrace {
    /// An empty trace.
    pub fn new() -> Self {
        TemperatureTrace::default()
    }

    pub(crate) fn push(&mut self, time: f64, core_temps: Vec<f64>) {
        self.times.push(time);
        self.temps.push(core_temps);
    }

    pub(crate) fn push_event(&mut self, time: f64, kind: TraceEventKind, detail: String) {
        self.events.push(TraceEvent {
            time_seconds: time,
            kind,
            detail,
        });
    }

    /// Rebuilds a trace from checkpointed parts (the engine resume path).
    pub(crate) fn from_parts(
        times: Vec<f64>,
        temps: Vec<Vec<f64>>,
        events: Vec<TraceEvent>,
    ) -> Self {
        TemperatureTrace {
            times,
            temps,
            events,
        }
    }

    /// Degradation transitions recorded during the run, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample timestamps, s.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Junction temperatures at sample `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn sample(&self, k: usize) -> &[f64] {
        &self.temps[k]
    }

    /// The trace of a single core over time.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for the recorded samples.
    pub fn core_series(&self, core: usize) -> Vec<f64> {
        self.temps.iter().map(|t| t[core]).collect()
    }

    /// The hottest junction at each sample.
    pub fn peak_series(&self) -> Vec<f64> {
        self.temps
            .iter()
            .map(|t| t.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x)))
            .collect()
    }

    /// The hottest junction over the whole trace (`None` if empty).
    pub fn peak(&self) -> Option<f64> {
        self.peak_series()
            .into_iter()
            .fold(None, |m, x| Some(m.map_or(x, |v: f64| v.max(x))))
    }

    /// Writes the trace as CSV (`time_s,core0,core1,…`) to `writer`.
    ///
    /// A `&mut` reference can be passed for writers you want to keep
    /// using afterwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let cores = self.temps.first().map_or(0, |t| t.len());
        write!(writer, "time_s")?;
        for c in 0..cores {
            write!(writer, ",core{c}")?;
        }
        writeln!(writer)?;
        for (t, temps) in self.times.iter().zip(&self.temps) {
            write!(writer, "{t}")?;
            for v in temps {
                write!(writer, ",{v}")?;
            }
            writeln!(writer)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_and_queries() {
        let mut t = TemperatureTrace::new();
        assert!(t.is_empty());
        t.push(0.0, vec![45.0, 46.0]);
        t.push(0.1, vec![50.0, 44.0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.core_series(0), vec![45.0, 50.0]);
        assert_eq!(t.peak_series(), vec![46.0, 50.0]);
        assert_eq!(t.peak(), Some(50.0));
        assert_eq!(t.times(), &[0.0, 0.1]);
        assert_eq!(t.sample(1), &[50.0, 44.0]);
    }

    #[test]
    fn empty_peak_is_none() {
        assert_eq!(TemperatureTrace::new().peak(), None);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = TemperatureTrace::new();
        t.push(0.0, vec![45.0, 46.0]);
        t.push(0.1, vec![50.0, 44.0]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time_s,core0,core1");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0,45"));
    }

    #[test]
    fn empty_trace_writes_header_only() {
        let mut buf = Vec::new();
        TemperatureTrace::new().write_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "time_s\n");
    }

    #[test]
    fn events_are_recorded_in_order() {
        let mut t = TemperatureTrace::new();
        assert!(t.events().is_empty());
        t.push_event(0.1, TraceEventKind::WatchdogEngaged, "peak 70.2 C".into());
        t.push_event(0.3, TraceEventKind::WatchdogReleased, "peak 68.9 C".into());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kind, TraceEventKind::WatchdogEngaged);
        assert_eq!(t.events()[1].time_seconds, 0.3);
    }
}
