use std::collections::BTreeMap;
use std::collections::VecDeque;

use hp_floorplan::CoreId;
use hp_linalg::Vector;
use hp_manycore::Machine;
use hp_power::DvfsLevel;
use hp_thermal::{RcThermalModel, ThermalConfig, TransientSolver};
use hp_workload::{Job, JobId};

use crate::job::{JobRuntime, ThreadId, ThreadPhaseState};
use crate::metrics::{JobRecord, Metrics};
use crate::scheduler::{Action, PendingJobView, Scheduler, SimView, ThreadView};
use crate::trace::TemperatureTrace;
use crate::{Result, SimConfig, SimError};

/// The interval simulation engine.
///
/// Owns the machine, the thermal model and its transient solver; a run
/// processes a workload to completion under a [`Scheduler`] and produces
/// [`Metrics`]. See the [crate docs](crate) for the per-interval loop.
#[derive(Debug)]
pub struct Simulation {
    machine: Machine,
    thermal: RcThermalModel,
    solver: TransientSolver,
    config: SimConfig,
    trace: TemperatureTrace,
}

impl Simulation {
    /// Builds an engine for `machine` with the given thermal and engine
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration and model-construction failures.
    pub fn new(machine: Machine, thermal: ThermalConfig, config: SimConfig) -> Result<Self> {
        config.validate()?;
        let model = RcThermalModel::new(machine.floorplan(), &thermal)?;
        let solver = TransientSolver::new(&model)?;
        Ok(Simulation {
            machine,
            thermal: model,
            solver,
            config,
            trace: TemperatureTrace::new(),
        })
    }

    /// The machine under simulation.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The thermal model in use.
    pub fn thermal(&self) -> &RcThermalModel {
        &self.thermal
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The temperature trace of the last run (empty unless
    /// [`SimConfig::record_trace`] was set).
    pub fn trace(&self) -> &TemperatureTrace {
        &self.trace
    }

    /// Runs `jobs` to completion under `scheduler`.
    ///
    /// # Errors
    ///
    /// * [`SimError::HorizonExceeded`] if jobs remain unfinished at the
    ///   configured horizon.
    /// * Validation errors for malformed scheduler actions
    ///   ([`SimError::CoreConflict`], [`SimError::PlacementArity`], …).
    pub fn run(&mut self, mut jobs: Vec<Job>, scheduler: &mut dyn Scheduler) -> Result<Metrics> {
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        let total_jobs = jobs.len();
        let mut arrivals: VecDeque<Job> = jobs.into();

        let n = self.machine.core_count();
        let dt = self.config.dt;
        let sched_every = (self.config.sched_period / dt).round().max(1.0) as u64;

        let mut node_temps = match self.config.prewarm_power {
            None => self.thermal.ambient_state(),
            Some(p) => self.thermal.steady_state(&Vector::constant(n, p))?,
        };
        let mut levels = vec![self.machine.config().dvfs.max_level(); n];
        let mut occupancy: Vec<Option<ThreadId>> = vec![None; n];
        let mut pending: VecDeque<Job> = VecDeque::new();
        let mut active: BTreeMap<JobId, JobRuntime> = BTreeMap::new();
        let mut records: BTreeMap<JobId, JobRecord> = BTreeMap::new();

        self.trace = TemperatureTrace::new();
        let mut metrics = Metrics {
            scheduler: scheduler.name().to_string(),
            ..Metrics::default()
        };
        let mut completed = 0usize;
        let mut step: u64 = 0;
        let mut dtm_last_interval = false;
        let mut busy_freq_integral = 0.0f64;
        let mut busy_time = 0.0f64;

        loop {
            let now = step as f64 * dt;
            if completed == total_jobs {
                metrics.simulated_time = now;
                break;
            }
            if now > self.config.horizon {
                return Err(SimError::HorizonExceeded {
                    horizon: self.config.horizon,
                    unfinished: total_jobs - completed,
                });
            }

            // 1. Admission: move arrived jobs into the pending queue.
            while arrivals.front().is_some_and(|j| j.arrival <= now + 1e-12) {
                let Some(job) = arrivals.pop_front() else {
                    break;
                };
                pending.push_back(job);
            }

            // Junction temperatures for this interval, shared by the
            // scheduling hook, the DTM check, and the power evaluation
            // (node_temps only changes at the thermal step below).
            let core_temps = self.thermal.core_temperatures(&node_temps);

            // 2. Scheduling hook.
            if step.is_multiple_of(sched_every) {
                let thread_views = build_thread_views(&active);
                let pending_views: Vec<PendingJobView> = pending
                    .iter()
                    .map(|j| PendingJobView {
                        job: j.id,
                        benchmark: j.benchmark,
                        threads: j.spec.thread_count(),
                        arrival: j.arrival,
                    })
                    .collect();
                let actions = {
                    let view = SimView {
                        time: now,
                        machine: &self.machine,
                        core_temps: &core_temps,
                        levels: &levels,
                        occupancy: &occupancy,
                        threads: &thread_views,
                        pending: &pending_views,
                        t_dtm: self.config.t_dtm,
                        dtm_active: dtm_last_interval,
                    };
                    scheduler.schedule(&view)
                };
                self.apply_actions(
                    actions,
                    now,
                    &mut pending,
                    &mut active,
                    &mut records,
                    &mut occupancy,
                    &mut levels,
                    &mut metrics,
                )?;
            }

            // 3. Hardware DTM: frequency crash while too hot (chip-wide
            // or per-core, per configuration).
            let dtm_now = self.config.dtm_enabled && core_temps.max() >= self.config.t_dtm;
            if dtm_now {
                metrics.dtm_intervals += 1;
            }
            dtm_last_interval = dtm_now;
            let min_level = self.machine.config().dvfs.min_level();
            let throttled = |core: usize| match self.config.dtm_scope {
                crate::DtmScope::Chip => dtm_now,
                crate::DtmScope::PerCore => {
                    self.config.dtm_enabled && core_temps[core] >= self.config.t_dtm
                }
            };

            // 4. Performance + power for this interval.
            let mut power = Vector::zeros(n);
            for core in 0..n {
                let temp = core_temps[core];
                let level = if throttled(core) {
                    min_level
                } else {
                    levels[core]
                };
                match occupancy[core] {
                    None => {
                        power[core] = self.machine.idle_power(temp);
                    }
                    Some(tid) => {
                        let jr = active
                            .get_mut(&tid.job)
                            .ok_or(SimError::UnknownThread(tid))?;
                        let nominal = jr.work_point(tid.index);
                        let t = &mut jr.threads[tid.index];
                        // Migration flush stall eats into the interval.
                        let exec_start = t.stall_until.max(now);
                        let exec_time = ((now + dt) - exec_start).clamp(0.0, dt);
                        let nominal_stack =
                            self.machine
                                .cpi_stack_at_level(&nominal, CoreId(core), level)?;
                        let effective = if now < t.warmup_until {
                            // Cold private caches: the flushed lines refill
                            // through the LLC, bounded by cache capacity.
                            let extra = self
                                .machine
                                .config()
                                .migration
                                .warmup_extra_mpki(nominal_stack.ips());
                            nominal.with_extra_l1_mpki(extra)
                        } else {
                            nominal
                        };
                        let stack =
                            self.machine
                                .cpi_stack_at_level(&effective, CoreId(core), level)?;
                        let retired = (stack.ips() * exec_time) as u64;
                        if let ThreadPhaseState::Running { remaining } = t.state {
                            let done = retired.min(remaining);
                            t.instructions_retired += done;
                            let left = remaining - done;
                            t.state = if left == 0 {
                                ThreadPhaseState::AtBarrier
                            } else {
                                ThreadPhaseState::Running { remaining: left }
                            };
                        }
                        t.last_cpi = if nominal.is_idle() {
                            f64::INFINITY
                        } else {
                            nominal_stack.total()
                        };
                        let watts = self.machine.core_power(&stack, level, temp);
                        t.history.push(dt, watts);
                        t.energy += watts * dt;
                        power[core] = watts;
                        if !nominal.is_idle() {
                            busy_freq_integral +=
                                self.machine.config().dvfs.frequency_ghz(level) * dt;
                            busy_time += dt;
                        }
                    }
                }
            }

            // 5. Exact thermal step for the interval. `step` is the
            // batched GEMM kernel applied to a batch of one; the fixed
            // `dt` hits the solver's decay cache every interval, so no
            // per-step eigenvalue exponentials are recomputed.
            node_temps = self.solver.step(&self.thermal, &node_temps, &power, dt)?;
            let after = self.thermal.core_temperatures(&node_temps);
            metrics.peak_temperature = metrics.peak_temperature.max(after.max());
            metrics.energy += power.sum() * dt;
            if self.config.record_trace {
                self.trace.push(now + dt, after.into_inner());
            }

            // 6. Barrier release / phase advance / completion.
            let done_ids: Vec<JobId> = active
                .iter_mut()
                .filter_map(|(&id, jr)| {
                    while jr.phase_done() {
                        if !jr.advance_phase() {
                            jr.completed = Some(now + dt);
                            return Some(id);
                        }
                    }
                    None
                })
                .collect();
            for id in done_ids {
                let Some(jr) = active.remove(&id) else {
                    continue; // id came from `active` above; a miss is a no-op
                };
                for t in &jr.threads {
                    occupancy[t.core.index()] = None;
                }
                let completed_at = jr.completed.unwrap_or(now + dt);
                if let Some(rec) = records.get_mut(&id) {
                    rec.completed = Some(completed_at);
                    rec.instructions = jr.threads.iter().map(|t| t.instructions_retired).sum();
                    rec.migrations = jr.threads.iter().map(|t| t.migrations).sum();
                    rec.energy = jr.threads.iter().map(|t| t.energy).sum();
                }
                metrics.makespan = metrics.makespan.max(completed_at);
                completed += 1;
            }

            step += 1;
        }

        metrics.avg_frequency_ghz = if busy_time > 0.0 {
            busy_freq_integral / busy_time
        } else {
            0.0
        };
        metrics.jobs = records.into_values().collect();
        Ok(metrics)
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_actions(
        &self,
        actions: Vec<Action>,
        now: f64,
        pending: &mut VecDeque<Job>,
        active: &mut BTreeMap<JobId, JobRuntime>,
        records: &mut BTreeMap<JobId, JobRecord>,
        occupancy: &mut [Option<ThreadId>],
        levels: &mut [DvfsLevel],
        metrics: &mut Metrics,
    ) -> Result<()> {
        let n = occupancy.len();
        // Phase 1: placements.
        let mut migrations: Vec<(ThreadId, CoreId)> = Vec::new();
        for action in actions {
            match action {
                Action::PlaceJob { job, cores } => {
                    let pos = pending
                        .iter()
                        .position(|j| j.id == job)
                        .ok_or(SimError::UnknownJob(job))?;
                    let j = pending.remove(pos).ok_or(SimError::UnknownJob(job))?;
                    if cores.len() != j.spec.thread_count() {
                        return Err(SimError::PlacementArity {
                            job,
                            threads: j.spec.thread_count(),
                            cores: cores.len(),
                        });
                    }
                    let mut claimed = vec![false; n];
                    for &c in &cores {
                        if c.index() >= n {
                            return Err(SimError::Floorplan(
                                hp_floorplan::FloorplanError::CoreOutOfRange {
                                    core: c.index(),
                                    cores: n,
                                },
                            ));
                        }
                        // Conflicts both with running threads and with
                        // duplicates inside this very placement.
                        if occupancy[c.index()].is_some() || claimed[c.index()] {
                            return Err(SimError::CoreConflict { core: c });
                        }
                        claimed[c.index()] = true;
                    }
                    let rt = JobRuntime::start(j, &cores, self.config.power_history_window);
                    for t in &rt.threads {
                        occupancy[t.core.index()] = Some(t.id);
                    }
                    records.insert(
                        job,
                        JobRecord {
                            job,
                            benchmark: rt.job.benchmark.name().to_string(),
                            threads: rt.threads.len(),
                            arrival: rt.job.arrival,
                            started: now,
                            completed: None,
                            instructions: 0,
                            migrations: 0,
                            energy: 0.0,
                        },
                    );
                    active.insert(job, rt);
                }
                Action::Migrate { thread, to } => migrations.push((thread, to)),
                Action::SetLevel { core, level } => {
                    if core.index() >= n {
                        return Err(SimError::Floorplan(
                            hp_floorplan::FloorplanError::CoreOutOfRange {
                                core: core.index(),
                                cores: n,
                            },
                        ));
                    }
                    self.machine.config().dvfs.check(level).map_err(|_| {
                        SimError::InvalidParameter {
                            name: "dvfs level",
                            value: level.index() as f64,
                        }
                    })?;
                    levels[core.index()] = level;
                }
                Action::SetAllLevels { level } => {
                    self.machine.config().dvfs.check(level).map_err(|_| {
                        SimError::InvalidParameter {
                            name: "dvfs level",
                            value: level.index() as f64,
                        }
                    })?;
                    levels.fill(level);
                }
            }
        }

        // Phase 2: migrations, applied as one atomic batch so synchronous
        // rotations (cyclic permutations) are expressible.
        if !migrations.is_empty() {
            // Validate sources.
            let mut staged: Vec<(ThreadId, CoreId, CoreId)> = Vec::new(); // (thread, from, to)
            for &(tid, to) in &migrations {
                let jr = active.get(&tid.job).ok_or(SimError::UnknownThread(tid))?;
                let t = jr
                    .threads
                    .get(tid.index)
                    .ok_or(SimError::UnknownThread(tid))?;
                if to.index() >= n {
                    return Err(SimError::Floorplan(
                        hp_floorplan::FloorplanError::CoreOutOfRange {
                            core: to.index(),
                            cores: n,
                        },
                    ));
                }
                staged.push((tid, t.core, to));
            }
            // Simulate the batch on a copy of the occupancy.
            let mut next: Vec<Option<ThreadId>> = occupancy.to_vec();
            for &(_, from, _) in &staged {
                next[from.index()] = None;
            }
            for &(tid, _, to) in &staged {
                if next[to.index()].is_some() {
                    return Err(SimError::CoreConflict { core: to });
                }
                next[to.index()] = Some(tid);
            }
            occupancy.copy_from_slice(&next);
            let flush = self.machine.config().migration.flush_seconds();
            let warmup = self.machine.config().migration.warmup_seconds();
            for (tid, from, to) in staged {
                if from == to {
                    continue; // no-op migration costs nothing
                }
                let jr = active
                    .get_mut(&tid.job)
                    .ok_or(SimError::UnknownThread(tid))?;
                let t = &mut jr.threads[tid.index];
                t.core = to;
                t.stall_until = now + flush;
                t.warmup_until = now + flush + warmup;
                t.migrations += 1;
                metrics.migrations += 1;
            }
        }
        Ok(())
    }
}

fn build_thread_views(active: &BTreeMap<JobId, JobRuntime>) -> Vec<ThreadView> {
    let mut out = Vec::new();
    for jr in active.values() {
        for (i, t) in jr.threads.iter().enumerate() {
            let work = jr.work_point(i);
            out.push(ThreadView {
                id: t.id,
                benchmark: jr.job.benchmark,
                core: t.core,
                work,
                last_cpi: t.last_cpi,
                avg_power: t.history.average(),
            });
        }
    }
    out
}
