use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Instant;

use hp_faults::{mesh_neighbors, FaultError, FaultInjector, SensorConditioner, SensorReading};
use hp_floorplan::CoreId;
use hp_linalg::Vector;
use hp_manycore::Machine;
use hp_power::DvfsLevel;
use hp_thermal::{RcThermalModel, ThermalConfig, TransientSolver, TransientStats};
use hp_workload::{Job, JobId};

use crate::checkpoint::{
    self, ActiveJobState, CheckpointError, CheckpointState, EngineCheckpoint, FaultState,
    MetricsState, ObsState, ThreadState, TraceState,
};
use crate::job::{JobRuntime, PowerHistory, ThreadId, ThreadPhaseState, ThreadRuntime};
use crate::metrics::{JobRecord, Metrics};
use crate::scheduler::{Action, PendingJobView, Scheduler, SchedulerHealth, SimView, ThreadView};
use crate::trace::{TemperatureTrace, TraceEventKind};
use crate::{Result, SimConfig, SimError};

/// Minimum per-core sensor confidence below which the run is logged as
/// running on degraded sensors (trace event only; policy floors live in
/// the schedulers).
const SENSOR_DEGRADED_CONFIDENCE: f64 = 0.5;

/// The interval simulation engine.
///
/// Owns the machine, the thermal model and its transient solver; a run
/// processes a workload to completion under a [`Scheduler`] and produces
/// [`Metrics`]. See the [crate docs](crate) for the per-interval loop.
///
/// With an active [`FaultPlan`](hp_faults::FaultPlan) in the
/// [`SimConfig`], the engine additionally drives the fault-injection and
/// sensor-conditioning layers: schedulers then see conditioned sensor
/// temperatures with per-core confidence instead of ground truth, while
/// the hardware DTM watchdog keeps acting on the true junction
/// temperatures (modelling its dedicated thermal-diode path).
#[derive(Debug)]
pub struct Simulation {
    machine: Machine,
    thermal: RcThermalModel,
    solver: TransientSolver,
    config: SimConfig,
    trace: TemperatureTrace,
    /// Checkpoints written during the last run (never folded into the
    /// run's own `RunReport`: a resumed run must report bit-identically
    /// to an uninterrupted one, and the uninterrupted run wrote none).
    ckpt_saves: u64,
    /// Whether the last run started from a checkpoint (0 or 1).
    ckpt_resumes: u64,
}

/// Supervision and recovery options for [`Simulation::run_with_options`]
/// (DESIGN.md §13). The default runs unsupervised and from scratch —
/// exactly [`Simulation::run`].
#[derive(Debug, Default)]
pub struct RunOptions {
    /// Capture an [`EngineCheckpoint`] every this many simulated seconds
    /// (rounded to whole intervals, minimum one interval). Requires
    /// [`checkpoint_path`](RunOptions::checkpoint_path).
    pub checkpoint_every_seconds: Option<f64>,
    /// Where periodic checkpoints land. Each capture overwrites the file
    /// atomically (tmp + rename), so a crash mid-write never corrupts
    /// the previous good checkpoint.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume mid-run from a verified checkpoint instead of starting at
    /// t = 0. The workload, configuration, machine and scheduler must be
    /// the ones the checkpoint was taken under
    /// ([`CheckpointError::SpecMismatch`] otherwise), and the resumed
    /// run's trace and `without_timings` report are bit-identical to an
    /// uninterrupted run's.
    pub resume_from: Option<EngineCheckpoint>,
    /// Deterministic watchdog: abort (as [`SimError::Aborted`] carrying
    /// [`SimError::IntervalBudgetExhausted`], partials preserved) after
    /// this many intervals *in this invocation* with work still pending.
    pub max_intervals: Option<u64>,
    /// Wall-clock soft deadline, polled every 64 intervals: crossing it
    /// aborts the run as [`SimError::Aborted`] carrying
    /// [`SimError::DeadlineExceeded`], partials preserved.
    pub deadline: Option<Instant>,
}

/// Fault-layer runtime for one run: the injector, the conditioning
/// ladder, and the conditioned view handed to schedulers.
#[derive(Debug)]
struct FaultRuntime {
    injector: FaultInjector,
    conditioner: SensorConditioner,
    /// Conditioned sensor temperatures, refreshed every interval, °C.
    sensed_temps: Vector,
    /// Per-core confidence of `sensed_temps`, in `[0, 1]`.
    confidence: Vec<f64>,
    /// Whether the run is currently below the degraded-confidence
    /// threshold (for transition events).
    sensors_degraded: bool,
}

/// Everything a run accumulates. Boxed into [`SimError::Aborted`] on a
/// mid-run failure so no measurement is ever discarded.
struct RunState {
    total_jobs: usize,
    arrivals: VecDeque<Job>,
    n: usize,
    dt: f64,
    sched_every: u64,
    node_temps: Vector,
    levels: Vec<DvfsLevel>,
    occupancy: Vec<Option<ThreadId>>,
    pending: VecDeque<Job>,
    active: BTreeMap<JobId, JobRuntime>,
    records: BTreeMap<JobId, JobRecord>,
    metrics: Metrics,
    completed: usize,
    step: u64,
    /// Chip-wide DTM hysteresis latch state after the last interval.
    dtm_last_interval: bool,
    /// Per-core DTM hysteresis latches (only driven in per-core scope).
    dtm_core_latch: Vec<bool>,
    busy_freq_integral: f64,
    busy_time: f64,
    /// All-ones confidence slice for the fault-free path.
    full_confidence: Vec<f64>,
    faults: Option<FaultRuntime>,
    /// Whether the scheduler reported degraded health at the last hook.
    sched_was_degraded: bool,
    /// Live observability: interval/hook counters and wall-clock
    /// histograms, snapshotted into `Metrics::observability` at run end.
    obs: hp_obs::Registry,
}

impl RunState {
    fn now(&self) -> f64 {
        self.step as f64 * self.dt
    }
}

fn fault_error(e: FaultError) -> SimError {
    match e {
        FaultError::InvalidParameter { name, value } => SimError::InvalidParameter { name, value },
        _ => SimError::InvalidParameter {
            name: "faults",
            value: f64::NAN,
        },
    }
}

impl Simulation {
    /// Builds an engine for `machine` with the given thermal and engine
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration and model-construction failures.
    pub fn new(machine: Machine, thermal: ThermalConfig, config: SimConfig) -> Result<Self> {
        let model = RcThermalModel::new(machine.floorplan(), &thermal)?;
        let solver = TransientSolver::new(&model)?;
        Self::with_thermal(machine, model, solver, config)
    }

    /// Builds an engine around a prebuilt thermal model and transient
    /// solver, skipping the LU factorization and eigendecomposition that
    /// [`Simulation::new`] performs.
    ///
    /// This is the cache-handle constructor for sweep runners: each job
    /// clones shared, already-factorized handles (both clones are plain
    /// matrix copies) instead of re-deriving them. The model and solver
    /// must describe `machine`'s floorplan — a mismatch is rejected when
    /// the node counts disagree, but a same-sized model for a different
    /// chip produces wrong temperatures, not unsoundness.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures and rejects a model
    /// whose core count does not match `machine`.
    pub fn with_thermal(
        machine: Machine,
        model: RcThermalModel,
        solver: TransientSolver,
        config: SimConfig,
    ) -> Result<Self> {
        config.validate()?;
        if model.core_count() != machine.core_count() {
            return Err(SimError::InvalidParameter {
                name: "thermal model core count",
                value: model.core_count() as f64,
            });
        }
        Ok(Simulation {
            machine,
            thermal: model,
            solver,
            config,
            trace: TemperatureTrace::new(),
            ckpt_saves: 0,
            ckpt_resumes: 0,
        })
    }

    /// The machine under simulation.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The thermal model in use.
    pub fn thermal(&self) -> &RcThermalModel {
        &self.thermal
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The temperature trace of the last run. Temperature samples are
    /// only recorded under [`SimConfig::record_trace`]; degradation
    /// [events](TemperatureTrace::events) are always recorded. Retained
    /// even when the run aborted mid-flight.
    pub fn trace(&self) -> &TemperatureTrace {
        &self.trace
    }

    /// Runs `jobs` to completion under `scheduler`.
    ///
    /// # Errors
    ///
    /// Any mid-run failure is returned as [`SimError::Aborted`] carrying
    /// the metrics accumulated so far (the trace is likewise retained on
    /// the engine). Causes include:
    ///
    /// * [`SimError::HorizonExceeded`] if jobs remain unfinished at the
    ///   configured horizon.
    /// * Validation errors for malformed scheduler actions
    ///   ([`SimError::CoreConflict`], [`SimError::PlacementArity`], …).
    pub fn run(&mut self, jobs: Vec<Job>, scheduler: &mut dyn Scheduler) -> Result<Metrics> {
        self.run_with_options(jobs, scheduler, &RunOptions::default())
    }

    /// Runs `jobs` under `scheduler` with supervision and recovery
    /// options: periodic checkpoints, resume-from-checkpoint, a
    /// deterministic interval budget and a wall-clock deadline
    /// (DESIGN.md §13).
    ///
    /// The contract for checkpointing is bit-identity: a run interrupted
    /// at any checkpoint boundary and resumed via
    /// [`RunOptions::resume_from`] produces exactly the trace and
    /// `RunReport::without_timings` of an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Everything [`Simulation::run`] can raise, plus — all wrapped in
    /// [`SimError::Aborted`] so partial metrics survive —
    /// [`SimError::IntervalBudgetExhausted`], [`SimError::DeadlineExceeded`]
    /// and [`SimError::Checkpoint`] for failures writing a checkpoint.
    /// Invalid options and a checkpoint that cannot be re-bound to this
    /// run fail before the first interval, without partials.
    pub fn run_with_options(
        &mut self,
        jobs: Vec<Job>,
        scheduler: &mut dyn Scheduler,
        opts: &RunOptions,
    ) -> Result<Metrics> {
        self.ckpt_saves = 0;
        self.ckpt_resumes = 0;
        let ckpt_every = match opts.checkpoint_every_seconds {
            None => None,
            Some(s) => {
                if !s.is_finite() || s <= 0.0 {
                    return Err(SimError::InvalidParameter {
                        name: "checkpoint_every_seconds",
                        value: s,
                    });
                }
                if opts.checkpoint_path.is_none() {
                    return Err(SimError::InvalidParameter {
                        name: "checkpoint_path",
                        value: f64::NAN,
                    });
                }
                Some(((s / self.config.dt).round() as u64).max(1))
            }
        };
        // The spec fingerprint binds checkpoints to this exact run;
        // computed before init consumes the workload vector.
        let spec = checkpoint::spec_hash(&self.machine, &self.config, &jobs, scheduler.name());
        let mut st = match &opts.resume_from {
            None => self.init_run(jobs, scheduler.name())?,
            Some(ckpt) => self.resume_run(jobs, scheduler, ckpt, spec)?,
        };
        let mut intervals_done: u64 = 0;
        let outcome = loop {
            match self.step_interval(&mut st, scheduler) {
                Ok(false) => {}
                Ok(true) => break Ok(()),
                Err(e) => break Err(e),
            }
            intervals_done += 1;
            if let (Some(every), Some(path)) = (ckpt_every, opts.checkpoint_path.as_deref()) {
                if st.step.is_multiple_of(every) {
                    let ckpt = self.capture_checkpoint(&st, scheduler, spec);
                    if let Err(e) = ckpt.save_to_path(path) {
                        break Err(SimError::Checkpoint(e));
                    }
                    self.ckpt_saves += 1;
                }
            }
            if let Some(budget) = opts.max_intervals {
                if intervals_done >= budget && st.completed < st.total_jobs {
                    break Err(SimError::IntervalBudgetExhausted { budget });
                }
            }
            if let Some(deadline) = opts.deadline {
                // xtask: allow(nondet) — the wall-clock watchdog is
                // nondeterministic by design; it only decides *whether*
                // the run aborts, never what a completed run reports.
                if intervals_done.is_multiple_of(64) && Instant::now() >= deadline {
                    break Err(SimError::DeadlineExceeded);
                }
            }
        };
        let obs = std::mem::take(&mut st.obs);
        let mut metrics = Self::finalize(st);
        // The observability block rides on the metrics in the Ok and the
        // Aborted path alike: an aborted run's partial report is often
        // the most interesting one.
        metrics.observability = self.build_report(&obs, scheduler);
        match outcome {
            Ok(()) => Ok(metrics),
            Err(cause) => Err(SimError::Aborted {
                at: metrics.simulated_time,
                cause: Box::new(cause),
                partial: Box::new(metrics),
            }),
        }
    }

    /// Checkpoints written during the last
    /// [`run_with_options`](Simulation::run_with_options) invocation.
    /// Deliberately *not* part of the run's own report (see the field
    /// docs); campaign runners fold this into their own counters.
    pub fn checkpoint_saves(&self) -> u64 {
        self.ckpt_saves
    }

    /// Whether the last run resumed from a checkpoint (0 or 1).
    pub fn checkpoint_resumes(&self) -> u64 {
        self.ckpt_resumes
    }

    /// Assembles the run's observability report: the live registry
    /// (interval counters, hook histograms), the thermal solver's
    /// activity tallies, the GEMM dispatch backend, the degradation
    /// event log, and the scheduler's own report under the `sched.`
    /// namespace.
    fn build_report(&self, obs: &hp_obs::Registry, scheduler: &dyn Scheduler) -> hp_obs::RunReport {
        let mut report = obs.snapshot();
        let s = self.solver.stats();
        report.push_counter("thermal.step_batches", s.batch_calls);
        report.push_counter("thermal.batched_states", s.batched_states);
        report.push_counter("thermal.decay_cache_hits", s.decay_cache_hits);
        report.push_counter("thermal.decay_cache_misses", s.decay_cache_misses);
        let nu = self.solver.numerics();
        report.push_counter("numerics.fallback.activations", nu.fallback_activations);
        report.push_counter("numerics.fallback.steps", nu.fallback_steps);
        report.push_counter("numerics.guard.trips", nu.guard_trips);
        report.push_counter("numerics.degraded", u64::from(self.solver.degraded()));
        report.push_meta("gemm_backend", hp_linalg::Matrix::gemm_backend());
        for ev in self.trace.events() {
            report.push_event(ev.time_seconds, ev.kind.label(), &ev.detail);
        }
        if let Some(sched_report) = scheduler.observability() {
            report.merge_prefixed("sched", &sched_report);
        }
        report
    }

    /// Prepares the run state (initial temperatures, queues, fault
    /// layer). Failures here carry no partial results — nothing has been
    /// simulated yet.
    fn init_run(&mut self, mut jobs: Vec<Job>, scheduler_name: &str) -> Result<RunState> {
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        let total_jobs = jobs.len();
        let arrivals: VecDeque<Job> = jobs.into();

        let n = self.machine.core_count();
        let dt = self.config.dt;
        let sched_every = (self.config.sched_period / dt).round().max(1.0) as u64;

        let node_temps = match self.config.prewarm_power {
            None => self.thermal.ambient_state(),
            Some(p) => self.thermal.steady_state(&Vector::constant(n, p))?,
        };

        let faults = if self.config.faults.is_inert() {
            None
        } else {
            let injector = FaultInjector::new(&self.config.faults, n).map_err(fault_error)?;
            let arch = self.machine.config();
            let conditioner = SensorConditioner::new(
                mesh_neighbors(arch.grid_height, arch.grid_width),
                self.config.sensor_staleness_budget_intervals,
                self.thermal.config().ambient,
            );
            Some(FaultRuntime {
                injector,
                conditioner,
                sensed_temps: Vector::zeros(n),
                confidence: vec![1.0; n],
                sensors_degraded: false,
            })
        };

        self.trace = TemperatureTrace::new();
        // Each run reports its own solver activity.
        self.solver.reset_stats();
        if self.config.record_trace {
            // The t = 0 starting condition (ambient or prewarmed) leads
            // the trace; the per-interval loop appends at `now + dt`.
            self.trace.push(
                0.0,
                self.thermal.core_temperatures(&node_temps).into_inner(),
            );
        }
        let mut metrics = Metrics {
            scheduler: scheduler_name.to_string(),
            ..Metrics::default()
        };
        metrics.robustness.faults_enabled = faults.is_some();

        Ok(RunState {
            total_jobs,
            arrivals,
            n,
            dt,
            sched_every,
            node_temps,
            levels: vec![self.machine.config().dvfs.max_level(); n],
            occupancy: vec![None; n],
            pending: VecDeque::new(),
            active: BTreeMap::new(),
            records: BTreeMap::new(),
            metrics,
            completed: 0,
            step: 0,
            dtm_last_interval: false,
            dtm_core_latch: vec![false; n],
            busy_freq_integral: 0.0,
            busy_time: 0.0,
            full_confidence: vec![1.0; n],
            faults,
            sched_was_degraded: false,
            obs: hp_obs::Registry::new(),
        })
    }

    /// Turns an ended run (complete or aborted) into its metrics.
    fn finalize(mut st: RunState) -> Metrics {
        st.metrics.avg_frequency_ghz = if st.busy_time > 0.0 {
            st.busy_freq_integral / st.busy_time
        } else {
            0.0
        };
        if let Some(fr) = &st.faults {
            let s = fr.injector.stats();
            st.metrics.robustness.noisy_readings = s.noisy_readings;
            st.metrics.robustness.stuck_readings = s.stuck_readings;
            st.metrics.robustness.sensor_dropouts = s.dropouts;
            st.metrics.robustness.migration_faults = s.migration_failures;
            st.metrics.robustness.power_spikes = s.power_spikes;
        }
        st.metrics.robustness.watchdog_intervals = st.metrics.dtm_intervals;
        st.metrics.jobs = st.records.into_values().collect();
        st.metrics
    }

    /// Freezes the run state into an [`EngineCheckpoint`] at an interval
    /// boundary. Everything `step_interval` mutates is captured; the
    /// `Job` structs themselves are not (they are re-bound from the
    /// workload at resume, which the spec hash guarantees matches).
    fn capture_checkpoint(
        &self,
        st: &RunState,
        scheduler: &dyn Scheduler,
        spec: u64,
    ) -> EngineCheckpoint {
        let active: Vec<ActiveJobState> = st
            .active
            .values()
            .map(|jr| ActiveJobState {
                job: jr.job.id.0,
                phase: jr.phase,
                completed: jr.completed,
                threads: jr
                    .threads
                    .iter()
                    .map(|t| ThreadState {
                        core: t.core.index(),
                        running: match t.state {
                            ThreadPhaseState::Running { remaining } => Some(remaining),
                            ThreadPhaseState::AtBarrier => None,
                        },
                        stall_until: t.stall_until,
                        warmup_until: t.warmup_until,
                        history: t.history.raw_parts(),
                        last_cpi: t.last_cpi,
                        migrations: t.migrations,
                        instructions_retired: t.instructions_retired,
                        energy: t.energy,
                    })
                    .collect(),
            })
            .collect();
        // Counters, gauges and metadata are seed-deterministic and
        // resumable; wall-clock histograms are dropped (they are
        // excluded from `without_timings` golden comparisons anyway).
        let report = st.obs.snapshot();
        let obs = ObsState {
            counters: report
                .counters
                .iter()
                .map(|c| (c.name.clone(), c.value))
                .collect(),
            gauges: report
                .gauges
                .iter()
                .map(|g| (g.name.clone(), g.value))
                .collect(),
            meta: report
                .meta
                .iter()
                .map(|m| (m.name.clone(), m.value.clone()))
                .collect(),
        };
        let trace = TraceState {
            times: self.trace.times().to_vec(),
            temps: (0..self.trace.len())
                .map(|k| self.trace.sample(k).to_vec())
                .collect(),
            events: self.trace.events().to_vec(),
        };
        let faults = st.faults.as_ref().map(|fr| FaultState {
            injector: fr.injector.snapshot(),
            conditioner: fr.conditioner.snapshot(),
            sensed_temps: fr.sensed_temps.as_slice().to_vec(),
            confidence: fr.confidence.clone(),
            sensors_degraded: fr.sensors_degraded,
        });
        let s = self.solver.stats();
        EngineCheckpoint {
            spec_hash: spec,
            state: CheckpointState {
                step: st.step,
                node_temps: st.node_temps.as_slice().to_vec(),
                levels: st.levels.iter().map(|l| l.index()).collect(),
                occupancy: st.occupancy.clone(),
                pending: st.pending.iter().map(|j| j.id.0).collect(),
                arrivals: st.arrivals.iter().map(|j| j.id.0).collect(),
                active,
                records: st.records.values().cloned().collect(),
                completed: st.completed as u64,
                dtm_last_interval: st.dtm_last_interval,
                dtm_core_latch: st.dtm_core_latch.clone(),
                busy_freq_integral: st.busy_freq_integral,
                busy_time: st.busy_time,
                sched_was_degraded: st.sched_was_degraded,
                metrics: MetricsState {
                    makespan: st.metrics.makespan,
                    peak_temperature: st.metrics.peak_temperature,
                    dtm_intervals: st.metrics.dtm_intervals,
                    migrations: st.metrics.migrations,
                    energy: st.metrics.energy,
                    simulated_time: st.metrics.simulated_time,
                },
                robustness: st.metrics.robustness,
                faults,
                obs,
                trace,
                thermal_stats: [
                    s.batch_calls,
                    s.batched_states,
                    s.decay_cache_hits,
                    s.decay_cache_misses,
                ],
                numerics_stats: {
                    let nu = self.solver.numerics();
                    [nu.fallback_activations, nu.fallback_steps, nu.guard_trips]
                },
                scheduler_name: scheduler.name().to_string(),
                scheduler_blob: scheduler.snapshot(),
            },
        }
    }

    /// Rebuilds a mid-flight `RunState` from a verified checkpoint: the
    /// resume half of the bit-identity contract.
    ///
    /// The supplied workload and scheduler must be the ones the
    /// checkpoint was captured under; `Job` structs are re-bound by id.
    /// The thermal solver's decay cache is warmed for the run's `dt`
    /// *before* its stats are overwritten, so the resumed run's cache
    /// counters continue exactly where the interrupted run's left off.
    fn resume_run(
        &mut self,
        jobs: Vec<Job>,
        scheduler: &mut dyn Scheduler,
        ckpt: &EngineCheckpoint,
        spec: u64,
    ) -> Result<RunState> {
        fn invalid(message: String) -> SimError {
            SimError::Checkpoint(CheckpointError::Invalid { message })
        }
        if ckpt.spec_hash != spec {
            return Err(SimError::Checkpoint(CheckpointError::SpecMismatch {
                expected: spec,
                found: ckpt.spec_hash,
            }));
        }
        let s = &ckpt.state;
        let n = self.machine.core_count();
        if s.scheduler_name != scheduler.name() {
            return Err(invalid(format!(
                "checkpoint was taken under scheduler `{}`, resuming under `{}`",
                s.scheduler_name,
                scheduler.name()
            )));
        }
        if s.levels.len() != n || s.occupancy.len() != n || s.dtm_core_latch.len() != n {
            return Err(invalid(format!(
                "checkpoint core count disagrees with the machine's {n} cores"
            )));
        }
        if s.node_temps.len() != self.thermal.ambient_state().as_slice().len() {
            return Err(invalid(format!(
                "checkpoint thermal state has {} nodes, the model expects {}",
                s.node_temps.len(),
                self.thermal.ambient_state().as_slice().len()
            )));
        }

        let total_jobs = jobs.len();
        let mut by_id: BTreeMap<usize, Job> = BTreeMap::new();
        for j in jobs {
            if let Some(dup) = by_id.insert(j.id.0, j) {
                return Err(invalid(format!("duplicate {} in the workload", dup.id)));
            }
        }
        let mut take = |id: usize| -> Result<Job> {
            by_id.remove(&id).ok_or_else(|| {
                invalid(format!(
                    "checkpoint references job {id} not in the workload"
                ))
            })
        };
        let arrivals: VecDeque<Job> = s
            .arrivals
            .iter()
            .map(|&id| take(id))
            .collect::<Result<_>>()?;
        let pending: VecDeque<Job> = s
            .pending
            .iter()
            .map(|&id| take(id))
            .collect::<Result<_>>()?;
        let mut active: BTreeMap<JobId, JobRuntime> = BTreeMap::new();
        for a in &s.active {
            let job = take(a.job)?;
            if a.threads.len() != job.spec.thread_count() {
                return Err(invalid(format!(
                    "checkpoint has {} threads for {}, its spec has {}",
                    a.threads.len(),
                    job.id,
                    job.spec.thread_count()
                )));
            }
            let id = job.id;
            let threads: Vec<ThreadRuntime> = a
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if t.core >= n {
                        return Err(invalid(format!(
                            "checkpoint places {id}.t{i} on core {} of {n}",
                            t.core
                        )));
                    }
                    let (samples, window, total_time, total_energy) = t.history.clone();
                    Ok(ThreadRuntime {
                        id: ThreadId { job: id, index: i },
                        core: CoreId(t.core),
                        state: match t.running {
                            Some(remaining) => ThreadPhaseState::Running { remaining },
                            None => ThreadPhaseState::AtBarrier,
                        },
                        stall_until: t.stall_until,
                        warmup_until: t.warmup_until,
                        history: PowerHistory::from_raw_parts(
                            samples,
                            window,
                            total_time,
                            total_energy,
                        ),
                        last_cpi: t.last_cpi,
                        migrations: t.migrations,
                        instructions_retired: t.instructions_retired,
                        energy: t.energy,
                    })
                })
                .collect::<Result<_>>()?;
            active.insert(
                id,
                JobRuntime {
                    job,
                    phase: a.phase,
                    threads,
                    completed: a.completed,
                },
            );
        }
        let records: BTreeMap<JobId, JobRecord> =
            s.records.iter().map(|r| (r.job, r.clone())).collect();

        let dvfs = &self.machine.config().dvfs;
        let levels: Vec<DvfsLevel> = s
            .levels
            .iter()
            .map(|&i| {
                let level = DvfsLevel(i);
                dvfs.check(level)
                    .map(|()| level)
                    .map_err(|_| invalid(format!("checkpoint DVFS level {i} is off the ladder")))
            })
            .collect::<Result<_>>()?;

        let faults = if self.config.faults.is_inert() {
            if s.faults.is_some() {
                return Err(invalid(
                    "checkpoint carries fault state but the fault plan is inert".into(),
                ));
            }
            None
        } else {
            let fz = s.faults.as_ref().ok_or_else(|| {
                invalid("fault plan is active but the checkpoint has no fault state".into())
            })?;
            let mut injector = FaultInjector::new(&self.config.faults, n).map_err(fault_error)?;
            injector
                .restore(&fz.injector)
                .map_err(|e| invalid(format!("fault injector rejected the snapshot: {e}")))?;
            let arch = self.machine.config();
            let mut conditioner = SensorConditioner::new(
                mesh_neighbors(arch.grid_height, arch.grid_width),
                self.config.sensor_staleness_budget_intervals,
                self.thermal.config().ambient,
            );
            if !conditioner.restore(&fz.conditioner) {
                return Err(invalid(
                    "sensor conditioner rejected the snapshot (core count mismatch)".into(),
                ));
            }
            if fz.sensed_temps.len() != n || fz.confidence.len() != n {
                return Err(invalid(
                    "checkpoint sensor view disagrees with the machine's core count".into(),
                ));
            }
            Some(FaultRuntime {
                injector,
                conditioner,
                sensed_temps: Vector::from(fz.sensed_temps.clone()),
                confidence: fz.confidence.clone(),
                sensors_degraded: fz.sensors_degraded,
            })
        };

        if let Some(blob) = &s.scheduler_blob {
            scheduler
                .restore(blob)
                .map_err(|m| invalid(format!("scheduler rejected its snapshot: {m}")))?;
        }

        let obs = hp_obs::Registry::new();
        for (name, v) in &s.obs.counters {
            obs.set_counter(name, *v);
        }
        for (name, v) in &s.obs.gauges {
            obs.set_gauge(name, *v);
        }
        for (name, v) in &s.obs.meta {
            obs.set_meta(name, v);
        }

        // Resumed trace continues in place; the t = 0 sample (if traced)
        // is already inside, so nothing is re-pushed here.
        self.trace = TemperatureTrace::from_parts(
            s.trace.times.clone(),
            s.trace.temps.clone(),
            s.trace.events.clone(),
        );
        // Warm the decay cache for the fixed dt first, then overwrite
        // the tallies: the warm-up miss is discarded and every in-run
        // lookup hits, so the final counters match an uninterrupted run.
        self.solver.reset_stats();
        self.solver.warm_decay_cache(self.config.dt);
        self.solver.restore_stats(TransientStats {
            batch_calls: s.thermal_stats[0],
            batched_states: s.thermal_stats[1],
            decay_cache_hits: s.thermal_stats[2],
            decay_cache_misses: s.thermal_stats[3],
        });
        // Numerics tallies resume the same way (reset_stats above zeroed
        // them alongside the activity stats; any dense-stepper warm-up is
        // counted before the restore overwrites it).
        self.solver.restore_numerics(hp_thermal::NumericsStats {
            fallback_activations: s.numerics_stats[0],
            fallback_steps: s.numerics_stats[1],
            guard_trips: s.numerics_stats[2],
        });
        self.ckpt_resumes = 1;

        let completed = usize::try_from(s.completed)
            .map_err(|_| invalid(format!("completed count {} overflows", s.completed)))?;
        let metrics = Metrics {
            scheduler: scheduler.name().to_string(),
            makespan: s.metrics.makespan,
            peak_temperature: s.metrics.peak_temperature,
            dtm_intervals: s.metrics.dtm_intervals,
            migrations: s.metrics.migrations,
            energy: s.metrics.energy,
            simulated_time: s.metrics.simulated_time,
            robustness: s.robustness,
            ..Metrics::default()
        };
        Ok(RunState {
            total_jobs,
            arrivals,
            n,
            dt: self.config.dt,
            sched_every: (self.config.sched_period / self.config.dt).round().max(1.0) as u64,
            node_temps: Vector::from(s.node_temps.clone()),
            levels,
            occupancy: s.occupancy.clone(),
            pending,
            active,
            records,
            metrics,
            completed,
            step: s.step,
            dtm_last_interval: s.dtm_last_interval,
            dtm_core_latch: s.dtm_core_latch.clone(),
            busy_freq_integral: s.busy_freq_integral,
            busy_time: s.busy_time,
            full_confidence: vec![1.0; n],
            faults,
            sched_was_degraded: s.sched_was_degraded,
            obs,
        })
    }

    /// Simulates one interval. Returns `Ok(true)` when the workload has
    /// completed.
    fn step_interval(&mut self, st: &mut RunState, scheduler: &mut dyn Scheduler) -> Result<bool> {
        // xtask: allow(nondet) — wall-clock observability timing; the
        // histogram it feeds is excluded from golden outputs.
        let interval_start = Instant::now();
        let n = st.n;
        let dt = st.dt;
        let now = st.now();
        st.metrics.simulated_time = now;
        if st.completed == st.total_jobs {
            return Ok(true);
        }
        if now > self.config.horizon {
            return Err(SimError::HorizonExceeded {
                horizon: self.config.horizon,
                unfinished: st.total_jobs - st.completed,
            });
        }

        // 1. Admission: move arrived jobs into the pending queue.
        while st
            .arrivals
            .front()
            .is_some_and(|j| j.arrival <= now + 1e-12)
        {
            let Some(job) = st.arrivals.pop_front() else {
                break;
            };
            st.pending.push_back(job);
        }

        // True junction temperatures for this interval, shared by the
        // DTM check and the power evaluation (node_temps only changes at
        // the thermal step below). With faults active, schedulers see
        // the conditioned sensor view built right below instead.
        let core_temps = self.thermal.core_temperatures(&st.node_temps);

        // 1b. Fault layer: draw this interval's sensor faults and
        // condition the readings into the trusted view.
        if let Some(fr) = st.faults.as_mut() {
            fr.injector.begin_interval();
            let readings: Vec<SensorReading> = (0..n)
                .map(|c| fr.injector.sense(c, core_temps[c]))
                .collect();
            let trusted = fr.conditioner.condition(&readings);
            let min_conf = trusted.min_confidence();
            if min_conf < st.metrics.robustness.min_sensor_confidence {
                st.metrics.robustness.min_sensor_confidence = min_conf;
            }
            if min_conf < SENSOR_DEGRADED_CONFIDENCE && !fr.sensors_degraded {
                fr.sensors_degraded = true;
                self.trace.push_event(
                    now,
                    TraceEventKind::SensorsDegraded,
                    format!("min sensor confidence {min_conf:.2}"),
                );
            } else if min_conf >= SENSOR_DEGRADED_CONFIDENCE && fr.sensors_degraded {
                fr.sensors_degraded = false;
                self.trace.push_event(
                    now,
                    TraceEventKind::SensorsRecovered,
                    format!("min sensor confidence {min_conf:.2}"),
                );
            }
            fr.sensed_temps = Vector::from(trusted.temps_celsius);
            fr.confidence = trusted.confidence;
        }

        // 2. Scheduling hook.
        if st.step.is_multiple_of(st.sched_every) {
            let thread_views = build_thread_views(&st.active);
            let pending_views: Vec<PendingJobView> = st
                .pending
                .iter()
                .map(|j| PendingJobView {
                    job: j.id,
                    benchmark: j.benchmark,
                    threads: j.spec.thread_count(),
                    arrival: j.arrival,
                })
                .collect();
            st.obs.inc("engine.sched_hooks");
            // xtask: allow(nondet) — wall-clock observability timing; the
            // histogram it feeds is excluded from golden outputs.
            let hook_start = Instant::now();
            let actions = {
                let (view_temps, view_conf): (&Vector, &[f64]) = match st.faults.as_ref() {
                    Some(fr) => (&fr.sensed_temps, fr.confidence.as_slice()),
                    None => (&core_temps, st.full_confidence.as_slice()),
                };
                let view = SimView {
                    time: now,
                    machine: &self.machine,
                    core_temps: view_temps,
                    levels: &st.levels,
                    occupancy: &st.occupancy,
                    threads: &thread_views,
                    pending: &pending_views,
                    t_dtm: self.config.t_dtm,
                    dtm_active: st.dtm_last_interval,
                    sensor_confidence: view_conf,
                };
                scheduler.schedule(&view)
            };
            st.obs
                .observe_seconds("hook.schedule", hook_start.elapsed().as_secs_f64());
            // xtask: allow(nondet) — wall-clock observability timing; the
            // histogram it feeds is excluded from golden outputs.
            let apply_start = Instant::now();
            Self::apply_actions(
                &self.machine,
                &self.config,
                &mut self.trace,
                actions,
                now,
                st,
            )?;
            st.obs
                .observe_seconds("hook.apply_actions", apply_start.elapsed().as_secs_f64());

            // Poll the policy's self-reported health and account
            // fallback transitions.
            let degraded = scheduler.health() != SchedulerHealth::Nominal;
            if degraded {
                st.metrics.robustness.fallback_intervals += 1;
                st.obs.inc("engine.fallback.hooks");
                if !st.sched_was_degraded {
                    st.metrics.robustness.fallback_activations += 1;
                    st.obs.inc("engine.fallback.activations");
                    self.trace.push_event(
                        now,
                        TraceEventKind::FallbackEngaged,
                        format!("scheduler {} degraded", scheduler.name()),
                    );
                }
            } else if st.sched_was_degraded {
                self.trace.push_event(
                    now,
                    TraceEventKind::FallbackRecovered,
                    format!("scheduler {} nominal", scheduler.name()),
                );
            }
            st.sched_was_degraded = degraded;
        }

        // 3. Hardware DTM watchdog: frequency crash while too hot, with
        // a hysteresis latch — engage at `t_dtm`, release only below
        // `t_dtm − dtm_hysteresis_celsius` (a band of 0 reproduces the
        // historical stateless comparison exactly). The watchdog reads
        // the TRUE junction temperatures — hardware DTM has its own
        // thermal-diode path and is not fooled by injected sensor
        // faults; it is the final backstop of the degradation chain.
        let t_dtm = self.config.t_dtm;
        let band = self.config.dtm_hysteresis_celsius;
        let max_temp = core_temps.max();
        let dtm_now = self.config.dtm_enabled
            && (max_temp >= t_dtm || (st.dtm_last_interval && max_temp > t_dtm - band));
        if dtm_now {
            st.metrics.dtm_intervals += 1;
            if !st.dtm_last_interval {
                st.metrics.robustness.watchdog_activations += 1;
                st.obs.inc("engine.dtm.activations");
                self.trace.push_event(
                    now,
                    TraceEventKind::WatchdogEngaged,
                    format!("peak {max_temp:.3} C reached t_dtm {t_dtm} C"),
                );
            }
        } else if st.dtm_last_interval {
            self.trace.push_event(
                now,
                TraceEventKind::WatchdogReleased,
                format!("peak {max_temp:.3} C below {:.3} C", t_dtm - band),
            );
        }
        st.dtm_last_interval = dtm_now;
        if self.config.dtm_enabled && self.config.dtm_scope == crate::DtmScope::PerCore {
            for core in 0..n {
                let t = core_temps[core];
                let was = st.dtm_core_latch[core];
                st.dtm_core_latch[core] = t >= t_dtm || (was && t > t_dtm - band);
            }
        }
        let min_level = self.machine.config().dvfs.min_level();
        let dtm_enabled = self.config.dtm_enabled;
        let scope = self.config.dtm_scope;
        let core_latch = &st.dtm_core_latch;
        let throttled = |core: usize| match scope {
            crate::DtmScope::Chip => dtm_now,
            crate::DtmScope::PerCore => dtm_enabled && core_latch[core],
        };

        // 4. Performance + power for this interval.
        let mut power = Vector::zeros(n);
        for core in 0..n {
            let temp = core_temps[core];
            let level = if throttled(core) {
                min_level
            } else {
                st.levels[core]
            };
            match st.occupancy[core] {
                None => {
                    power[core] = self.machine.idle_power(temp);
                }
                Some(tid) => {
                    let jr = st
                        .active
                        .get_mut(&tid.job)
                        .ok_or(SimError::UnknownThread(tid))?;
                    let nominal = jr.work_point(tid.index);
                    let t = &mut jr.threads[tid.index];
                    // Migration flush stall eats into the interval.
                    let exec_start = t.stall_until.max(now);
                    let exec_time = ((now + dt) - exec_start).clamp(0.0, dt);
                    let nominal_stack =
                        self.machine
                            .cpi_stack_at_level(&nominal, CoreId(core), level)?;
                    let effective = if now < t.warmup_until {
                        // Cold private caches: the flushed lines refill
                        // through the LLC, bounded by cache capacity.
                        let extra = self
                            .machine
                            .config()
                            .migration
                            .warmup_extra_mpki(nominal_stack.ips());
                        nominal.with_extra_l1_mpki(extra)
                    } else {
                        nominal
                    };
                    let stack = self
                        .machine
                        .cpi_stack_at_level(&effective, CoreId(core), level)?;
                    let retired = (stack.ips() * exec_time) as u64;
                    if let ThreadPhaseState::Running { remaining } = t.state {
                        let done = retired.min(remaining);
                        t.instructions_retired += done;
                        let left = remaining - done;
                        t.state = if left == 0 {
                            ThreadPhaseState::AtBarrier
                        } else {
                            ThreadPhaseState::Running { remaining: left }
                        };
                    }
                    t.last_cpi = if nominal.is_idle() {
                        f64::INFINITY
                    } else {
                        nominal_stack.total()
                    };
                    let watts = self.machine.core_power(&stack, level, temp);
                    t.history.push(dt, watts);
                    t.energy += watts * dt;
                    power[core] = watts;
                    if !nominal.is_idle() {
                        st.busy_freq_integral +=
                            self.machine.config().dvfs.frequency_ghz(level) * dt;
                        st.busy_time += dt;
                    }
                }
            }
            // Transient power-spike faults ride on top of whatever the
            // core draws (idle or busy).
            if let Some(fr) = st.faults.as_ref() {
                let spike = fr.injector.power_spike_watts(core);
                if spike > 0.0 {
                    power[core] += spike;
                }
            }
        }

        // 5. Exact thermal step for the interval. `step` is the
        // batched GEMM kernel applied to a batch of one; the fixed
        // `dt` hits the solver's decay cache every interval, so no
        // per-step eigenvalue exponentials are recomputed.
        // xtask: allow(nondet) — wall-clock observability timing; the
        // histogram it feeds is excluded from golden outputs.
        let thermal_start = Instant::now();
        st.node_temps = self
            .solver
            .step(&self.thermal, &st.node_temps, &power, dt)?;
        st.obs
            .observe_seconds("engine.thermal_step", thermal_start.elapsed().as_secs_f64());
        // Record the (at most one per run) transition onto the dense
        // numerical fallback. Deduplicated against the trace itself so a
        // checkpoint-resumed run does not re-emit the event.
        if self.solver.degraded()
            && !self
                .trace
                .events()
                .iter()
                .any(|e| e.kind == TraceEventKind::NumericalDegradation)
        {
            let nu = self.solver.numerics();
            self.trace.push_event(
                now + dt,
                TraceEventKind::NumericalDegradation,
                format!(
                    "dense fallback engaged (guard trips {}, fallback steps {})",
                    nu.guard_trips, nu.fallback_steps
                ),
            );
        }
        let after = self.thermal.core_temperatures(&st.node_temps);
        st.metrics.peak_temperature = st.metrics.peak_temperature.max(after.max());
        st.metrics.energy += power.sum() * dt;
        if self.config.record_trace {
            self.trace.push(now + dt, after.into_inner());
        }

        // 6. Barrier release / phase advance / completion.
        let done_ids: Vec<JobId> = st
            .active
            .iter_mut()
            .filter_map(|(&id, jr)| {
                while jr.phase_done() {
                    if !jr.advance_phase() {
                        jr.completed = Some(now + dt);
                        return Some(id);
                    }
                }
                None
            })
            .collect();
        for id in done_ids {
            let Some(jr) = st.active.remove(&id) else {
                continue; // id came from `active` above; a miss is a no-op
            };
            for t in &jr.threads {
                st.occupancy[t.core.index()] = None;
            }
            let completed_at = jr.completed.unwrap_or(now + dt);
            if let Some(rec) = st.records.get_mut(&id) {
                rec.completed = Some(completed_at);
                rec.instructions = jr.threads.iter().map(|t| t.instructions_retired).sum();
                rec.migrations = jr.threads.iter().map(|t| t.migrations).sum();
                rec.energy = jr.threads.iter().map(|t| t.energy).sum();
            }
            st.metrics.makespan = st.metrics.makespan.max(completed_at);
            st.completed += 1;
        }

        st.step += 1;
        st.obs.inc("engine.intervals");
        if dtm_now {
            st.obs.inc("engine.dtm.intervals");
        }
        st.obs
            .observe_seconds("engine.interval", interval_start.elapsed().as_secs_f64());
        Ok(false)
    }

    /// Validates and applies one scheduling hook's action batch.
    ///
    /// With the fault layer active the engine is *lenient* about
    /// migration faults: a requested migration may be silently dropped
    /// by an injected failure, and if the surviving batch no longer
    /// forms a valid permutation the whole batch is dropped (and
    /// counted) instead of aborting the run — schedulers whose internal
    /// bookkeeping has drifted from reality are a symptom of the very
    /// faults under study. Placement and DVFS validation stays strict in
    /// both modes: those failures are policy bugs, not injected faults.
    fn apply_actions(
        machine: &Machine,
        config: &SimConfig,
        trace: &mut TemperatureTrace,
        actions: Vec<Action>,
        now: f64,
        st: &mut RunState,
    ) -> Result<()> {
        let n = st.occupancy.len();
        let lenient = st.faults.is_some();
        // Phase 1: placements.
        let mut migrations: Vec<(ThreadId, CoreId)> = Vec::new();
        for action in actions {
            match action {
                Action::PlaceJob { job, cores } => {
                    let pos = st
                        .pending
                        .iter()
                        .position(|j| j.id == job)
                        .ok_or(SimError::UnknownJob(job))?;
                    // Validate before removing from the queue so a
                    // failed placement leaves the pending set intact.
                    let threads = st
                        .pending
                        .get(pos)
                        .map(|j| j.spec.thread_count())
                        .unwrap_or(0);
                    if cores.len() != threads {
                        return Err(SimError::PlacementArity {
                            job,
                            threads,
                            cores: cores.len(),
                        });
                    }
                    let mut claimed = vec![false; n];
                    for &c in &cores {
                        if c.index() >= n {
                            return Err(SimError::Floorplan(
                                hp_floorplan::FloorplanError::CoreOutOfRange {
                                    core: c.index(),
                                    cores: n,
                                },
                            ));
                        }
                        // Conflicts both with running threads and with
                        // duplicates inside this very placement.
                        if st.occupancy[c.index()].is_some() || claimed[c.index()] {
                            return Err(SimError::CoreConflict { core: c });
                        }
                        claimed[c.index()] = true;
                    }
                    let j = st.pending.remove(pos).ok_or(SimError::UnknownJob(job))?;
                    let rt = JobRuntime::start(j, &cores, config.power_history_window);
                    for t in &rt.threads {
                        st.occupancy[t.core.index()] = Some(t.id);
                    }
                    st.records.insert(
                        job,
                        JobRecord {
                            job,
                            benchmark: rt.job.benchmark.name().to_string(),
                            threads: rt.threads.len(),
                            arrival: rt.job.arrival,
                            started: now,
                            completed: None,
                            instructions: 0,
                            migrations: 0,
                            energy: 0.0,
                        },
                    );
                    st.active.insert(job, rt);
                    st.obs.inc("engine.actions.placements");
                }
                Action::Migrate { thread, to } => migrations.push((thread, to)),
                Action::SetLevel { core, level } => {
                    if core.index() >= n {
                        return Err(SimError::Floorplan(
                            hp_floorplan::FloorplanError::CoreOutOfRange {
                                core: core.index(),
                                cores: n,
                            },
                        ));
                    }
                    machine
                        .config()
                        .dvfs
                        .check(level)
                        .map_err(|_| SimError::InvalidParameter {
                            name: "dvfs level",
                            value: level.index() as f64,
                        })?;
                    st.levels[core.index()] = level;
                    st.obs.inc("engine.actions.dvfs_sets");
                }
                Action::SetAllLevels { level } => {
                    machine
                        .config()
                        .dvfs
                        .check(level)
                        .map_err(|_| SimError::InvalidParameter {
                            name: "dvfs level",
                            value: level.index() as f64,
                        })?;
                    st.levels.fill(level);
                    st.obs.inc("engine.actions.dvfs_sets");
                }
            }
        }

        // Phase 2: migrations, applied as one atomic batch so synchronous
        // rotations (cyclic permutations) are expressible.
        if !migrations.is_empty() {
            // Validate sources, roll injected migration faults.
            let mut staged: Vec<(ThreadId, CoreId, CoreId)> = Vec::new(); // (thread, from, to)
            for &(tid, to) in &migrations {
                let source = st
                    .active
                    .get(&tid.job)
                    .and_then(|jr| jr.threads.get(tid.index))
                    .map(|t| t.core);
                let Some(from) = source else {
                    if lenient {
                        // Scheduler bookkeeping drifted after earlier
                        // injected failures; drop just this migration.
                        st.metrics.robustness.dropped_actions += 1;
                        st.obs.inc("engine.actions.dropped");
                        continue;
                    }
                    return Err(SimError::UnknownThread(tid));
                };
                if to.index() >= n {
                    return Err(SimError::Floorplan(
                        hp_floorplan::FloorplanError::CoreOutOfRange {
                            core: to.index(),
                            cores: n,
                        },
                    ));
                }
                if let Some(fr) = st.faults.as_mut() {
                    if fr.injector.migration_fails() {
                        // The injected fault: the request is accepted
                        // but silently never takes effect.
                        continue;
                    }
                }
                staged.push((tid, from, to));
            }
            // Simulate the batch on a copy of the occupancy.
            let mut next: Vec<Option<ThreadId>> = st.occupancy.to_vec();
            for &(_, from, _) in &staged {
                next[from.index()] = None;
            }
            let mut conflict: Option<CoreId> = None;
            for &(tid, _, to) in &staged {
                if next[to.index()].is_some() {
                    conflict = Some(to);
                    break;
                }
                next[to.index()] = Some(tid);
            }
            if let Some(core) = conflict {
                if lenient {
                    // Injected failures broke the permutation; applying
                    // a subset would corrupt occupancy, so the whole
                    // batch is dropped and the scheduler retries next
                    // hook with a resynced view.
                    st.metrics.robustness.dropped_actions += staged.len() as u64;
                    st.obs.add("engine.actions.dropped", staged.len() as u64);
                    trace.push_event(
                        now,
                        TraceEventKind::ActionsDropped,
                        format!(
                            "dropped {} staged migrations: batch no longer a permutation at {core}",
                            staged.len()
                        ),
                    );
                    return Ok(());
                }
                return Err(SimError::CoreConflict { core });
            }
            st.occupancy.copy_from_slice(&next);
            let flush = machine.config().migration.flush_seconds();
            let warmup = machine.config().migration.warmup_seconds();
            for (tid, from, to) in staged {
                if from == to {
                    continue; // no-op migration costs nothing
                }
                let jr = st
                    .active
                    .get_mut(&tid.job)
                    .ok_or(SimError::UnknownThread(tid))?;
                let t = &mut jr.threads[tid.index];
                t.core = to;
                t.stall_until = now + flush;
                t.warmup_until = now + flush + warmup;
                t.migrations += 1;
                st.metrics.migrations += 1;
                st.obs.inc("engine.actions.migrations");
            }
        }
        Ok(())
    }
}

fn build_thread_views(active: &BTreeMap<JobId, JobRuntime>) -> Vec<ThreadView> {
    let mut out = Vec::new();
    for jr in active.values() {
        for (i, t) in jr.threads.iter().enumerate() {
            let work = jr.work_point(i);
            out.push(ThreadView {
                id: t.id,
                benchmark: jr.job.benchmark,
                core: t.core,
                work,
                last_cpi: t.last_cpi,
                avg_power: t.history.average(),
            });
        }
    }
    out
}
